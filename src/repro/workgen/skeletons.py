"""The stock skeleton families of the workload grammar.

Six kernel shapes spanning the behaviors the seven SPEC stand-ins
exhibit (and the gaps between them):

=============  =======================================================
``loopnest``   affine nested counted loops over two int arrays --
               unrolling / LICM / scheduling-sensitive
``chase``      pointer chasing through an index-linked permutation --
               cache-latency-bound, mcf-like
``calltree``   a randomly-shaped tree of small helper functions --
               inlining-sensitive, vortex/mesa-like
``reduce``     single-loop reductions (sum / dot / min) with 1..4
               parallel accumulator lanes -- ILP and unroll-friendly
``fppipe``     streaming FP multiply-add pipelines with configurable
               dependence-chain depth -- FU-latency-sensitive, art-like
``branchy``    LCG-driven data-dependent branch ladders with random
               statement filler -- branch-predictor-hostile
=============  =======================================================

Every emitter obeys the termination contract of
:mod:`repro.workgen.grammar`: counted ``for`` loops only, all array
indices reduced modulo power-of-two array sizes, every computed value
folded into the returned checksum.  Random *structure* comes from the
drawn :class:`~repro.workgen.grammar.ParamSpec` values; random
expression/statement *filler* comes from the promoted fuzz core via
``ctx.fuzz`` so the two generators cannot drift apart.
"""

from __future__ import annotations

from repro.workgen.grammar import EmitContext, Grammar, ParamSpec, Skeleton

#: All data arrays are this many elements (power of two: index masking
#: and the chase permutation rely on it).
ARRAY = 256

#: Mask applied to int products so checksums stay machine-word-sized.
MASK = 1048575


# ----------------------------------------------------------------------
# loopnest
# ----------------------------------------------------------------------
def _emit_loopnest(ctx: EmitContext) -> str:
    depth = ctx["depth"]
    trips = [ctx["n0"], ctx["n1"], ctx["n2"]][:depth]
    strides = [ctx.odd(1, 7) for _ in range(depth)]
    c_init = ctx.const(1, 9)
    c_xor = ctx.const(1, 127)
    op = ctx.pick(["+", "^", "&", "|"])
    idx = " + ".join(f"i{d} * {strides[d]}" for d in range(depth))
    open_loops = "".join(
        f"for (int i{d} = 0; i{d} < {trips[d]}; i{d} = i{d} + 1) {{\n"
        for d in range(depth)
    )
    close_loops = "}\n" * depth
    return (
        f"int A[{ARRAY}];\n"
        f"int B[{ARRAY}];\n"
        "int main() {\n"
        "int chk = 0;\n"
        "int t = 0;\n"
        f"for (int i = 0; i < {ARRAY}; i = i + 1) {{\n"
        f"A[i] = i * {c_init} + {ctx.const(0, 50)};\n"
        f"B[i] = i ^ {c_xor};\n"
        "}\n"
        f"{open_loops}"
        f"t = (A[({idx}) % {ARRAY}] {op} B[({idx}) % {ARRAY}]) & {MASK};\n"
        f"A[({idx}) % {ARRAY}] = (t + i0) & {MASK};\n"
        "chk = chk + t;\n"
        f"{close_loops}"
        f"for (int z = 0; z < {ARRAY}; z = z + 1) {{ chk = (chk + A[z]) & {MASK}; }}\n"
        "return chk;\n"
        "}\n"
    )


# ----------------------------------------------------------------------
# chase
# ----------------------------------------------------------------------
def _emit_chase(ctx: EmitContext) -> str:
    n = 1 << ctx["logn"]  # 32..256, power of two
    steps = ctx["steps"]
    mult = ctx.odd(3, 61)  # odd multiplier mod 2^k is a bijection
    offset = ctx.const(0, n - 1)
    salt = ctx.const(1, 255)
    chains = ctx["chains"]
    chase_lines = ["chk = chk + val[cur0];", "val[cur0] = (val[cur0] + s) & 255;",
                   "cur0 = nxt[cur0];"]
    decls = ["int cur0 = 0;"]
    if chains == 2:
        decls.append(f"int cur1 = {n // 2};")
        chase_lines += ["chk = chk ^ val[cur1];", "cur1 = nxt[cur1];"]
    return (
        f"int nxt[{ARRAY}];\n"
        f"int val[{ARRAY}];\n"
        f"int N = {n};\n"
        "int main() {\n"
        "int chk = 0;\n"
        "for (int i = 0; i < N; i = i + 1) {\n"
        f"nxt[i] = (i * {mult} + {offset}) % N;\n"
        f"val[i] = (i * 7) ^ {salt};\n"
        "}\n"
        + "\n".join(decls)
        + "\n"
        f"for (int s = 0; s < {steps}; s = s + 1) {{\n"
        + "\n".join(chase_lines)
        + "\n}\n"
        "for (int z = 0; z < N; z = z + 1) { chk = chk + val[z]; }\n"
        "return chk;\n"
        "}\n"
    )


# ----------------------------------------------------------------------
# calltree
# ----------------------------------------------------------------------
def _emit_calltree(ctx: EmitContext) -> str:
    depth = ctx["depth"]
    fan = ctx["fan"]
    iters = ctx["iters"]
    funcs = []
    counter = [0]

    def build(level: int) -> str:
        name = f"f{counter[0]}"
        counter[0] += 1
        if level == 0:
            # Leaf: random arithmetic over the parameters via the fuzz
            # core (registered vars x, y), bounded by a prime modulus.
            old = ctx.fuzz.int_vars
            ctx.fuzz.int_vars = ["x", "y"]
            cond = ctx.fuzz.cond_expr()
            expr = ctx.fuzz.int_expr(1)
            ctx.fuzz.int_vars = old
            funcs.append(
                f"int {name}(int x, int y) {{\n"
                f"    if ({cond}) {{ return ({expr}) % 9973; }}\n"
                f"    return (x * {ctx.const(2, 17)} + y) % 9973;\n"
                f"}}\n"
            )
            return name
        children = [build(level - 1) for _ in range(fan)]
        calls = []
        combine = []
        for k, child in enumerate(children):
            shift = ctx.const(0, 31)
            calls.append(f"    int a{k} = {child}(x + {shift}, y - {k});")
            combine.append(f"a{k} * {2 * k + 1}")
        funcs.append(
            f"int {name}(int x, int y) {{\n"
            + "\n".join(calls)
            + f"\n    return ({' + '.join(combine)}) % 9973;\n"
            f"}}\n"
        )
        return name

    root = build(depth)
    return (
        # The fuzz-core leaves reference the data[32] global.
        "int data[32];\n"
        + "".join(funcs)
        + "int main() {\n"
        "int chk = 0;\n"
        f"for (int z = 0; z < 32; z = z + 1) {{ data[z] = (z * {ctx.odd(3, 61)}) & 255; }}\n"
        f"for (int i = 0; i < {iters}; i = i + 1) {{\n"
        f"chk = chk + {root}(i, chk % 251);\n"
        "}\n"
        "return chk;\n"
        "}\n"
    )


# ----------------------------------------------------------------------
# reduce
# ----------------------------------------------------------------------
def _emit_reduce(ctx: EmitContext) -> str:
    lanes = ctx["lanes"]
    reps = ctx["reps"]
    kind = ctx.pick(["sum", "dot", "min"])
    fp = ctx["fp"] == 1 and kind != "min"
    ty = "float" if fp else "int"
    decls = []
    body = []
    folds = []
    for l in range(lanes):
        init = "1000000" if kind == "min" else ("0.0" if fp else "0")
        decls.append(f"{ty} acc{l} = {init};")
        x = f"X[(i * {lanes} + {l}) % {ARRAY}]"
        y = f"Y[(i * {lanes} + {l}) % {ARRAY}]"
        if kind == "sum":
            body.append(f"acc{l} = acc{l} + {x};")
        elif kind == "dot":
            expr = f"{x} * {y}"
            if not fp:
                expr = f"({expr}) & {MASK}"
            body.append(f"acc{l} = acc{l} + {expr};")
        else:  # min
            body.append(f"if ({x} < acc{l}) {{ acc{l} = {x}; }}")
        folds.append(
            f"chk = chk + (int)(acc{l});" if fp else f"chk = chk + acc{l};"
        )
    init_x = (
        f"X[i] = (float)(i & 63) / 16.0 + 0.25;"
        if fp
        else f"X[i] = (i * {ctx.const(1, 9)}) ^ {ctx.const(1, 255)};"
    )
    init_y = (
        f"Y[i] = (float)((i * 5) & 63) / 32.0 + 0.5;"
        if fp
        else f"Y[i] = (i ^ {ctx.const(1, 63)}) + {ctx.const(0, 100)};"
    )
    return (
        f"{ty} X[{ARRAY}];\n"
        f"{ty} Y[{ARRAY}];\n"
        "int main() {\n"
        "int chk = 0;\n"
        + "\n".join(decls)
        + "\n"
        f"for (int i = 0; i < {ARRAY}; i = i + 1) {{\n{init_x}\n{init_y}\n}}\n"
        f"for (int r = 0; r < {reps}; r = r + 1) {{\n"
        f"for (int i = 0; i < {ARRAY // lanes}; i = i + 1) {{\n"
        + "\n".join(body)
        + "\n}\n}\n"
        + "\n".join(folds)
        + "\nreturn chk;\n"
        "}\n"
    )


# ----------------------------------------------------------------------
# fppipe
# ----------------------------------------------------------------------
def _emit_fppipe(ctx: EmitContext) -> str:
    chain = ctx["chain"]
    reps = ctx["reps"]
    coeffs = [ctx.pick(["0.25", "0.5", "0.75", "1.25"]) for _ in range(chain)]
    adds = [ctx.pick(["0.125", "0.375", "0.625"]) for _ in range(chain)]
    stages = ["float t0 = X[i];"]
    for k in range(chain):
        prev = f"t{k}"
        extra = " + Y[i]" if k == chain - 1 else ""
        stages.append(f"float t{k + 1} = {prev} * {coeffs[k]} + {adds[k]}{extra};")
    return (
        f"float X[{ARRAY}];\n"
        f"float Y[{ARRAY}];\n"
        "int main() {\n"
        "int chk = 0;\n"
        "float acc = 0.0;\n"
        f"for (int i = 0; i < {ARRAY}; i = i + 1) {{\n"
        f"X[i] = (float)(i & 31) / 8.0 + 0.5;\n"
        f"Y[i] = (float)((i * 3) & 31) / 16.0;\n"
        "}\n"
        f"for (int r = 0; r < {reps}; r = r + 1) {{\n"
        f"for (int i = 0; i < {ARRAY}; i = i + 1) {{\n"
        + "\n".join(stages)
        + f"\nY[i] = t{chain};\n"
        f"acc = acc + t{chain};\n"
        "}\n}\n"
        "chk = chk + (int)(acc * 16.0);\n"
        f"for (int z = 0; z < {ARRAY}; z = z + 1) {{ chk = chk + (int)(Y[z] * 8.0); }}\n"
        "return chk;\n"
        "}\n"
    )


# ----------------------------------------------------------------------
# branchy
# ----------------------------------------------------------------------
def _emit_branchy(ctx: EmitContext) -> str:
    iters = ctx["iters"]
    ladder = ctx["ladder"]
    shift = ctx.const(3, 9)
    arms = []
    ctx.fuzz.int_vars = ["t"]
    for k in range(ladder):
        mod = ctx.pick([3, 5, 7, 11])
        cut = ctx.const(0, mod - 1)
        filler = ctx.fuzz.scoped_block(1, max_stmts=2)
        keyword = "if" if k == 0 else "} else if"
        arms.append(
            f"{keyword} (t % {mod} <= {cut}) {{\n"
            f"chk = chk + t * {2 * k + 1};\n{filler}\n"
        )
    arms.append("} else {\nchk = chk ^ t;\n}\n")
    ctx.fuzz.int_vars = []
    return (
        "int data[32];\n"
        "int main() {\n"
        "int chk = 0;\n"
        f"int state = {ctx.const(1, 10 ** 6)};\n"
        f"for (int i = 0; i < {iters}; i = i + 1) {{\n"
        "state = (state * 1103515245 + 12345) & 1073741823;\n"
        f"int t = (state >> {shift}) & 1023;\n"
        + "".join(arms)
        + "}\n"
        "for (int z = 0; z < 32; z = z + 1) { chk = chk + data[z]; }\n"
        "return chk;\n"
        "}\n"
    )


# ----------------------------------------------------------------------
DEFAULT_SKELETONS = (
    Skeleton(
        family="loopnest",
        description="affine nested counted loops over int arrays",
        params=(
            ParamSpec("depth", 2, 3),
            ParamSpec("n0", 4, 12),
            ParamSpec("n1", 4, 12),
            ParamSpec("n2", 4, 12),
        ),
        emit=_emit_loopnest,
    ),
    Skeleton(
        family="chase",
        description="pointer chase through an index-linked permutation",
        params=(
            ParamSpec("logn", 5, 8),
            ParamSpec("steps", 256, 2048),
            ParamSpec("chains", 1, 2),
        ),
        emit=_emit_chase,
    ),
    Skeleton(
        family="calltree",
        description="random tree of small helper functions",
        params=(
            ParamSpec("depth", 1, 3),
            ParamSpec("fan", 2, 3),
            ParamSpec("iters", 40, 200),
        ),
        emit=_emit_calltree,
    ),
    Skeleton(
        family="reduce",
        description="reductions with parallel accumulator lanes",
        params=(
            ParamSpec("lanes", 1, 4),
            ParamSpec("reps", 1, 4),
            ParamSpec("fp", 0, 1),
        ),
        emit=_emit_reduce,
    ),
    Skeleton(
        family="fppipe",
        description="streaming FP multiply-add pipelines",
        params=(
            ParamSpec("chain", 2, 5),
            ParamSpec("reps", 1, 3),
        ),
        emit=_emit_fppipe,
    ),
    Skeleton(
        family="branchy",
        description="LCG-driven data-dependent branch ladders",
        params=(
            ParamSpec("iters", 100, 400),
            ParamSpec("ladder", 2, 4),
        ),
        emit=_emit_branchy,
    ),
)


def default_grammar() -> Grammar:
    """The stock grammar over all six skeleton families."""
    return Grammar(DEFAULT_SKELETONS)

"""Cross-program generalizable models over a generated corpus.

The per-workload models the paper builds answer only for the program
they were fitted on.  This module fits ONE pooled model whose inputs
are the 25 coded design-point variables concatenated with the
:mod:`per-program feature vector <repro.workgen.features>` (z-scored
across the corpus), trained over a generated corpus plus the seed
workloads, against ``log(cycles)`` -- programs span orders of magnitude
in dynamic size, and the log keeps big kernels from drowning out small
ones in the least-squares objective.

Evaluation is leave-one-workload-out (LOWO): for each workload the
pooled model is refitted with every one of that workload's rows held
out and scored on the held-out test rows -- i.e. genuine cross-program
generalization to a never-seen program -- and compared against the
status-quo baseline, a dedicated per-program model trained on the same
workload's own train rows.

``publish_pooled`` stores the pooled model in the serving registry with
the full feature schema (variable order, normalization, per-workload
raw features, response transform) in the manifest's ``workgen`` block,
so one served model answers for any known program and client-side
concatenation is mechanical (:func:`pooled_row`, :func:`pooled_response`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.models.linear import LinearModel
from repro.obs import span
from repro.obs.ledger import record_event
from repro.space import full_space
from repro.workgen.corpus import CorpusSpec, generate_corpus
from repro.workgen.features import PROGRAM_FEATURE_NAMES, program_feature_vector
from repro.workgen.grammar import GRAMMAR_VERSION, _stable_hash

#: Manifest block name under which pooled-model schemas are stored.
MANIFEST_KEY = "workgen"

#: Z-scored program features are winsorized to this many standard
#: deviations (training AND prediction): a never-seen program with an
#: out-of-distribution feature must degrade toward the corpus mean, not
#: extrapolate a linear trend to absurd cycle predictions.
Z_CLIP = 3.0

#: The anchor feature: log cycles of ONE reference-point measurement
#: per program, taken with the same oracle that labels the training
#: rows.  Static summaries cannot recover a program's absolute cycle
#: scale when the oracle's own scale drifts (the analytical oracle is
#: orders of magnitude off on bzip2's data-dependent loop bounds, which
#: per-program models absorb silently); anchored pooling needs exactly
#: one cheap measurement for a never-seen program and leaves the whole
#: design-response surface to the model.
ANCHOR_FEATURE = "ref_log_cycles"

#: Feature order for pooled models: static+dynamic program features,
#: then the anchor.
POOLED_FEATURE_NAMES: List[str] = list(PROGRAM_FEATURE_NAMES) + [ANCHOR_FEATURE]


def reference_point() -> Dict[str, float]:
    """The fixed mid-domain design point used for anchor measurements."""
    space = full_space()
    return space.decode(np.zeros(space.dim))


def _clip_summary(z: np.ndarray) -> np.ndarray:
    """Winsorize the summary features but never the anchor (the last
    column): the anchor is a trusted measurement whose whole job is to
    carry out-of-distribution scale, so truncating it reintroduces the
    scale error it exists to remove."""
    out = np.clip(z, -Z_CLIP, Z_CLIP)
    out[..., -1] = z[..., -1]
    return out


@dataclass(frozen=True)
class GeneralizeConfig:
    """One cross-program fitting experiment, reproducible end to end."""

    corpus_seed: int = 0
    corpus_size: int = 64
    families: Tuple[str, ...] = ()
    include_seed_workloads: bool = True
    #: Design points drawn (and measured) per workload.
    points_per_workload: int = 48
    design_seed: int = 0
    #: Fraction of each workload's points used to train the per-program
    #: baseline; the rest are the held-out test rows for both models.
    train_frac: float = 2.0 / 3.0
    #: Measurement mode: "static" (analytical oracle, microseconds per
    #: point) or "accurate" (SMARTS-sampled cycle simulation).
    oracle: str = "static"
    jobs: Optional[int] = None
    #: Pooled model structure.  Interactions are off by default: the
    #: two-factor expansion over 25+24 variables has ~1200 terms, more
    #: than the rows a 64-program corpus yields, and the ridge-resolved
    #: fit extrapolates wildly on held-out programs.
    interactions: bool = False
    ridge: float = 1e-6


@dataclass
class WorkloadEval:
    """LOWO pooled error vs the per-program baseline for one workload."""

    workload: str
    origin: str
    pooled_mape: float
    baseline_mape: float
    n_train: int
    n_test: int


@dataclass
class GeneralizeReport:
    config: GeneralizeConfig
    workloads: List[str]
    evals: List[WorkloadEval]
    pooled_mape: float
    baseline_mape: float
    n_rows: int
    feature_names: List[str] = field(default_factory=list)
    feature_mean: List[float] = field(default_factory=list)
    feature_std: List[float] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": {
                "corpus_seed": self.config.corpus_seed,
                "corpus_size": self.config.corpus_size,
                "families": list(self.config.families),
                "include_seed_workloads": self.config.include_seed_workloads,
                "points_per_workload": self.config.points_per_workload,
                "design_seed": self.config.design_seed,
                "oracle": self.config.oracle,
            },
            "n_workloads": len(self.workloads),
            "n_rows": self.n_rows,
            "pooled_mape": self.pooled_mape,
            "baseline_mape": self.baseline_mape,
            "per_workload": [
                {
                    "workload": e.workload,
                    "origin": e.origin,
                    "pooled_mape": e.pooled_mape,
                    "baseline_mape": e.baseline_mape,
                    "n_train": e.n_train,
                    "n_test": e.n_test,
                }
                for e in self.evals
            ],
        }


# ----------------------------------------------------------------------
# Dataset assembly
# ----------------------------------------------------------------------
@dataclass
class PooledDataset:
    """Measured rows for every workload, ready for pooled fitting."""

    workloads: List[str]
    origins: Dict[str, str]
    #: workload -> (coded design (n,k), cycles (n,))
    rows: Dict[str, Tuple[np.ndarray, np.ndarray]]
    #: workload -> raw (unnormalized) program feature vector.
    features: Dict[str, np.ndarray]
    feature_mean: np.ndarray
    feature_std: np.ndarray

    def normalized_features(self, workload: str) -> np.ndarray:
        z = (self.features[workload] - self.feature_mean) / self.feature_std
        return _clip_summary(z)


def corpus_workload_names(config: GeneralizeConfig) -> List[str]:
    """The workload list for one experiment: generated corpus first
    (regenerated from the corpus seed), then the seed workloads."""
    spec = CorpusSpec(
        seed=config.corpus_seed,
        count=config.corpus_size,
        families=tuple(config.families),
    )
    names = [p.name for p in generate_corpus(spec)]
    if config.include_seed_workloads:
        from repro.workloads import workload_names

        names.extend(workload_names())
    return names


def _engine(config: GeneralizeConfig):
    from repro.harness.measure import MeasurementEngine, default_engine

    if config.oracle == "static":
        return MeasurementEngine(mode="static", jobs=config.jobs)
    if config.oracle == "accurate":
        return default_engine()
    raise ValueError(f"unknown oracle {config.oracle!r} (static|accurate)")


def build_dataset(
    config: GeneralizeConfig, engine=None
) -> PooledDataset:
    """Measure ``points_per_workload`` design points for every workload
    and extract program features.  Designs are per-workload seeded from
    ``(design_seed, workload name)``, so the whole dataset is pure in
    the config."""
    from repro.workloads import get_workload

    space = full_space()
    engine = engine if engine is not None else _engine(config)
    names = corpus_workload_names(config)
    rows: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    feats: Dict[str, np.ndarray] = {}
    origins: Dict[str, str] = {}
    with span("workgen.build_dataset", n_workloads=len(names)):
        for name in names:
            origins[name] = get_workload(name).origin
            rng = np.random.default_rng(
                [config.design_seed, _stable_hash(name)]
            )
            points = [
                space.random_point(rng)
                for _ in range(config.points_per_workload)
            ]
            cycles = np.array(
                [
                    m.cycles
                    for m in engine.measure_batch(
                        name, points, "train", jobs=config.jobs
                    )
                ],
                dtype=float,
            )
            rows[name] = (space.encode_matrix(points), cycles)
            anchor = math.log(
                max(engine.measure(name, reference_point(), "train").cycles, 1.0)
            )
            feats[name] = np.append(
                program_feature_vector(name, "train"), anchor
            )
    mat = np.stack([feats[n] for n in names])
    mean = mat.mean(axis=0)
    std = mat.std(axis=0)
    std[std == 0.0] = 1.0
    return PooledDataset(
        workloads=names,
        origins=origins,
        rows=rows,
        features=feats,
        feature_mean=mean,
        feature_std=std,
    )


def _pooled_matrix(
    dataset: PooledDataset, workloads: Sequence[str]
) -> Tuple[np.ndarray, np.ndarray]:
    """Stack ``[coded design | z-scored program features]`` rows and the
    log-cycle response for the given workloads."""
    xs, ys = [], []
    for name in workloads:
        coded, cycles = dataset.rows[name]
        z = dataset.normalized_features(name)
        xs.append(np.hstack([coded, np.tile(z, (coded.shape[0], 1))]))
        ys.append(np.log(np.maximum(cycles, 1.0)))
    return np.vstack(xs), np.concatenate(ys)


def _mape(predicted_cycles: np.ndarray, cycles: np.ndarray) -> float:
    return float(
        np.mean(np.abs(predicted_cycles - cycles) / np.maximum(cycles, 1.0))
        * 100.0
    )


def _pooled_model(config: GeneralizeConfig, n_vars: int) -> LinearModel:
    names = full_space().names + POOLED_FEATURE_NAMES
    assert len(names) == n_vars
    return LinearModel(
        variable_names=names,
        interactions=config.interactions,
        selection="none",
        ridge=config.ridge,
    )


def _split(n: int, train_frac: float) -> Tuple[np.ndarray, np.ndarray]:
    n_train = max(1, min(n - 1, int(round(n * train_frac))))
    idx = np.arange(n)
    return idx[:n_train], idx[n_train:]


# ----------------------------------------------------------------------
# LOWO evaluation
# ----------------------------------------------------------------------
def evaluate_lowo(
    config: GeneralizeConfig, dataset: Optional[PooledDataset] = None
) -> GeneralizeReport:
    """Leave-one-workload-out evaluation of the pooled model against
    per-program baselines, on shared held-out test rows."""
    dataset = dataset if dataset is not None else build_dataset(config)
    n_design = full_space().dim
    n_vars = n_design + len(POOLED_FEATURE_NAMES)
    evals: List[WorkloadEval] = []
    with span("workgen.evaluate_lowo", n_workloads=len(dataset.workloads)):
        for held_out in dataset.workloads:
            train_wl = [w for w in dataset.workloads if w != held_out]
            x_pool, y_pool = _pooled_matrix(dataset, train_wl)
            pooled = _pooled_model(config, n_vars).fit(x_pool, y_pool)

            coded, cycles = dataset.rows[held_out]
            tr, te = _split(len(cycles), config.train_frac)
            z = dataset.normalized_features(held_out)
            x_test = np.hstack([coded[te], np.tile(z, (len(te), 1))])
            pooled_cycles = np.exp(pooled.predict(x_test))

            baseline = LinearModel(
                variable_names=full_space().names,
                interactions=False,
                selection="none",
            ).fit(coded[tr], cycles[tr])
            baseline_cycles = baseline.predict(coded[te])

            evals.append(
                WorkloadEval(
                    workload=held_out,
                    origin=dataset.origins[held_out],
                    pooled_mape=_mape(pooled_cycles, cycles[te]),
                    baseline_mape=_mape(baseline_cycles, cycles[te]),
                    n_train=len(tr),
                    n_test=len(te),
                )
            )
    report = GeneralizeReport(
        config=config,
        workloads=list(dataset.workloads),
        evals=evals,
        pooled_mape=float(np.mean([e.pooled_mape for e in evals])),
        baseline_mape=float(np.mean([e.baseline_mape for e in evals])),
        n_rows=sum(len(c) for _, c in dataset.rows.values()),
        feature_names=list(POOLED_FEATURE_NAMES),
        feature_mean=[float(v) for v in dataset.feature_mean],
        feature_std=[float(v) for v in dataset.feature_std],
    )
    record_event(
        "workgen_generalize",
        attrs={
            "corpus_seed": config.corpus_seed,
            "corpus_size": config.corpus_size,
            "points_per_workload": config.points_per_workload,
            "oracle": config.oracle,
            "grammar_version": GRAMMAR_VERSION,
            "n_workloads": len(dataset.workloads),
            "pooled_mape": report.pooled_mape,
            "baseline_mape": report.baseline_mape,
        },
    )
    return report


# ----------------------------------------------------------------------
# Publishing and program-aware prediction
# ----------------------------------------------------------------------
def publish_pooled(
    registry,
    name: str,
    config: GeneralizeConfig,
    dataset: PooledDataset,
    report: Optional[GeneralizeReport] = None,
):
    """Fit the pooled model on the FULL dataset and store it with the
    feature schema, so clients can build prediction rows from a design
    point plus a workload name alone."""
    n_vars = full_space().dim + len(POOLED_FEATURE_NAMES)
    x, y = _pooled_matrix(dataset, dataset.workloads)
    model = _pooled_model(config, n_vars).fit(x, y)
    fit_metrics = None
    if report is not None:
        fit_metrics = {
            "lowo_pooled_mape": report.pooled_mape,
            "lowo_baseline_mape": report.baseline_mape,
        }
    extra = {
        MANIFEST_KEY: {
            "grammar_version": GRAMMAR_VERSION,
            "oracle": config.oracle,
            "design_variables": full_space().names,
            "program_features": list(POOLED_FEATURE_NAMES),
            "feature_mean": [float(v) for v in dataset.feature_mean],
            "feature_std": [float(v) for v in dataset.feature_std],
            "response_transform": "log",
            "workload_features": {
                w: [float(v) for v in dataset.features[w]]
                for w in dataset.workloads
            },
        }
    }
    entry = registry.save(
        model, name, space=None, fit_metrics=fit_metrics, extra_manifest=extra
    )
    record_event(
        "workgen_publish",
        attrs={"name": name, "n_rows": len(y)},
        refs={"model_id": entry.id},
    )
    return entry


def live_features(workload: str, oracle: str = "static") -> np.ndarray:
    """Full pooled feature vector (summaries + anchor) for a workload
    that was NOT in a model's training corpus, extracted on the spot."""
    from repro.harness.measure import MeasurementEngine, default_engine

    engine = (
        MeasurementEngine(mode="static", jobs=1)
        if oracle == "static"
        else default_engine()
    )
    anchor = math.log(
        max(engine.measure(workload, reference_point(), "train").cycles, 1.0)
    )
    return np.append(program_feature_vector(workload, "train"), anchor)


def pooled_schema(manifest: Mapping[str, object]) -> Optional[Mapping[str, object]]:
    """The ``workgen`` schema block of a stored model, or None."""
    block = manifest.get(MANIFEST_KEY)
    return block if isinstance(block, Mapping) else None


def pooled_row(
    schema: Mapping[str, object],
    coded_point: Sequence[float],
    workload: str,
) -> np.ndarray:
    """Build one prediction row ``[coded design | z-scored features]``.

    The workload's features come from the schema when it was part of
    the training corpus, and are extracted live otherwise -- any
    program the registry can resolve is predictable.
    """
    stored = schema.get("workload_features", {})
    if workload in stored:
        raw = np.asarray(stored[workload], dtype=float)
    else:
        raw = live_features(workload, schema.get("oracle", "static"))
    mean = np.asarray(schema["feature_mean"], dtype=float)
    std = np.asarray(schema["feature_std"], dtype=float)
    z = (raw - mean) / np.where(std == 0.0, 1.0, std)
    z = _clip_summary(z)
    return np.concatenate([np.asarray(coded_point, dtype=float), z])


def pooled_response(
    schema: Mapping[str, object], raw_prediction: np.ndarray
) -> np.ndarray:
    """Invert the training response transform (log -> cycles)."""
    if schema.get("response_transform") == "log":
        return np.exp(np.asarray(raw_prediction, dtype=float))
    return np.asarray(raw_prediction, dtype=float)

"""Random MiniC program generator for differential compiler testing.

Generates structurally diverse, guaranteed-terminating programs: counted
``for`` loops only, array indices reduced modulo the array size, both int
and float data, nested control flow and helper functions.  Every program
returns a checksum accumulated from all computed values, so any
miscompilation that changes any intermediate value is very likely to be
visible in the result.
"""

from __future__ import annotations

import numpy as np

INT_BIN_OPS = ["+", "-", "*", "/", "%", "&", "|", "^"]
CMP_OPS = ["<", "<=", ">", ">=", "==", "!="]


class ProgramGenerator:
    """Seeded random program factory."""

    def __init__(self, seed: int):
        self.rng = np.random.default_rng(seed)
        self.int_vars = []
        self.float_vars = []
        self.counter = 0

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    # ------------------------------------------------------------------
    def int_expr(self, depth: int = 0) -> str:
        r = self.rng
        choices = ["const", "var", "bin", "arr"]
        if depth > 2:
            choices = ["const", "var"]
        kind = r.choice(choices)
        if kind == "const" or (kind == "var" and not self.int_vars):
            return str(int(r.integers(-50, 200)))
        if kind == "var":
            return str(r.choice(self.int_vars))
        if kind == "arr":
            index = self.int_expr(depth + 2)
            return f"data[({index}) % 32 * (({index}) % 32 >= 0)]"
        op = r.choice(INT_BIN_OPS)
        left = self.int_expr(depth + 1)
        right = self.int_expr(depth + 1)
        return f"(({left}) {op} ({right}))"

    def float_expr(self, depth: int = 0) -> str:
        r = self.rng
        if depth > 2 or (not self.float_vars and r.random() < 0.5):
            return f"{float(r.integers(1, 9))}"
        if self.float_vars and r.random() < 0.4:
            return str(r.choice(self.float_vars))
        op = r.choice(["+", "-", "*"])
        return (
            f"(({self.float_expr(depth + 1)}) {op} "
            f"({self.float_expr(depth + 1)}))"
        )

    def cond_expr(self) -> str:
        op = self.rng.choice(CMP_OPS)
        return f"(({self.int_expr(1)}) {op} ({self.int_expr(1)}))"

    # ------------------------------------------------------------------
    def statement(self, depth: int) -> str:
        r = self.rng
        kinds = ["assign", "arr_store", "checksum"]
        if depth < 2:
            kinds += ["if", "for", "float_work"]
        kind = r.choice(kinds)
        if kind == "assign" and self.int_vars:
            var = r.choice(self.int_vars)
            return f"{var} = {self.int_expr()};"
        if kind == "arr_store":
            index = self.int_expr(2)
            safe = f"(({index}) % 32 + 32) % 32"
            return f"data[{safe}] = {self.int_expr(1)};"
        if kind == "if":
            then_body = self.scoped_block(depth + 1, max_stmts=2)
            if r.random() < 0.5:
                else_body = self.scoped_block(depth + 1, max_stmts=2)
                return (
                    f"if ({self.cond_expr()}) {{ {then_body} }} "
                    f"else {{ {else_body} }}"
                )
            return f"if ({self.cond_expr()}) {{ {then_body} }}"
        if kind == "for":
            iv = self.fresh("i")
            trip = int(r.integers(1, 12))
            body = self.scoped_block(depth + 1, max_stmts=2)
            return (
                f"for (int {iv} = 0; {iv} < {trip}; {iv} = {iv} + 1) "
                f"{{ chk = chk + {iv}; {body} }}"
            )
        if kind == "float_work":
            var = self.fresh("f")
            init = self.float_expr()  # before registering: no self-reference
            self.float_vars.append(var)
            return (
                f"float {var} = {init};\n"
                f"chk = chk + (int)({var});"
            )
        return f"chk = chk ^ ({self.int_expr()});"

    def block(self, depth: int, max_stmts: int = 3) -> str:
        n = int(self.rng.integers(1, max_stmts + 1))
        return "\n".join(self.statement(depth) for _ in range(n))

    def scoped_block(self, depth: int, max_stmts: int = 3) -> str:
        """A block whose declarations do not escape into later code."""
        int_mark = len(self.int_vars)
        float_mark = len(self.float_vars)
        text = self.block(depth, max_stmts)
        del self.int_vars[int_mark:]
        del self.float_vars[float_mark:]
        return text

    # ------------------------------------------------------------------
    def helper_function(self, index: int) -> str:
        body = []
        old_ints = self.int_vars
        self.int_vars = ["x", "y"]
        expr = self.int_expr()
        cond = self.cond_expr()
        self.int_vars = old_ints
        return (
            f"int helper{index}(int x, int y) {{\n"
            f"    if ({cond}) {{ return ({expr}) % 9973; }}\n"
            f"    return (x + y * 3) % 9973;\n"
            f"}}\n"
        )

    def program(self) -> str:
        r = self.rng
        n_helpers = int(r.integers(0, 3))
        helpers = [self.helper_function(i) for i in range(n_helpers)]

        self.int_vars = []
        body_parts = []
        for i in range(int(r.integers(1, 4))):
            var = self.fresh("v")
            init = self.int_expr(1)  # before registering: no self-reference
            self.int_vars.append(var)
            body_parts.append(f"int {var} = {init};")
        body_parts.append(self.block(0, max_stmts=4))
        for i in range(n_helpers):
            body_parts.append(
                f"chk = chk + helper{i}({self.int_expr(2)}, "
                f"{self.int_expr(2)});"
            )
        # Final array fold so stores are observable.
        body_parts.append(
            "for (int z = 0; z < 32; z = z + 1) { chk = chk + data[z]; }"
        )
        body = "\n".join(body_parts)
        return (
            "int data[32];\n"
            + "".join(helpers)
            + "int main() {\n"
            + "int chk = 0;\n"
            + body
            + "\nreturn chk;\n}\n"
        )


def generate_program(seed: int) -> str:
    return ProgramGenerator(seed).program()

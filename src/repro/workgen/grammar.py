"""Declarative, seeded grammar over MiniC kernel skeletons.

A :class:`Grammar` is an ordered set of :class:`Skeleton` rules.  Each
skeleton names a *family* of kernels (loop nests, pointer chases, call
trees, reductions, FP pipelines, branchy scalar code), declares the
integer parameters it draws per program (:class:`ParamSpec`), and emits
MiniC source from a seeded :class:`EmitContext`.  Every emitted program
is terminating by construction -- only counted ``for`` loops, array
indices reduced modulo the (power-of-two) array sizes -- and returns a
checksum accumulated from every computed value, so any two correct
builds of the same program are comparable (the same contract the
differential fuzz tests rely on).

Determinism contract: ``Grammar.generate(family, seed)`` is a pure
function of ``(GRAMMAR_VERSION, family, seed)``.  The RNG is seeded
from those three values only (the family name enters through a stable
md5-based hash, never the interpreter's randomized ``hash``), so the
same name regenerates the same byte-identical source in any process --
which is what lets pool workers and future sessions resolve a synthetic
workload from its name alone.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.workgen.gen import ProgramGenerator

#: Bump whenever any skeleton's emission changes: the version feeds the
#: per-program RNG seed, so old names regenerate old sources only within
#: one grammar version (corpus manifests record it and refuse to verify
#: across versions).
GRAMMAR_VERSION = 1

#: Workload names for generated programs: ``gen-<family>-<seed>``.
NAME_PREFIX = "gen"


class GrammarError(Exception):
    pass


def _stable_hash(text: str) -> int:
    """Process-independent 32-bit hash (``hash()`` is randomized)."""
    digest = hashlib.md5(text.encode()).digest()
    return int.from_bytes(digest[:4], "little")


@dataclass(frozen=True)
class ParamSpec:
    """One integer parameter a skeleton draws per program."""

    name: str
    lo: int
    hi: int  # inclusive

    def draw(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.lo, self.hi + 1))


class EmitContext:
    """Seeded state handed to a skeleton's emit rule.

    Exposes the drawn parameters (``ctx["name"]``), the program RNG, and
    a :class:`repro.workgen.gen.ProgramGenerator` sharing that RNG for
    random expression/statement filler -- the proven fuzz core is the
    grammar's terminal-level generator rather than a parallel
    implementation.
    """

    def __init__(self, rng: np.random.Generator, params: Mapping[str, int]):
        self.rng = rng
        self.params = dict(params)
        self.fuzz = ProgramGenerator(0)
        self.fuzz.rng = rng  # one stream: filler draws advance the program RNG

    def __getitem__(self, name: str) -> int:
        return self.params[name]

    def pick(self, options: Sequence):
        """Draw one of ``options`` (index-based: no value-type surprises)."""
        return options[int(self.rng.integers(len(options)))]

    def const(self, lo: int, hi: int) -> int:
        """A random literal in ``[lo, hi]``."""
        return int(self.rng.integers(lo, hi + 1))

    def odd(self, lo: int, hi: int) -> int:
        """A random odd literal (odd multipliers mod a power of two are
        bijections, which the pointer-chase permutation relies on)."""
        return self.const(lo, hi) | 1


@dataclass(frozen=True)
class Skeleton:
    """One declarative grammar rule: a kernel family."""

    family: str
    description: str
    params: Tuple[ParamSpec, ...]
    emit: Callable[[EmitContext], str]
    weight: float = 1.0

    def instantiate(self, rng: np.random.Generator) -> Tuple[Dict[str, int], str]:
        drawn = {p.name: p.draw(rng) for p in self.params}
        source = self.emit(EmitContext(rng, drawn))
        return drawn, source


@dataclass(frozen=True)
class GeneratedProgram:
    """A fully-instantiated synthetic workload program."""

    name: str
    family: str
    seed: int
    params: Mapping[str, int]
    source: str

    def digest(self) -> str:
        try:
            h = hashlib.md5(self.source.encode(), usedforsecurity=False)
        except TypeError:
            h = hashlib.md5(self.source.encode())
        return h.hexdigest()


def program_name(family: str, seed: int) -> str:
    return f"{NAME_PREFIX}-{family}-{seed}"


def parse_name(name: str) -> Optional[Tuple[str, int]]:
    """``gen-<family>-<seed>`` -> ``(family, seed)``; None if not ours."""
    parts = name.split("-")
    if len(parts) != 3 or parts[0] != NAME_PREFIX:
        return None
    family, seed_text = parts[1], parts[2]
    if not family or not seed_text.isdigit():
        return None
    return family, int(seed_text)


class Grammar:
    """An ordered, weighted collection of skeleton families."""

    def __init__(self, skeletons: Sequence[Skeleton]):
        names = [s.family for s in skeletons]
        if len(set(names)) != len(names):
            raise GrammarError("duplicate skeleton family names")
        for s in skeletons:
            if "-" in s.family or not s.family.islower():
                raise GrammarError(
                    f"family {s.family!r} must be lowercase without '-' "
                    f"(it is embedded in workload names)"
                )
            if s.weight <= 0:
                raise GrammarError(f"family {s.family!r}: weight must be > 0")
        self._skeletons: List[Skeleton] = list(skeletons)
        self._index = {s.family: s for s in self._skeletons}

    @property
    def families(self) -> List[str]:
        return [s.family for s in self._skeletons]

    def skeleton(self, family: str) -> Skeleton:
        if family not in self._index:
            raise GrammarError(
                f"unknown skeleton family {family!r} (have {self.families})"
            )
        return self._index[family]

    # ------------------------------------------------------------------
    def generate(self, family: str, seed: int) -> GeneratedProgram:
        """Instantiate one program: pure in (version, family, seed)."""
        skeleton = self.skeleton(family)
        if seed < 0:
            raise GrammarError("program seed must be non-negative")
        rng = np.random.default_rng(
            [GRAMMAR_VERSION, _stable_hash(family), seed]
        )
        params, source = skeleton.instantiate(rng)
        return GeneratedProgram(
            name=program_name(family, seed),
            family=family,
            seed=seed,
            params=params,
            source=source,
        )

    def sample_family(self, rng: np.random.Generator) -> str:
        """Weighted family draw (used by corpus generation)."""
        weights = np.array([s.weight for s in self._skeletons], dtype=float)
        probs = weights / weights.sum()
        return self._skeletons[int(rng.choice(len(probs), p=probs))].family

"""Seeded corpus generation, manifests, and the semantic-check gate.

A corpus is fully determined by a :class:`CorpusSpec` -- one seed, a
program count and an optional family subset.  ``generate_corpus``
derives every program seed from the corpus seed, so the whole corpus is
reproducible from the spec alone; the manifest written next to an
exported corpus records spec, grammar version and per-program source
digests, and :func:`verify_manifest` proves a manifest still
regenerates byte-identically (the provenance ledger stores the corpus
digest with every generation).

The semantic-check gate (:func:`check_program`) is the admission test
for a generated program: it must survive the full MiniC frontend, and
the IR interpreter (the semantics reference) and the functional
simulator of the compiled O0 binary must agree on the checksum.  A
program failing the gate is a *generator* bug, never shipped silently
-- generation raises :class:`SemanticCheckFailure` with the offending
source attached.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import counter, span
from repro.obs.ledger import record_event
from repro.workgen.grammar import (
    GRAMMAR_VERSION,
    GeneratedProgram,
    Grammar,
    GrammarError,
)

MANIFEST_SCHEMA_VERSION = 1

_GENERATED = counter("workgen.programs_generated")
_CHECKED = counter("workgen.programs_checked")
_CHECK_FAILURES = counter("workgen.check_failures")


class SemanticCheckFailure(Exception):
    """A generated program failed the admission gate."""

    def __init__(self, program: GeneratedProgram, reason: str):
        self.program = program
        self.reason = reason
        super().__init__(
            f"{program.name}: {reason}\n--- source ---\n{program.source}"
        )


@dataclass(frozen=True)
class CorpusSpec:
    """Everything needed to regenerate a corpus."""

    seed: int
    count: int
    families: Tuple[str, ...] = ()

    def resolved_families(self, grammar: Grammar) -> List[str]:
        if not self.families:
            return list(grammar.families)
        unknown = [f for f in self.families if f not in grammar.families]
        if unknown:
            raise GrammarError(
                f"unknown families {unknown} (have {grammar.families})"
            )
        # Preserve grammar order, not request order: the corpus must not
        # depend on how the caller spelled the subset.
        return [f for f in grammar.families if f in self.families]


def _default_grammar() -> Grammar:
    from repro.workgen.skeletons import default_grammar

    return default_grammar()


def generate_corpus(
    spec: CorpusSpec, grammar: Optional[Grammar] = None
) -> List[GeneratedProgram]:
    """Generate ``spec.count`` programs, reproducibly from ``spec.seed``.

    The first ``len(families)`` programs cover every requested family
    once (in grammar order) so small corpora still exercise the whole
    grammar; the rest draw families at the grammar's weights.  Program
    seeds come from the corpus RNG, with redraws on (astronomically
    rare) name collisions.
    """
    grammar = grammar or _default_grammar()
    if spec.count < 1:
        raise GrammarError("corpus count must be >= 1")
    families = spec.resolved_families(grammar)
    rng = np.random.default_rng([GRAMMAR_VERSION, spec.seed])
    weights = np.array(
        [grammar.skeleton(f).weight for f in families], dtype=float
    )
    probs = weights / weights.sum()
    programs: List[GeneratedProgram] = []
    seen = set()
    with span("workgen.generate_corpus", seed=spec.seed, count=spec.count):
        for i in range(spec.count):
            if i < len(families):
                family = families[i]
            else:
                family = families[int(rng.choice(len(probs), p=probs))]
            while True:
                program_seed = int(rng.integers(0, 2**31 - 1))
                if (family, program_seed) not in seen:
                    break
            seen.add((family, program_seed))
            programs.append(grammar.generate(family, program_seed))
    _GENERATED.inc(len(programs))
    record_event(
        "workgen_corpus",
        attrs={
            "seed": spec.seed,
            "count": spec.count,
            "families": list(spec.families) or "all",
            "grammar_version": GRAMMAR_VERSION,
        },
        refs={"corpus_digest": corpus_digest(programs)},
    )
    return programs


# ----------------------------------------------------------------------
# Semantic-check gate
# ----------------------------------------------------------------------
@dataclass
class CheckResult:
    """Outcome of the admission gate for one program."""

    checksum: int
    dynamic_instructions: int


def check_program(program: GeneratedProgram) -> CheckResult:
    """Frontend + differential execution gate for one program.

    Compiles the source through the full MiniC frontend, runs the IR
    interpreter (reference semantics) and the functional simulator on
    the O0 binary, and requires checksum agreement.
    """
    # Imported lazily: generation alone must not pull in the compiler.
    from repro.codegen import compile_module
    from repro.ir.interp import interpret
    from repro.minic import compile_source
    from repro.opt import CompilerConfig
    from repro.sim.func import execute

    _CHECKED.inc()
    try:
        module = compile_source(program.source, name=program.name)
        reference = interpret(module)
        exe = compile_module(module, CompilerConfig(), issue_width=4)
        functional = execute(exe, collect_trace=False)
    except Exception as exc:  # noqa: BLE001 -- re-raised with source
        _CHECK_FAILURES.inc()
        raise SemanticCheckFailure(
            program, f"{type(exc).__name__}: {exc}"
        ) from exc
    if functional.return_value != reference.return_value:
        _CHECK_FAILURES.inc()
        raise SemanticCheckFailure(
            program,
            f"checksum disagreement: interp {reference.return_value} vs "
            f"functional sim {functional.return_value}",
        )
    return CheckResult(
        checksum=int(functional.return_value),
        dynamic_instructions=int(functional.instruction_count),
    )


def check_corpus(programs: Sequence[GeneratedProgram]) -> List[CheckResult]:
    """Run the gate over a whole corpus (fail-fast on the first bad
    program: one generator bug usually repeats across seeds)."""
    return [check_program(p) for p in programs]


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------
def corpus_digest(programs: Sequence[GeneratedProgram]) -> str:
    payload = "\n".join(f"{p.name}:{p.digest()}" for p in programs)
    try:
        h = hashlib.md5(payload.encode(), usedforsecurity=False)
    except TypeError:
        h = hashlib.md5(payload.encode())
    return h.hexdigest()


def manifest_dict(
    spec: CorpusSpec, programs: Sequence[GeneratedProgram]
) -> Dict[str, object]:
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "grammar_version": GRAMMAR_VERSION,
        "spec": {
            "seed": spec.seed,
            "count": spec.count,
            "families": list(spec.families),
        },
        "corpus_digest": corpus_digest(programs),
        "programs": [
            {
                "name": p.name,
                "family": p.family,
                "seed": p.seed,
                "params": dict(p.params),
                "digest": p.digest(),
            }
            for p in programs
        ],
    }


def write_manifest(
    path: str, spec: CorpusSpec, programs: Sequence[GeneratedProgram]
) -> Dict[str, object]:
    manifest = manifest_dict(spec, programs)
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return manifest


def load_manifest(path: str) -> Dict[str, object]:
    manifest = json.loads(Path(path).read_text())
    if not isinstance(manifest, dict):
        raise ValueError(f"{path}: manifest must be a JSON object")
    version = manifest.get("schema_version")
    if version != MANIFEST_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: manifest schema {version!r} != "
            f"{MANIFEST_SCHEMA_VERSION} (regenerate the corpus)"
        )
    return manifest


def spec_from_manifest(manifest: Dict[str, object]) -> CorpusSpec:
    spec = manifest["spec"]
    return CorpusSpec(
        seed=int(spec["seed"]),
        count=int(spec["count"]),
        families=tuple(spec.get("families", ())),
    )


def verify_manifest(
    manifest: Dict[str, object], grammar: Optional[Grammar] = None
) -> List[str]:
    """Regenerate the manifest's corpus and diff it; returns problems.

    Catches grammar drift (a skeleton edit without a version bump),
    manifest tampering, and cross-version replays.
    """
    problems: List[str] = []
    if manifest.get("grammar_version") != GRAMMAR_VERSION:
        problems.append(
            f"grammar version {manifest.get('grammar_version')!r} != "
            f"current {GRAMMAR_VERSION}"
        )
        return problems
    spec = spec_from_manifest(manifest)
    regenerated = generate_corpus(spec, grammar=grammar)
    recorded = manifest.get("programs", [])
    if len(recorded) != len(regenerated):
        problems.append(
            f"program count {len(recorded)} != regenerated {len(regenerated)}"
        )
        return problems
    for entry, program in zip(recorded, regenerated):
        if entry.get("name") != program.name:
            problems.append(
                f"name mismatch: {entry.get('name')} != {program.name}"
            )
        elif entry.get("digest") != program.digest():
            problems.append(f"{program.name}: source digest mismatch")
    if manifest.get("corpus_digest") != corpus_digest(regenerated):
        problems.append("corpus digest mismatch")
    return problems


def export_corpus(
    directory: str, spec: CorpusSpec, programs: Sequence[GeneratedProgram]
) -> Path:
    """Write one ``.mc`` source per program plus ``manifest.json``."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    for p in programs:
        (root / f"{p.name}.mc").write_text(p.source)
    write_manifest(str(root / "manifest.json"), spec, programs)
    return root

"""Per-program feature vectors for cross-program models.

A program's feature vector combines the PR-9 static summaries
(:func:`repro.analysis.static.analyses.analyze_module` over the O0
build) with cheap dynamic features from one functional-simulator run
with tracing on.  Concatenated with the 25 coded design-point
variables, these are the extra columns that let one pooled model answer
for *any* program -- generated or seed -- instead of one model per
workload (see :mod:`repro.workgen.generalize`).

All count/size-like features are log-compressed (``log1p``) so programs
spanning orders of magnitude in dynamic size land on comparable scales;
fractions and probabilities are left raw.  The vector layout is frozen
in :data:`PROGRAM_FEATURE_NAMES` -- served pooled models record it in
their manifest, so reordering or adding features requires republishing.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.analysis.static.analyses import FunctionSummary, ModuleSummary

#: Frozen feature order; every vector produced here follows it.
PROGRAM_FEATURE_NAMES: List[str] = [
    # -- static (module summary over the O0 build) ---------------------
    "st_log_instrs",
    "st_n_funcs",
    "st_n_loops",
    "st_max_loop_depth",
    "st_mean_log_trip",
    "st_loop_instr_frac",
    "st_frac_ialu",
    "st_frac_imult",
    "st_frac_fp",
    "st_frac_load",
    "st_frac_store",
    "st_frac_branch",
    "st_ilp_width",
    "st_loads_on_path_frac",
    "st_stream_frac",
    "st_irregular_frac",
    "st_log_footprint",
    "st_branch_mispredict",
    "st_call_density",
    # -- dynamic (one traced functional run) ---------------------------
    "dy_log_instrs",
    "dy_mem_frac",
    "dy_log_working_set",
    "dy_branch_frac",
]

#: Cap on trace events scanned for dynamic features; one pass over the
#: prefix is plenty for mix/working-set estimates and keeps feature
#: extraction out of the measurement critical path.
TRACE_EVENT_CAP = 200_000


def _freq_weight(fn: FunctionSummary, block: str) -> float:
    return fn.entry_freq * fn.local_freq.get(block, 0.0)


def static_features(summary: ModuleSummary) -> Dict[str, float]:
    """Static feature dict (st_*) from a module summary.

    Mix fractions, the ILP-width proxy (straight-line instructions over
    the latency-weighted critical path) and the loads-on-path fraction
    are frequency-weighted over blocks, so cold helper code does not
    drown out the hot loops the model actually has to price.
    """
    feats = {name: 0.0 for name in PROGRAM_FEATURE_NAMES if name.startswith("st_")}
    feats["st_log_instrs"] = math.log1p(summary.total_instrs)
    # Counts are log-compressed like sizes: a deep call tree has ~100
    # functions and a raw count would dominate the z-scored scale.
    feats["st_n_funcs"] = math.log1p(len(summary.functions))

    w_total = 0.0
    mix_w: Dict[str, float] = {}
    crit_w = 0.0
    loads_path_w = 0.0
    loop_instrs = 0.0
    total_weighted_instrs = 0.0
    n_loops = 0
    max_depth = 0
    log_trips: List[float] = []
    stream_foot = 0.0
    irregular_foot = 0.0
    foot_total = 0.0
    mispredict_w = 0.0
    branch_w = 0.0
    call_w = 0.0

    for fn in summary.functions.values():
        for block, bm in fn.blocks.items():
            w = _freq_weight(fn, block) * max(bm.n_instrs, 1)
            w_total += w
            total_weighted_instrs += _freq_weight(fn, block) * bm.n_instrs
            for cls, n in bm.mix.items():
                mix_w[cls] = mix_w.get(cls, 0.0) + _freq_weight(fn, block) * n
            if bm.n_instrs > 0:
                crit_w += w * (bm.n_instrs / max(bm.crit_path, 1.0))
                loads_path_w += w * (bm.loads_on_path / bm.n_instrs)
        loop_blocks = set()
        for loop in fn.loops:
            n_loops += 1
            max_depth = max(max_depth, loop.depth)
            log_trips.append(math.log1p(loop.trip_estimate))
            loop_blocks.update(loop.blocks)
        for block in loop_blocks:
            bm = fn.blocks.get(block)
            if bm is not None:
                loop_instrs += _freq_weight(fn, block) * bm.n_instrs
        for stream in fn.streams:
            foot_total += stream.footprint
            if stream.reuse == "stream":
                stream_foot += stream.footprint
            elif stream.reuse == "random":
                irregular_foot += stream.footprint
        for br in fn.branches:
            w = _freq_weight(fn, br.block)
            branch_w += w
            mispredict_w += w * br.mispredict
        for _, block, freq in fn.call_sites:
            call_w += fn.entry_freq * freq

    feats["st_n_loops"] = math.log1p(n_loops)
    feats["st_max_loop_depth"] = float(max_depth)
    feats["st_mean_log_trip"] = (
        sum(log_trips) / len(log_trips) if log_trips else 0.0
    )
    if total_weighted_instrs > 0:
        feats["st_loop_instr_frac"] = min(loop_instrs / total_weighted_instrs, 1.0)
        mix_total = sum(mix_w.values())
        if mix_total > 0:
            feats["st_frac_ialu"] = mix_w.get("ialu", 0.0) / mix_total
            feats["st_frac_imult"] = mix_w.get("imult", 0.0) / mix_total
            feats["st_frac_fp"] = (
                mix_w.get("fpalu", 0.0) + mix_w.get("fpmult", 0.0)
            ) / mix_total
            feats["st_frac_load"] = mix_w.get("load", 0.0) / mix_total
            feats["st_frac_store"] = mix_w.get("store", 0.0) / mix_total
            feats["st_frac_branch"] = (
                mix_w.get("branch", 0.0) + mix_w.get("jump", 0.0)
            ) / mix_total
        feats["st_call_density"] = call_w / total_weighted_instrs
    if w_total > 0:
        feats["st_ilp_width"] = crit_w / w_total
        feats["st_loads_on_path_frac"] = loads_path_w / w_total
    if foot_total > 0:
        feats["st_stream_frac"] = stream_foot / foot_total
        feats["st_irregular_frac"] = irregular_foot / foot_total
    feats["st_log_footprint"] = math.log1p(foot_total)
    if branch_w > 0:
        feats["st_branch_mispredict"] = mispredict_w / branch_w
    return feats


def dynamic_features(exe, functional) -> Dict[str, float]:
    """Dynamic feature dict (dy_*) from one traced functional run.

    ``functional`` must come from ``execute(exe, collect_trace=True)``;
    only the first :data:`TRACE_EVENT_CAP` trace events are scanned.
    """
    from repro.codegen.isa import OpClass

    feats = {name: 0.0 for name in PROGRAM_FEATURE_NAMES if name.startswith("dy_")}
    feats["dy_log_instrs"] = math.log1p(functional.instruction_count)
    trace = functional.trace or []
    if not trace:
        return feats
    events = trace[:TRACE_EVENT_CAP]
    n_mem = 0
    n_branch = 0
    addrs = set()
    instrs = exe.instrs
    for pc, ea in events:
        cls = instrs[pc].op_class
        if cls is OpClass.LOAD or cls is OpClass.STORE:
            n_mem += 1
            if ea >= 0:
                addrs.add(ea)
        elif cls is OpClass.BRANCH:
            n_branch += 1
    n = len(events)
    feats["dy_mem_frac"] = n_mem / n
    feats["dy_branch_frac"] = n_branch / n
    feats["dy_log_working_set"] = math.log1p(len(addrs))
    return feats


def program_features(workload_name: str, input_name: str = "train") -> Dict[str, float]:
    """Full feature dict for one registered workload (static + dynamic).

    Builds the O0 binary for the workload's ``input_name`` input, runs
    the static analyzer and one traced functional run.  Results are
    cached per ``(workload, input)`` for the life of the process.
    """
    key = (workload_name, input_name)
    cached = _FEATURE_CACHE.get(key)
    if cached is not None:
        return dict(cached)

    from repro.analysis.static.analyses import analyze_module
    from repro.codegen import compile_module
    from repro.opt import CompilerConfig
    from repro.sim.func import execute
    from repro.workloads import get_workload

    workload = get_workload(workload_name)
    module = workload.module(input_name)
    feats = static_features(analyze_module(module))
    exe = compile_module(module, CompilerConfig(), issue_width=4)
    functional = execute(exe, collect_trace=True)
    feats.update(dynamic_features(exe, functional))
    _FEATURE_CACHE[key] = dict(feats)
    return feats


_FEATURE_CACHE: Dict[tuple, Dict[str, float]] = {}


def program_feature_vector(
    workload_name: str, input_name: str = "train"
) -> np.ndarray:
    """Feature dict -> vector in :data:`PROGRAM_FEATURE_NAMES` order."""
    feats = program_features(workload_name, input_name)
    return np.array([feats[name] for name in PROGRAM_FEATURE_NAMES], dtype=float)

"""Grammar-driven synthetic workload generation (ROADMAP item 5).

The subsystem turns the 7 fixed SPEC stand-ins into an open-ended
scenario space:

* :mod:`repro.workgen.gen` -- the seeded random-program core promoted
  from the differential fuzz tests (shared, not duplicated);
* :mod:`repro.workgen.grammar` / :mod:`repro.workgen.skeletons` -- a
  declarative grammar over kernel skeleton families emitting
  semantically-checked, guaranteed-terminating MiniC programs;
* :mod:`repro.workgen.corpus` -- seeded corpus generation, manifests,
  and the semantic-check gate (interp vs functional-sim checksums);
* :mod:`repro.workgen.features` -- per-program feature vectors from the
  static analysis framework plus cheap dynamic trace features;
* :mod:`repro.workgen.generalize` -- cross-program pooled model fitting
  and leave-one-workload-out evaluation.

Generated programs are first-class workloads: the registry resolves
``gen-<family>-<seed>`` names by regenerating the program from the name
alone (see :func:`repro.workloads.get_workload`), so every measurement
path -- including pool workers in other processes -- works on them
unchanged.
"""

from repro.workgen.gen import ProgramGenerator, generate_program
from repro.workgen.grammar import (
    GRAMMAR_VERSION,
    EmitContext,
    GeneratedProgram,
    Grammar,
    GrammarError,
    ParamSpec,
    Skeleton,
    parse_name,
    program_name,
)
from repro.workgen.skeletons import DEFAULT_SKELETONS, default_grammar
from repro.workgen.corpus import (
    CorpusSpec,
    SemanticCheckFailure,
    check_corpus,
    check_program,
    corpus_digest,
    export_corpus,
    generate_corpus,
    load_manifest,
    manifest_dict,
    verify_manifest,
    write_manifest,
)
from repro.workgen.features import (
    PROGRAM_FEATURE_NAMES,
    dynamic_features,
    program_feature_vector,
    program_features,
    static_features,
)
from repro.workgen.generalize import (
    POOLED_FEATURE_NAMES,
    GeneralizeConfig,
    GeneralizeReport,
    build_dataset,
    evaluate_lowo,
    pooled_response,
    pooled_row,
    pooled_schema,
    publish_pooled,
)

__all__ = [
    "ProgramGenerator",
    "generate_program",
    "GRAMMAR_VERSION",
    "EmitContext",
    "GeneratedProgram",
    "Grammar",
    "GrammarError",
    "ParamSpec",
    "Skeleton",
    "parse_name",
    "program_name",
    "DEFAULT_SKELETONS",
    "default_grammar",
    "CorpusSpec",
    "SemanticCheckFailure",
    "check_corpus",
    "check_program",
    "corpus_digest",
    "export_corpus",
    "generate_corpus",
    "load_manifest",
    "manifest_dict",
    "verify_manifest",
    "write_manifest",
    "PROGRAM_FEATURE_NAMES",
    "dynamic_features",
    "program_feature_vector",
    "program_features",
    "static_features",
    "POOLED_FEATURE_NAMES",
    "GeneralizeConfig",
    "GeneralizeReport",
    "build_dataset",
    "evaluate_lowo",
    "pooled_response",
    "pooled_row",
    "pooled_schema",
    "publish_pooled",
]

"""D-optimal design selection via Fedorov exchange.

Given a candidate matrix Z (coded), choose n rows X maximizing
``det(F'F)`` where F is the model-matrix expansion of X.  The exchange
algorithm repeatedly replaces a design row x_i by a candidate z_j when the
swap increases the determinant; the determinant ratio of a swap is the
classical Fedorov delta

    delta(i, j) = 1 + d(z_j) - d(x_i) - (d(x_i) d(z_j) - d(x_i, z_j)^2)

with d(x) = f(x)' M^-1 f(x) and d(x, y) = f(x)' M^-1 f(y).  We maintain
M^-1, the candidate projection G = F_cand M^-1 and the leverage vector
d(z_j) incrementally with Sherman-Morrison rank-one updates, so a full
exchange pass over an n-point design and m candidates costs O(n m p)
instead of O(n m p^2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.doe.model_matrix import ModelMatrixBuilder, builder_for_sample_size


@dataclass
class DOptimalResult:
    """Outcome of a D-optimal design search."""

    #: Indices into the candidate matrix of the selected rows.
    indices: List[int]
    #: The selected coded design matrix, ``(n, k)``.
    design: np.ndarray
    #: log det of the (ridged) information matrix of the final design.
    log_det: float
    #: Number of full exchange passes performed.
    passes: int
    #: Total number of row swaps applied.
    swaps: int
    #: The model-matrix builder used to define optimality.
    builder: ModelMatrixBuilder


class _ExchangeState:
    """Incrementally maintained information-matrix state."""

    def __init__(self, f_cand: np.ndarray, init_rows: np.ndarray, ridge: float):
        p = f_cand.shape[1]
        m_info = init_rows.T @ init_rows + ridge * np.eye(p)
        sign, self.log_det = np.linalg.slogdet(m_info)
        if sign <= 0:
            raise np.linalg.LinAlgError("information matrix not positive definite")
        self.m_inv = np.linalg.inv(m_info)
        self.f_cand = f_cand
        # G[j] = f_cand[j] @ m_inv ; d[j] = f_cand[j] @ m_inv @ f_cand[j]
        self.g = f_cand @ self.m_inv
        self.d = np.einsum("ij,ij->i", self.g, f_cand)

    def leverage(self, f_row: np.ndarray) -> float:
        return float(f_row @ self.m_inv @ f_row)

    def cross(self, f_row: np.ndarray) -> np.ndarray:
        """d(z_j, f_row) for all candidates j."""
        return self.g @ f_row

    def _rank_one(self, f_row: np.ndarray, sign: float) -> None:
        """Apply M <- M + sign * f f' to the inverse state."""
        mu = self.m_inv @ f_row
        d_u = float(f_row @ mu)
        denom = 1.0 + sign * d_u
        if denom <= 1e-12:
            raise np.linalg.LinAlgError("rank-one update would be singular")
        gu = self.g @ f_row
        self.m_inv -= sign * np.outer(mu, mu) / denom
        self.g -= sign * np.outer(gu, mu) / denom
        self.d -= sign * gu * gu / denom
        self.log_det += np.log(denom)

    def add(self, f_row: np.ndarray) -> None:
        self._rank_one(f_row, +1.0)

    def remove(self, f_row: np.ndarray) -> None:
        self._rank_one(f_row, -1.0)


def _run_exchange(
    f_cand: np.ndarray,
    indices: List[int],
    fixed_rows: Optional[np.ndarray],
    ridge: float,
    max_passes: int,
    tol: float,
) -> "tuple[_ExchangeState, int, int]":
    rows = f_cand[indices]
    init = rows if fixed_rows is None else np.vstack([fixed_rows, rows])
    state = _ExchangeState(f_cand, init, ridge)
    total_swaps = 0
    n_passes = 0
    for _ in range(max_passes):
        n_passes += 1
        swaps_this_pass = 0
        for slot in range(len(indices)):
            f_i = f_cand[indices[slot]]
            d_i = state.leverage(f_i)
            d_ij = state.cross(f_i)
            delta = 1.0 + state.d - d_i - (d_i * state.d - d_ij * d_ij)
            best_j = int(np.argmax(delta))
            if delta[best_j] > 1.0 + tol and best_j != indices[slot]:
                state.add(f_cand[best_j])
                state.remove(f_i)
                indices[slot] = best_j
                swaps_this_pass += 1
        total_swaps += swaps_this_pass
        if swaps_this_pass == 0:
            break
    return state, n_passes, total_swaps


def d_optimal_design(
    candidates: np.ndarray,
    n: int,
    rng: np.random.Generator,
    builder: Optional[ModelMatrixBuilder] = None,
    max_passes: int = 20,
    ridge: float = 1e-6,
    tol: float = 1e-9,
) -> DOptimalResult:
    """Select an n-point D-optimal design from coded ``candidates``.

    Parameters
    ----------
    candidates:
        ``(m, k)`` coded candidate matrix (rows are legal design points).
    n:
        Number of design points to select.
    rng:
        Source of randomness for the initial design.
    builder:
        Model-matrix expansion defining optimality; defaults to the richest
        expansion (two-factor interactions) the sample size supports.
    """
    candidates = np.asarray(candidates, dtype=float)
    m = candidates.shape[0]
    if n > m:
        raise ValueError(f"cannot select {n} points from {m} candidates")
    if builder is None:
        builder = builder_for_sample_size(candidates.shape[1], n)
    f_cand = builder.expand(candidates)
    indices = list(rng.choice(m, size=n, replace=False))
    state, n_passes, swaps = _run_exchange(
        f_cand, indices, None, ridge, max_passes, tol
    )
    return DOptimalResult(
        indices=indices,
        design=candidates[indices].copy(),
        log_det=state.log_det,
        passes=n_passes,
        swaps=swaps,
        builder=builder,
    )


def augment_design(
    existing: np.ndarray,
    candidates: np.ndarray,
    n_new: int,
    rng: np.random.Generator,
    builder: Optional[ModelMatrixBuilder] = None,
    max_passes: int = 20,
    ridge: float = 1e-6,
    tol: float = 1e-9,
) -> DOptimalResult:
    """Extend an existing design with ``n_new`` D-optimally chosen points.

    The existing rows are held fixed in the information matrix (D-optimal
    designs are extensible, Section 3); only the new rows take part in the
    exchange.  The returned result contains only the *new* rows.
    """
    candidates = np.asarray(candidates, dtype=float)
    existing = np.asarray(existing, dtype=float)
    if builder is None:
        builder = builder_for_sample_size(
            candidates.shape[1], existing.shape[0] + n_new
        )
    f_cand = builder.expand(candidates)
    f_fixed = builder.expand(existing) if existing.size else None
    indices = list(rng.choice(candidates.shape[0], size=n_new, replace=False))
    state, n_passes, swaps = _run_exchange(
        f_cand, indices, f_fixed, ridge, max_passes, tol
    )
    return DOptimalResult(
        indices=indices,
        design=candidates[indices].copy(),
        log_det=state.log_det,
        passes=n_passes,
        swaps=swaps,
        builder=builder,
    )


def log_det_information(
    design: np.ndarray, builder: ModelMatrixBuilder, ridge: float = 1e-6
) -> float:
    """log det(F'F + ridge I) of a coded design under a model expansion."""
    f = builder.expand(np.asarray(design, dtype=float))
    m_info = f.T @ f + ridge * np.eye(f.shape[1])
    sign, logdet = np.linalg.slogdet(m_info)
    if sign <= 0:
        return -np.inf
    return float(logdet)


def d_efficiency(
    design: np.ndarray, reference: np.ndarray, builder: ModelMatrixBuilder
) -> float:
    """Relative D-efficiency of ``design`` vs ``reference`` (1.0 = equal).

    Computed as ``(det(M_design)/det(M_reference))**(1/p)`` on equal-size
    designs; values above 1 mean ``design`` is more informative.
    """
    p = builder.n_terms
    ld_a = log_det_information(design, builder)
    ld_b = log_det_information(reference, builder)
    return float(np.exp((ld_a - ld_b) / p))

"""Model-matrix expansion of coded design matrices.

D-optimality is defined with respect to a model: the information matrix is
``F'F`` where ``F`` is the design expanded into model terms (intercept,
main effects, and optionally two-factor interactions -- the paper's linear
models "incorporate individual effects between parameters and two-factor
interactions", Section 5).  The same expansion is reused by the linear
regression model itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class TermSpec:
    """One column of the model matrix.

    ``indices`` is a tuple of variable indices multiplied together:
    ``()`` for the intercept, ``(i,)`` for a main effect, ``(i, j)`` for a
    two-factor interaction.
    """

    indices: Tuple[int, ...]

    def evaluate(self, coded: np.ndarray) -> np.ndarray:
        """Evaluate the term on an ``(n, k)`` coded matrix -> ``(n,)``."""
        coded = np.atleast_2d(coded)
        col = np.ones(coded.shape[0])
        for i in self.indices:
            col = col * coded[:, i]
        return col

    def name(self, variable_names: Sequence[str]) -> str:
        if not self.indices:
            return "(intercept)"
        return " * ".join(variable_names[i] for i in self.indices)

    @property
    def order(self) -> int:
        return len(self.indices)


class ModelMatrixBuilder:
    """Expands coded design matrices into model matrices.

    Parameters
    ----------
    n_variables:
        Dimension of the coded design space.
    interactions:
        If True, include all two-factor interaction columns.
    quadratic:
        If True, include squared main-effect columns (useful for response
        surfaces on many-level numeric variables).
    """

    def __init__(
        self,
        n_variables: int,
        interactions: bool = True,
        quadratic: bool = False,
    ):
        self.n_variables = n_variables
        self.interactions = interactions
        self.quadratic = quadratic
        self._terms = self._build_terms()

    def _build_terms(self) -> List[TermSpec]:
        terms = [TermSpec(())]
        for i in range(self.n_variables):
            terms.append(TermSpec((i,)))
        if self.quadratic:
            for i in range(self.n_variables):
                terms.append(TermSpec((i, i)))
        if self.interactions:
            for i in range(self.n_variables):
                for j in range(i + 1, self.n_variables):
                    terms.append(TermSpec((i, j)))
        return terms

    @property
    def terms(self) -> List[TermSpec]:
        return list(self._terms)

    @property
    def n_terms(self) -> int:
        return len(self._terms)

    def term_names(self, variable_names: Sequence[str]) -> List[str]:
        return [t.name(variable_names) for t in self._terms]

    def expand(self, coded: np.ndarray) -> np.ndarray:
        """Expand an ``(n, k)`` coded matrix into an ``(n, p)`` model matrix."""
        coded = np.atleast_2d(np.asarray(coded, dtype=float))
        if coded.shape[1] != self.n_variables:
            raise ValueError(
                f"design has {coded.shape[1]} variables, "
                f"builder expects {self.n_variables}"
            )
        return np.column_stack([t.evaluate(coded) for t in self._terms])


def builder_for_sample_size(
    n_variables: int, n_samples: int
) -> ModelMatrixBuilder:
    """Pick the richest expansion the sample size can support.

    A two-factor-interaction expansion has ``1 + k + k(k-1)/2`` columns; if
    the training budget cannot estimate that many parameters the builder
    falls back to main effects only, keeping the information matrix
    nonsingular.
    """
    full = ModelMatrixBuilder(n_variables, interactions=True)
    if n_samples >= full.n_terms + 5:
        return full
    return ModelMatrixBuilder(n_variables, interactions=False)

"""Design of experiments (paper Section 3).

The domain is far too large to sample exhaustively (the full Table 1 +
Table 2 grid has ~3.5e15 points), so design points are chosen by a
**D-optimal design**: from a candidate set Z, pick the n-point subset X
whose information matrix ``det(F'F)`` (F = model-matrix expansion of X) is
maximal.  We implement the classical Fedorov exchange algorithm with
rank-one determinant updates, candidate generation by random grid sampling
and Latin hypercube sampling, and design augmentation (D-optimal designs
are extensible -- Section 3).
"""

from repro.doe.candidates import random_candidates, latin_hypercube_candidates
from repro.doe.model_matrix import ModelMatrixBuilder, TermSpec
from repro.doe.doptimal import (
    DOptimalResult,
    d_optimal_design,
    augment_design,
    log_det_information,
    d_efficiency,
)

__all__ = [
    "random_candidates",
    "latin_hypercube_candidates",
    "ModelMatrixBuilder",
    "TermSpec",
    "DOptimalResult",
    "d_optimal_design",
    "augment_design",
    "log_det_information",
    "d_efficiency",
]

"""Candidate design-point generation.

A D-optimal design is selected from a finite candidate set (Section 3:
"first generating a set of candidate design points (either randomly or
through methods such as latin hypercube sampling)").  Both generators below
return *coded* candidate matrices whose rows are legal grid points of the
parameter space.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.space import ParameterSpace


def random_candidates(
    space: ParameterSpace, n: int, rng: np.random.Generator
) -> np.ndarray:
    """``n`` uniformly random grid points, coded, as an ``(n, dim)`` matrix.

    Duplicates are allowed (the exchange algorithm handles them) but are
    unlikely in large spaces.
    """
    rows = np.empty((n, space.dim))
    for j, var in enumerate(space.variables):
        coded_levels = np.array(var.coded_levels())
        rows[:, j] = coded_levels[rng.integers(var.levels, size=n)]
    return rows


def latin_hypercube_candidates(
    space: ParameterSpace, n: int, rng: np.random.Generator
) -> np.ndarray:
    """``n`` Latin-hypercube-sampled grid points, coded.

    Each variable's levels are visited in a stratified fashion: the n
    samples are spread evenly over the variable's level range and then
    randomly permuted, which guarantees good one-dimensional coverage.
    """
    rows = np.empty((n, space.dim))
    for j, var in enumerate(space.variables):
        coded_levels = np.array(var.coded_levels())
        # Stratify the n samples across levels: level index of sample i is
        # floor(perm[i] * levels / n), covering all levels nearly evenly.
        perm = rng.permutation(n)
        idx = (perm * var.levels) // n
        rows[:, j] = coded_levels[idx]
    return rows

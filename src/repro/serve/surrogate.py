"""Surrogate-assisted flag search: GA fitness from a served model.

``repro tune``'s default path pays a compile+simulate run (or a freshly
built model) for its fitness signal.  A registry model predicts the same
response in microseconds, so the GA can run entirely on the surrogate --
*if* we keep an eye on whether the surrogate is still telling the truth
about the points that matter.  This module implements the paper's
Section 6.3 search with exactly that discipline:

1. the GA minimizes surrogate-predicted cycles over the compiler
   subspace (microarchitecture frozen), with every fitness evaluation
   flowing through a cached :class:`Predictor`;
2. every ``validate_every`` generations (and at the end) the current
   elite individuals are snapshotted;
3. after the search, all unique snapshotted elites are measured through
   the real simulator in **one batch** (so they fan out across the
   measurement engine's worker pool), and each checkpoint's
   predicted-vs-measured ordering is compared: every elite pair the
   surrogate ranked in the wrong order is a *drift event*
   (``serve.surrogate.drift``).

The result reports how many simulator measurements the search actually
consumed next to how many fitness evaluations it would have cost -- the
orders-of-magnitude gap is the point of the subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.harness.experiments.search import frozen_microarch_objective
from repro.models.base import RegressionModel
from repro.obs import counter, histogram, span
from repro.opt.flags import CompilerConfig
from repro.search import GeneticSearch, SearchResult
from repro.serve.predictor import Predictor
from repro.sim.config import MicroarchConfig
from repro.space import COMPILER_VARIABLE_NAMES, ParameterSpace

_VALIDATIONS = counter("serve.surrogate.validations")
_DRIFT = counter("serve.surrogate.drift")
#: Elite pairs whose surrogate-vs-simulator ordering was compared; the
#: live misrank rate is drift / compared_pairs across invocations.
_COMPARED = counter("serve.surrogate.compared_pairs")
#: Absolute percentage error of the surrogate on each validated elite.
_ELITE_ERR = histogram("serve.surrogate.elite_abs_err_pct")


@dataclass
class EliteValidation:
    """One elite individual re-measured on the real simulator."""

    #: Generation the elite was snapshotted at.
    generation: int
    #: Raw compiler design point.
    point: Dict[str, float]
    #: Surrogate-predicted cycles.
    predicted: float
    #: Simulator-measured cycles.
    measured: float

    @property
    def abs_pct_error(self) -> float:
        if self.measured == 0:
            return float("nan")
        return abs(self.predicted - self.measured) / self.measured * 100.0


@dataclass
class SurrogateSearchResult:
    """A surrogate-driven GA search plus its validation audit."""

    #: The underlying GA outcome (best point by *surrogate* fitness).
    search: SearchResult
    #: Every (checkpoint, elite) re-measured on the simulator.
    validations: List[EliteValidation] = field(default_factory=list)
    #: Elite pairs the surrogate ranked in the wrong order, summed over
    #: checkpoints.
    drift_events: int = 0
    #: Elite pairs compared for drift.
    compared_pairs: int = 0
    #: Surrogate fitness evaluations performed by the GA.
    surrogate_evaluations: int = 0
    #: Unique simulator measurements spent on elite re-validation.
    simulator_measurements: int = 0

    @property
    def elite_error_pct(self) -> float:
        """Mean absolute percentage error of the surrogate on elites."""
        errors = [
            v.abs_pct_error for v in self.validations
            if np.isfinite(v.abs_pct_error)
        ]
        return float(np.mean(errors)) if errors else float("nan")

    @property
    def misrank_rate(self) -> float:
        """Fraction of compared elite pairs the surrogate misordered."""
        if not self.compared_pairs:
            return 0.0
        return self.drift_events / self.compared_pairs

    def summary(self) -> str:
        lines = [
            f"surrogate evaluations    {self.surrogate_evaluations}",
            f"simulator measurements   {self.simulator_measurements}",
            f"elite validation error   {self.elite_error_pct:.2f}% "
            f"(over {len(self.validations)} elites)",
            f"elite misrankings        {self.drift_events}/"
            f"{self.compared_pairs} pairs "
            f"({self.misrank_rate * 100:.1f}%)",
        ]
        return "\n".join(lines)


def count_misrankings(
    predicted: Sequence[float], measured: Sequence[float]
) -> Tuple[int, int]:
    """(inverted pairs, total pairs) between two orderings.

    A pair (i, j) is inverted when the surrogate strictly orders it one
    way and the simulator strictly orders it the other; ties on either
    side don't count against the surrogate.
    """
    predicted = np.asarray(predicted, dtype=float)
    measured = np.asarray(measured, dtype=float)
    n = predicted.shape[0]
    inversions = 0
    pairs = 0
    for i in range(n):
        for j in range(i + 1, n):
            pairs += 1
            dp = predicted[i] - predicted[j]
            dm = measured[i] - measured[j]
            if dp * dm < 0:
                inversions += 1
    return inversions, pairs


def surrogate_search(
    model: RegressionModel,
    space: ParameterSpace,
    microarch: MicroarchConfig,
    workload: str,
    engine,
    rng: np.random.Generator,
    input_name: str = "train",
    compiler_subspace: Optional[ParameterSpace] = None,
    population: int = 60,
    generations: int = 40,
    validate_every: int = 10,
    n_elites: int = 4,
    predictor: Optional[Predictor] = None,
) -> SurrogateSearchResult:
    """Run a GA flag search on a surrogate model with elite validation.

    Parameters
    ----------
    model:
        A fitted model over ``space`` (typically loaded from the
        registry) predicting cycles.
    space:
        The joint compiler x microarchitecture space the model was
        trained on.
    microarch:
        The frozen Table 5 machine being tuned for.
    workload / engine / input_name:
        Where re-validation measurements come from; ``engine`` needs
        ``measure_many`` (any :class:`MeasurementEngine` qualifies).
    validate_every:
        Snapshot the elite set every this-many generations.
    n_elites:
        Elites snapshotted per checkpoint (per-checkpoint drift needs
        at least 2).
    predictor:
        Pre-built :class:`Predictor` to serve fitness from (defaults to
        a fresh one around ``model``, so repeated individuals hit the
        prediction cache).
    """
    if compiler_subspace is None:
        compiler_subspace = space.subspace(COMPILER_VARIABLE_NAMES)
    predictor = predictor or Predictor(model, name="surrogate")
    raw_objective = frozen_microarch_objective(
        # The joint-vector assembly comes from the existing search
        # experiment; only the final predict call is swapped for the
        # caching predictor.
        predictor, space, compiler_subspace, microarch
    )

    #: generation -> (coded elite rows, predicted fitness)
    checkpoints: List[Tuple[int, np.ndarray, np.ndarray]] = []

    def snapshot(generation: int, coded: np.ndarray, fitness: np.ndarray) -> None:
        is_last = generation == generations - 1
        if generation % validate_every != 0 and not is_last:
            return
        order = np.argsort(fitness, kind="stable")[:n_elites]
        checkpoints.append(
            (generation, coded[order].copy(), fitness[order].copy())
        )

    ga = GeneticSearch(
        compiler_subspace, population=population, generations=generations
    )
    with span(
        "surrogate.search",
        workload=workload,
        population=population,
        generations=generations,
    ):
        result = ga.run(raw_objective, rng, on_generation=snapshot)

    # ------------------------------------------------------------------
    # Re-validate: measure every unique elite once, in one batch.
    # ------------------------------------------------------------------
    unique: "Dict[bytes, Dict[str, float]]" = {}
    for _, coded, _ in checkpoints:
        for row in coded:
            unique.setdefault(row.tobytes(), compiler_subspace.decode(row))
    requests = [
        (workload, CompilerConfig.from_point(point), microarch, input_name)
        for point in unique.values()
    ]
    with span("surrogate.validate", n_elites=len(requests)):
        measurements = engine.measure_many(requests)
    measured_by_key = {
        key: m.cycles for key, m in zip(unique.keys(), measurements)
    }

    validations: List[EliteValidation] = []
    drift_events = 0
    compared_pairs = 0
    seen: set = set()
    for generation, coded, predicted in checkpoints:
        measured = np.array(
            [measured_by_key[row.tobytes()] for row in coded]
        )
        inversions, pairs = count_misrankings(predicted, measured)
        drift_events += inversions
        compared_pairs += pairs
        for row, pred, meas in zip(coded, predicted, measured):
            key = row.tobytes()
            if key in seen:
                continue  # report each unique elite once
            seen.add(key)
            validations.append(
                EliteValidation(
                    generation=generation,
                    point=compiler_subspace.decode(row),
                    predicted=float(pred),
                    measured=float(meas),
                )
            )
    _VALIDATIONS.inc(len(validations))
    if drift_events:
        _DRIFT.inc(drift_events)
    if compared_pairs:
        _COMPARED.inc(compared_pairs)
    for v in validations:
        if np.isfinite(v.abs_pct_error):
            _ELITE_ERR.observe(v.abs_pct_error)

    return SurrogateSearchResult(
        search=result,
        validations=validations,
        drift_events=drift_events,
        compared_pairs=compared_pairs,
        surrogate_evaluations=result.evaluations,
        simulator_measurements=len(requests),
    )

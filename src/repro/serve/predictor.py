"""Prediction serving: validated, cached, instrumented model evaluation.

A :class:`Predictor` wraps a fitted model for serving duty:

* **validation** -- inputs are checked against the model's feature count
  and (when the model was saved with its design space) the space itself,
  so a malformed request fails with a clear error instead of a numpy
  shape blow-up deep inside ``_predict``;
* **batching** -- requests are (n, k) matrices; cache misses within a
  batch are evaluated in one vectorized model call;
* **LRU cache** -- per-point results keyed on the exact input bytes.
  GA-style clients re-evaluate elite individuals across generations, so
  repeated points are the common case;
* **telemetry** -- ``serve.requests`` / ``serve.predictions`` /
  ``serve.cache_hit`` / ``serve.cache_miss`` counters and a
  ``serve.predict_ms`` latency histogram through :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.models.base import RegressionModel
from repro.obs import counter, histogram, span
from repro.space import ParameterSpace

_REQUESTS = counter("serve.requests")
_PREDICTIONS = counter("serve.predictions")
_CACHE_HIT = counter("serve.cache_hit")
_CACHE_MISS = counter("serve.cache_miss")
_PREDICT_MS = histogram("serve.predict_ms")


class Predictor:
    """Serve predictions from a fitted model.

    Parameters
    ----------
    model:
        Any fitted :class:`RegressionModel`.
    space:
        Optional :class:`ParameterSpace`; enables raw-point prediction
        (:meth:`predict_point`) and stricter input validation.
    cache_size:
        Maximum cached (point -> prediction) entries; 0 disables the
        cache entirely.
    name:
        Display name used in ``info()`` (e.g. the registry name).
    input_bound:
        Reject rows with any ``|value| > input_bound`` (the coded design
        domain is [-1, 1]).  ``None`` disables the check -- pooled
        cross-program models take z-scored program features whose range
        is not the coded domain.
    """

    def __init__(
        self,
        model: RegressionModel,
        space: Optional[ParameterSpace] = None,
        cache_size: int = 65536,
        name: Optional[str] = None,
        model_id: Optional[str] = None,
        input_bound: Optional[float] = 1.0,
    ):
        if not model.is_fitted:
            raise ValueError("Predictor requires a fitted model")
        if space is not None and space.dim != model._n_features:
            raise ValueError(
                f"space has {space.dim} variables but the model expects "
                f"{model._n_features} features"
            )
        self.model = model
        self.space = space
        self.name = name
        #: Registry content digest this predictor was loaded from, if
        #: any -- the link serve-session provenance events record.
        self.model_id = model_id
        self.input_bound = input_bound
        self.cache_size = int(cache_size)
        self._cache: "OrderedDict[bytes, float]" = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def from_registry(
        cls,
        ref: str,
        registry: Optional["Any"] = None,
        cache_size: int = 65536,
    ) -> "Predictor":
        """Load a registry model (by name or id) into a Predictor."""
        from repro.serve.registry import default_registry

        loaded = (registry or default_registry()).load(ref)
        # Pooled cross-program models (manifest "workgen" block, see
        # repro.workgen.generalize.MANIFEST_KEY) take rows that extend
        # past the coded design domain with z-scored program features.
        bound = None if "workgen" in loaded.manifest else 1.0
        return cls(
            loaded.model,
            space=loaded.space,
            cache_size=cache_size,
            name=loaded.name or loaded.id,
            model_id=loaded.id,
            input_bound=bound,
        )

    @property
    def n_features(self) -> int:
        return int(self.model._n_features)

    # ------------------------------------------------------------------
    def _validate(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        if x.ndim != 2:
            raise ValueError(
                f"expected a coded point or (n, {self.n_features}) matrix, "
                f"got {x.ndim}-D input"
            )
        if x.shape[1] != self.n_features:
            raise ValueError(
                f"input has {x.shape[1]} features, model expects "
                f"{self.n_features}"
            )
        if not np.isfinite(x).all():
            raise ValueError("input contains non-finite values")
        if (
            self.input_bound is not None
            and x.size
            and (np.abs(x) > self.input_bound + 1e-9).any()
        ):
            raise ValueError(
                f"coded inputs must lie in [-{self.input_bound:g}, "
                f"{self.input_bound:g}]; encode raw points through the "
                "design space first"
            )
        return np.ascontiguousarray(x)

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict a batch of coded points; (n, k) -> (n,).

        Rows already in the LRU cache are served from it; the remaining
        rows go through the model in a single vectorized call and are
        cached on the way out.
        """
        t0 = time.perf_counter()
        with span("serve.predict", model=self.name or "?") as sp:
            x = self._validate(x)
            n = x.shape[0]
            sp.set_attr("n", n)
            _REQUESTS.inc()
            _PREDICTIONS.inc(n)
            if self.cache_size <= 0:
                y = np.asarray(self.model.predict(x), dtype=float)
                _CACHE_MISS.inc(n)
                _PREDICT_MS.observe((time.perf_counter() - t0) * 1e3)
                return y

            keys = [x[i].tobytes() for i in range(n)]
            y = np.empty(n, dtype=float)
            miss_rows = []
            with self._lock:
                for i, key in enumerate(keys):
                    hit = self._cache.get(key)
                    if hit is not None:
                        self._cache.move_to_end(key)
                        y[i] = hit
                    else:
                        miss_rows.append(i)
            _CACHE_HIT.inc(n - len(miss_rows))
            _CACHE_MISS.inc(len(miss_rows))
            sp.set_attr("misses", len(miss_rows))
            if miss_rows:
                fresh = np.asarray(
                    self.model.predict(x[miss_rows]), dtype=float
                )
                y[miss_rows] = fresh
                with self._lock:
                    for i, value in zip(miss_rows, fresh):
                        self._cache[keys[i]] = float(value)
                        self._cache.move_to_end(keys[i])
                    while len(self._cache) > self.cache_size:
                        self._cache.popitem(last=False)
            _PREDICT_MS.observe((time.perf_counter() - t0) * 1e3)
            return y

    def predict_point(self, point: Mapping[str, float]) -> float:
        """Predict at a raw design-point dict (requires a space)."""
        if self.space is None:
            raise ValueError(
                "predict_point needs a design space; this model was "
                "saved without one"
            )
        self.space.validate(point)
        return float(self.predict(self.space.encode(point))[0])

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.predict(x)

    # ------------------------------------------------------------------
    @property
    def cache_len(self) -> int:
        with self._lock:
            return len(self._cache)

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    def info(self) -> Dict[str, Any]:
        """Serving metadata (used by the wire protocol's ``info`` op)."""
        return {
            "name": self.name,
            "model_id": self.model_id,
            "family": type(self.model).__name__,
            "n_features": self.n_features,
            "variable_names": self.model.variable_names,
            "has_space": self.space is not None,
            "cache_size": self.cache_size,
            "cache_len": self.cache_len,
        }

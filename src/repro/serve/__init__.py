"""Model registry + prediction serving (the paper's models as artifacts).

A fitted empirical model is a reusable asset: it predicts any compiler x
microarchitecture point in microseconds and can drive search without
touching the simulator (paper Sections 5-6).  This package makes that
concrete:

:mod:`repro.serve.serialize`
    JSON+npz round-trip serialization for all three model families;
    loaded models predict bit-identically to the originals.
:mod:`repro.serve.registry`
    Content-addressed, versioned on-disk store (``results/registry/``).
:mod:`repro.serve.predictor`
    Validated, LRU-cached, instrumented batch prediction.
:mod:`repro.serve.server`
    Threaded JSON-lines TCP server (``repro serve`` / ``repro predict``).
:mod:`repro.serve.surrogate`
    Surrogate-assisted GA flag search with periodic simulator
    re-validation of elites and a drift counter
    (``repro tune --surrogate``).

See ``docs/SERVING.md`` for the registry layout, wire protocol, and
surrogate-validation semantics.
"""

from repro.serve.serialize import (
    ARRAYS_NAME,
    MANIFEST_NAME,
    SCHEMA_VERSION,
    SchemaVersionError,
    SerializationError,
    corpus_fingerprint,
    load_model,
    manifest_space,
    model_from_payload,
    model_to_payload,
    payload_digest,
    save_model,
    space_fingerprint,
    space_from_spec,
    space_spec,
)
from repro.serve.registry import (
    DEFAULT_REGISTRY_DIR,
    LoadedModel,
    ModelRegistry,
    RegistryError,
    default_registry,
)
from repro.serve.predictor import Predictor
from repro.serve.server import PredictionClient, PredictionServer, ProtocolError
from repro.serve.surrogate import (
    EliteValidation,
    SurrogateSearchResult,
    count_misrankings,
    surrogate_search,
)

__all__ = [
    "SCHEMA_VERSION",
    "MANIFEST_NAME",
    "ARRAYS_NAME",
    "SerializationError",
    "SchemaVersionError",
    "save_model",
    "load_model",
    "model_to_payload",
    "model_from_payload",
    "payload_digest",
    "manifest_space",
    "space_spec",
    "space_from_spec",
    "space_fingerprint",
    "corpus_fingerprint",
    "ModelRegistry",
    "LoadedModel",
    "RegistryError",
    "default_registry",
    "DEFAULT_REGISTRY_DIR",
    "Predictor",
    "PredictionServer",
    "PredictionClient",
    "ProtocolError",
    "surrogate_search",
    "SurrogateSearchResult",
    "EliteValidation",
    "count_misrankings",
]

"""Versioned, content-addressed on-disk model registry.

Layout (default root ``results/registry/``, override with
``REPRO_REGISTRY_DIR``)::

    <root>/objects/<id>/manifest.json   # one immutable object per
    <root>/objects/<id>/arrays.npz      #   content digest
    <root>/names/<name>.json            # mutable name -> version history

An *object* is a serialized model addressed by the digest of its own
payload (see :func:`repro.serve.serialize.payload_digest`); saving a
bit-identical model twice stores it once.  A *name* is a mutable pointer
with full history: every ``save(name=...)`` appends a version entry and
moves ``latest``, so ``load("my-model")`` always serves the newest fit
while older versions stay addressable by id.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.models.base import RegressionModel
from repro.obs import counter
from repro.obs.ledger import record_event
from repro.serve.serialize import load_model, manifest_space, save_model
from repro.space import ParameterSpace

_SAVES = counter("registry.saves")
_LOADS = counter("registry.loads")

#: Default registry root, relative to the working directory.
DEFAULT_REGISTRY_DIR = os.path.join("results", "registry")

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_ID_RE = re.compile(r"^[0-9a-f]{16}$")


class RegistryError(KeyError):
    """A name or id could not be resolved in the registry."""


@dataclass
class LoadedModel:
    """A model pulled out of the registry, with its provenance."""

    model: RegressionModel
    manifest: Dict[str, Any]
    #: Content digest (the object id).
    id: str
    #: Registry name the model was resolved through (None for raw ids).
    name: Optional[str] = None
    #: Design space embedded at save time, if any.
    space: Optional[ParameterSpace] = field(default=None)


class ModelRegistry:
    """Named, versioned store of serialized models.

    Parameters
    ----------
    root:
        Registry directory; created lazily on first save.  ``None``
        reads ``REPRO_REGISTRY_DIR`` (default ``results/registry``).
    """

    def __init__(self, root: Optional[Union[str, Path]] = None):
        if root is None:
            root = os.environ.get("REPRO_REGISTRY_DIR") or DEFAULT_REGISTRY_DIR
        self.root = Path(root)

    # ------------------------------------------------------------------
    def _objects_dir(self) -> Path:
        return self.root / "objects"

    def _names_dir(self) -> Path:
        return self.root / "names"

    def _name_path(self, name: str) -> Path:
        return self._names_dir() / f"{name}.json"

    @staticmethod
    def _check_name(name: str) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"bad model name {name!r}: use letters, digits, '.', '_', '-'"
            )

    # ------------------------------------------------------------------
    def save(
        self,
        model: RegressionModel,
        name: str,
        space: Optional[ParameterSpace] = None,
        corpus: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        fit_metrics: Optional[Mapping[str, float]] = None,
        extra_manifest: Optional[Mapping[str, Any]] = None,
    ) -> LoadedModel:
        """Serialize ``model`` into the object store and point ``name``
        at it.  Returns the stored entry (manifest includes the id)."""
        self._check_name(name)
        # Serialize into a scratch dir first so the digest names the
        # final object directory; identical payloads land on the
        # existing object and only the name pointer moves.
        scratch = self._objects_dir() / f".tmp-{os.getpid()}-{id(model):x}"
        manifest = save_model(
            model,
            scratch,
            space=space,
            corpus=corpus,
            fit_metrics=fit_metrics,
            extra_manifest=extra_manifest,
        )
        digest = manifest["id"]
        final = self._objects_dir() / digest
        if final.exists():
            # Content-addressed dedupe: the bytes are already stored.
            for p in scratch.iterdir():
                p.unlink()
            scratch.rmdir()
        else:
            os.replace(scratch, final)
        self._append_version(name, digest)
        _SAVES.inc()
        record_event(
            "registry_publish",
            attrs={
                "name": name,
                "family": manifest.get("family"),
                "n_features": manifest.get("n_features"),
                "space_fingerprint": manifest.get("space_fingerprint"),
                "corpus_fingerprint": manifest.get("corpus_fingerprint"),
                "fit_metrics": dict(fit_metrics or {}),
                "registry_root": str(self.root),
            },
            refs={"model_id": digest},
        )
        return LoadedModel(
            model=model,
            manifest=manifest,
            id=digest,
            name=name,
            space=space,
        )

    def _append_version(self, name: str, digest: str) -> None:
        path = self._name_path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {"latest": digest, "history": []}
        if path.exists():
            try:
                prior = json.loads(path.read_text())
                if isinstance(prior, dict):
                    record["history"] = list(prior.get("history", []))
            except (json.JSONDecodeError, OSError):
                pass
        record["history"].append({"id": digest, "saved_unix": time.time()})
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(record, indent=1) + "\n")
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    def resolve(self, ref: str) -> str:
        """Resolve a name or raw object id to an object id."""
        if _ID_RE.match(ref) and (self._objects_dir() / ref).exists():
            return ref
        path = self._name_path(ref)
        if path.exists():
            try:
                record = json.loads(path.read_text())
                digest = record.get("latest")
            except (json.JSONDecodeError, OSError):
                digest = None
            if digest and (self._objects_dir() / digest).exists():
                return digest
            raise RegistryError(
                f"registry name {ref!r} points at missing object {digest!r}"
            )
        raise RegistryError(
            f"no model named {ref!r} in registry {self.root} "
            f"(known: {', '.join(self.names()) or 'none'})"
        )

    def load(self, ref: str) -> LoadedModel:
        """Load a model by name (latest version) or object id."""
        digest = self.resolve(ref)
        model, manifest = load_model(self._objects_dir() / digest)
        _LOADS.inc()
        return LoadedModel(
            model=model,
            manifest=manifest,
            id=digest,
            name=ref if not _ID_RE.match(ref) else None,
            space=manifest_space(manifest),
        )

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """All registered names, sorted."""
        d = self._names_dir()
        if not d.is_dir():
            return []
        return sorted(p.stem for p in d.glob("*.json"))

    def versions(self, name: str) -> List[Dict[str, Any]]:
        """The version history of a name, oldest first."""
        path = self._name_path(name)
        if not path.exists():
            raise RegistryError(f"no model named {name!r} in {self.root}")
        record = json.loads(path.read_text())
        return list(record.get("history", []))

    def entries(self) -> List[Dict[str, Any]]:
        """One summary dict per name: id, family, dims, fit metrics."""
        out = []
        for name in self.names():
            try:
                digest = self.resolve(name)
                manifest = json.loads(
                    (self._objects_dir() / digest / "manifest.json").read_text()
                )
            except (RegistryError, OSError, json.JSONDecodeError):
                continue
            out.append(
                {
                    "name": name,
                    "id": digest,
                    "family": manifest.get("family"),
                    "n_features": manifest.get("n_features"),
                    "space_fingerprint": manifest.get("space_fingerprint"),
                    "corpus_fingerprint": manifest.get("corpus_fingerprint"),
                    "fit_metrics": manifest.get("fit_metrics", {}),
                    "versions": len(self.versions(name)),
                }
            )
        return out

    def describe(self) -> str:
        """Human-readable listing for ``repro registry``."""
        entries = self.entries()
        if not entries:
            return f"(registry {self.root} is empty)"
        lines = [
            f"{'name':<20} {'id':<17} {'family':<7} {'dims':>4} "
            f"{'vers':>4}  fit metrics"
        ]
        for e in entries:
            metrics = ", ".join(
                f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in sorted(e["fit_metrics"].items())
            )
            lines.append(
                f"{e['name']:<20} {e['id']:<17} {str(e['family']):<7} "
                f"{e['n_features']!s:>4} {e['versions']:>4}  {metrics}"
            )
        return "\n".join(lines)


def default_registry() -> ModelRegistry:
    """Registry rooted at ``$REPRO_REGISTRY_DIR`` or ``results/registry``."""
    return ModelRegistry()

"""Long-running prediction server (stdlib-only, JSON-lines over TCP).

The server loads models from a :class:`ModelRegistry` on demand and
serves predictions to any number of concurrent clients; one thread per
connection (``ThreadingTCPServer``), with all model state shared through
thread-safe :class:`Predictor` instances.

Wire protocol -- one JSON object per line, in both directions::

    -> {"id": 1, "op": "predict", "model": "gzip-rbf", "x": [[...], ...]}
    <- {"id": 1, "ok": true, "y": [123.4, ...], "elapsed_ms": 0.21}

Ops
---
``ping``
    Liveness check; echoes ``{"pong": true}``.
``models``
    Registry names plus currently loaded models.
``info``
    Predictor metadata for ``model``.
``predict``
    ``x`` is one coded point or a list of coded points; returns ``y``
    as a list (always, even for a single point).
``predict_point``
    ``point`` is a raw ``{variable: value}`` dict, validated against
    the model's design space and encoded server-side.
``stats``
    RED/SLO telemetry for this server instance: uptime, total request
    and error counts, and per-op count / errors / latency percentiles
    (p50/p95/p99 in milliseconds).  See :meth:`PredictionServer.stats`.
``shutdown``
    Acknowledge, then stop the server (available unless the server was
    started with ``allow_remote_shutdown=False``).

Errors never kill the connection: a malformed line or failed op yields
``{"ok": false, "error": "..."}`` and the loop continues.  See
``docs/SERVING.md`` for the full protocol reference.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.obs import counter, histogram, span
from repro.obs.ledger import record_event
from repro.obs.metrics import Histogram
from repro.serve.predictor import Predictor
from repro.serve.registry import ModelRegistry, RegistryError, default_registry

_REQUESTS = counter("serve.server.requests")
_ERRORS = counter("serve.server.errors")
_CONNECTIONS = counter("serve.server.connections")
_REQUEST_MS = histogram("serve.server.request_ms")

#: Op label used in stats for lines that never parsed far enough to
#: carry a valid ``op`` field.
_INVALID_OP = "_invalid"


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        _CONNECTIONS.inc()
        for raw in self.rfile:
            raw = raw.strip()
            if not raw:
                continue
            response, stop = self.server.app.handle_line(raw)
            self.wfile.write((json.dumps(response) + "\n").encode())
            self.wfile.flush()
            if stop:
                # Ack is already on the wire; stop the accept loop from
                # a helper thread (shutdown() joins serve_forever).
                threading.Thread(
                    target=self.server.app.shutdown, daemon=True
                ).start()
                return


class _ThreadedServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    app: "PredictionServer"


class PredictionServer:
    """Serve registry models over a JSON-lines TCP socket.

    Parameters
    ----------
    registry:
        Source of models (default :func:`default_registry`).
    preload:
        Model refs to load eagerly at startup; other registry models
        load lazily on first request.
    host / port:
        Bind address; port 0 picks an ephemeral port (see ``address``).
    cache_size:
        Per-predictor LRU prediction-cache capacity.
    allow_remote_shutdown:
        Whether the ``shutdown`` op is honoured (on by default: the
        server is a local-loopback tool, and tests/CI need clean stops).
    metrics_port:
        When not ``None``, expose a Prometheus ``/metrics`` endpoint on
        this port (0 picks an ephemeral one; see ``metrics_url``).  The
        endpoint serves the process-wide metrics registry plus live
        ``serve.session.*`` gauges from :meth:`stats`.
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        preload: Optional[List[str]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 65536,
        allow_remote_shutdown: bool = True,
        metrics_port: Optional[int] = None,
    ):
        self.registry = registry or default_registry()
        self.cache_size = cache_size
        self.allow_remote_shutdown = allow_remote_shutdown
        self._predictors: Dict[str, Predictor] = {}
        self._lock = threading.Lock()
        # Per-instance RED accounting for the `stats` op.  The op
        # latency histograms are private Histogram objects (not registry
        # entries) so two servers in one process never mix their SLOs;
        # the registry-level serve.server.* metrics above still feed
        # `repro stats` as before.
        self._started_unix = time.time()
        self._started_monotonic = time.perf_counter()
        self._op_counts: Dict[str, int] = {}
        self._op_errors: Dict[str, int] = {}
        self._op_latency: Dict[str, Histogram] = {}
        for ref in preload or []:
            self._predictor(ref)
        self._server = _ThreadedServer((host, port), _Handler)
        self._server.app = self
        self._thread: Optional[threading.Thread] = None
        self._session_ended = False
        self._metrics_server = None
        if metrics_port is not None:
            from repro.obs.promexport import MetricsHTTPServer

            self._metrics_server = MetricsHTTPServer(
                port=metrics_port, host=host, collectors=(self._session_series,)
            ).start()
        record_event(
            "serve_session",
            attrs={
                "phase": "start",
                "address": list(self.address),
                "preload": list(preload or []),
                "metrics_url": self.metrics_url,
            },
            refs=self._model_refs(),
        )

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        return self._server.server_address[:2]

    @property
    def metrics_url(self) -> Optional[str]:
        """URL of the attached ``/metrics`` endpoint, if any."""
        if self._metrics_server is None:
            return None
        return self._metrics_server.url

    def _model_refs(self) -> Dict[str, Any]:
        """Ledger refs naming every currently loaded model."""
        with self._lock:
            preds = list(self._predictors.values())
        return {
            "model_ids": sorted({p.model_id for p in preds if p.model_id}),
            "model_names": sorted({p.name for p in preds if p.name}),
        }

    def _session_series(self) -> Dict[str, Tuple[str, Any]]:
        """Live serve-session gauges for the /metrics collector."""
        s = self.stats()
        return {
            "serve.session.uptime_s": ("gauge", s["uptime_s"]),
            "serve.session.requests": ("counter", s["requests"]),
            "serve.session.errors": ("counter", s["errors"]),
            "serve.session.error_rate": ("gauge", s["error_rate"]),
            "serve.session.loaded_models": ("gauge", len(s["loaded"])),
        }

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown`."""
        self._server.serve_forever()

    def start_background(self) -> "PredictionServer":
        """Serve from a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop the accept loop and close the listening socket."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=5)
        if not self._session_ended:
            # Guard against double shutdown (context-manager exit after a
            # remote `shutdown` op): one end event per session.
            self._session_ended = True
            stats = self.stats()
            record_event(
                "serve_session",
                attrs={
                    "phase": "end",
                    "address": list(self.address),
                    "uptime_s": stats["uptime_s"],
                    "requests": stats["requests"],
                    "errors": stats["errors"],
                    "error_rate": stats["error_rate"],
                    "ops": {op: o["count"] for op, o in stats["ops"].items()},
                },
                refs=self._model_refs(),
            )
        if self._metrics_server is not None:
            self._metrics_server.close()
            self._metrics_server = None

    def __enter__(self) -> "PredictionServer":
        return self.start_background()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    def _predictor(self, ref: str) -> Predictor:
        with self._lock:
            pred = self._predictors.get(ref)
        if pred is not None:
            return pred
        # Load outside the lock (disk I/O); worst case two threads both
        # load and one wins the insert -- predictors are stateless apart
        # from their cache, so either instance serves correctly.
        pred = Predictor.from_registry(
            ref, registry=self.registry, cache_size=self.cache_size
        )
        with self._lock:
            return self._predictors.setdefault(ref, pred)

    # ------------------------------------------------------------------
    def handle_line(self, raw: bytes) -> Tuple[Dict[str, Any], bool]:
        """Process one request line -> (response dict, stop server?)."""
        t0 = time.perf_counter()
        _REQUESTS.inc()
        request_id = None
        op: Optional[str] = None
        failed = False
        try:
            request = json.loads(raw)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            request_id = request.get("id")
            if isinstance(request.get("op"), str):
                op = request["op"]
            with span("serve.request", op=op or _INVALID_OP):
                response, stop = self._dispatch(request)
        except (ValueError, KeyError, TypeError, RegistryError) as e:
            _ERRORS.inc()
            failed = True
            response, stop = {"ok": False, "error": str(e)}, False
        response.setdefault("ok", True)
        if request_id is not None:
            response["id"] = request_id
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        response["elapsed_ms"] = round(elapsed_ms, 4)
        _REQUEST_MS.observe(elapsed_ms)
        self._record_op(op or _INVALID_OP, elapsed_ms, failed)
        return response, stop

    def _record_op(self, op: str, elapsed_ms: float, failed: bool) -> None:
        """Attribute one finished request to its op's RED accounting."""
        # Global histogram: feeds `repro stats` / cross-invocation
        # persistence.  An unknown op still gets a bucket -- a flood of
        # bad requests is exactly what SLO telemetry must surface.
        histogram(f"serve.server.op_ms.{op}").observe(elapsed_ms)
        with self._lock:
            self._op_counts[op] = self._op_counts.get(op, 0) + 1
            if failed:
                self._op_errors[op] = self._op_errors.get(op, 0) + 1
            hist = self._op_latency.get(op)
            if hist is None:
                hist = self._op_latency[op] = Histogram(f"op_ms.{op}")
        hist.observe(elapsed_ms)

    def stats(self) -> Dict[str, Any]:
        """RED/SLO snapshot for this server instance.

        ``requests``/``errors`` are instance totals (not the
        process-global ``serve.server.*`` counters, which other server
        instances in the same process also feed); ``ops`` maps each op
        seen so far to its count, error count, and latency percentiles
        in milliseconds.
        """
        with self._lock:
            counts = dict(self._op_counts)
            errors = dict(self._op_errors)
            hists = dict(self._op_latency)
            loaded = sorted(self._predictors)
        ops = {}
        for op, hist in sorted(hists.items()):
            n = counts.get(op, 0)
            ops[op] = {
                "count": n,
                "errors": errors.get(op, 0),
                "mean_ms": round(hist.sum / hist.count, 4) if hist.count else 0.0,
                "p50_ms": round(hist.percentile(50), 4),
                "p95_ms": round(hist.percentile(95), 4),
                "p99_ms": round(hist.percentile(99), 4),
            }
        total = sum(counts.values())
        total_errors = sum(errors.values())
        return {
            "uptime_s": round(time.perf_counter() - self._started_monotonic, 3),
            "started_unix": self._started_unix,
            "requests": total,
            "errors": total_errors,
            "error_rate": round(total_errors / total, 6) if total else 0.0,
            "ops": ops,
            "loaded": loaded,
        }

    def _dispatch(self, request: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
        op = request.get("op")
        if op == "ping":
            return {"pong": True}, False
        if op == "models":
            with self._lock:
                loaded = sorted(self._predictors)
            return {"models": self.registry.names(), "loaded": loaded}, False
        if op == "info":
            return {"info": self._predictor(_model_ref(request)).info()}, False
        if op == "predict":
            pred = self._predictor(_model_ref(request))
            x = np.asarray(request["x"], dtype=float)
            y = pred.predict(x)
            return {"y": [float(v) for v in y]}, False
        if op == "predict_point":
            pred = self._predictor(_model_ref(request))
            point = request["point"]
            if not isinstance(point, dict):
                raise ValueError("'point' must be a {variable: value} object")
            return {"y": pred.predict_point(point)}, False
        if op == "stats":
            return {"stats": self.stats()}, False
        if op == "shutdown":
            if not self.allow_remote_shutdown:
                raise ValueError("shutdown is disabled on this server")
            return {"stopping": True}, True
        raise ValueError(f"unknown op {op!r}")


def _model_ref(request: Dict[str, Any]) -> str:
    ref = request.get("model")
    if not ref or not isinstance(ref, str):
        raise ValueError("request needs a 'model' name or id")
    return ref


class ProtocolError(RuntimeError):
    """The server's reply line was not a valid protocol response.

    Distinct from :class:`ConnectionError` (the connection died) and
    from the plain :class:`RuntimeError` raised for well-formed
    ``{"ok": false}`` error responses.
    """


class PredictionClient:
    """Blocking JSON-lines client for :class:`PredictionServer`.

    One TCP connection per client; safe to share across threads only
    with external locking -- concurrent test clients should each open
    their own.

    Failure modes of :meth:`request`: :class:`ConnectionError` when the
    server closes the connection, :class:`ProtocolError` when the reply
    line is not a JSON object, :class:`RuntimeError` for server-side op
    errors, and :class:`socket.timeout` when no reply arrives within the
    connection timeout.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # ------------------------------------------------------------------
    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one op and wait for its response; raises on protocol or
        server-side errors."""
        self._next_id += 1
        payload = {"id": self._next_id, "op": op, **fields}
        self._file.write((json.dumps(payload) + "\n").encode())
        self._file.flush()
        raw = self._file.readline()
        if not raw:
            raise ConnectionError("server closed the connection")
        try:
            response = json.loads(raw)
        except json.JSONDecodeError as e:
            raise ProtocolError(
                f"malformed server reply {raw[:80]!r}: {e}"
            ) from e
        if not isinstance(response, dict):
            raise ProtocolError(
                f"server reply is {type(response).__name__}, expected object"
            )
        if not response.get("ok"):
            raise RuntimeError(f"server error: {response.get('error')}")
        return response

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def models(self) -> Dict[str, Any]:
        return self.request("models")

    def info(self, model: str) -> Dict[str, Any]:
        return self.request("info", model=model)["info"]

    def predict(
        self, model: str, x: Union[np.ndarray, List[List[float]]]
    ) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        response = self.request("predict", model=model, x=x.tolist())
        return np.asarray(response["y"], dtype=float)

    def predict_point(self, model: str, point: Dict[str, float]) -> float:
        return float(
            self.request("predict_point", model=model, point=point)["y"]
        )

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")["stats"]

    def shutdown_server(self) -> None:
        self.request("shutdown")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "PredictionClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

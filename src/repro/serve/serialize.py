"""Model serialization: fitted models as durable, re-servable artifacts.

The paper's empirical models are cheap to evaluate but expensive to
obtain (every training point is a compile+simulate run), so a fitted
model is worth persisting.  A serialized model is a *pair* of files:

``manifest.json``
    Schema version, model family, constructor parameters, variable
    names, the design-space spec the model was trained over, training
    corpus fingerprint, fit metrics, and per-array checksums.
``arrays.npz``
    Every numeric piece of fitted state as float64/int64 numpy arrays.
    Floats never pass through decimal text, so a loaded model carries
    the exact bits of the original and predicts bit-identically.

:func:`save_model` / :func:`load_model` round-trip all three paper
families (:class:`LinearModel`, :class:`MarsModel`, :class:`RbfModel`).
The content digest over (manifest minus volatile fields + array bytes)
is the model's identity in the :class:`repro.serve.registry.ModelRegistry`.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.doe.model_matrix import ModelMatrixBuilder
from repro.models.base import RegressionModel
from repro.models.linear import LinearModel
from repro.models.mars import Hinge, MarsBasis, MarsModel
from repro.models.rbf import RbfModel, _Network
from repro.space import ParameterSpace, Variable, VariableKind

#: Bump on any incompatible change to the manifest or array layout.
SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

#: Manifest fields that may change between byte-identical models and so
#: are excluded from the content digest.
_VOLATILE_FIELDS = ("id", "created_unix", "fit_metrics")


class SerializationError(ValueError):
    """A model payload is malformed, corrupt, or unsupported."""


class SchemaVersionError(SerializationError):
    """The payload was written by an incompatible schema version."""


def _md5_hex(data: bytes) -> str:
    """FIPS-safe md5 hexdigest (identity/cache key, not security)."""
    try:
        h = hashlib.md5(data, usedforsecurity=False)
    except TypeError:
        h = hashlib.md5(data)
    return h.hexdigest()


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def space_spec(space: ParameterSpace) -> list:
    """A JSON-able spec of a parameter space (one entry per variable)."""
    # Bounds normalize to float so a spec round-trips to the same
    # fingerprint whether the original variable used ints or floats.
    return [
        {
            "name": v.name,
            "kind": v.kind.value,
            "low": float(v.low),
            "high": float(v.high),
            "levels": int(v.levels),
        }
        for v in space.variables
    ]


def space_from_spec(spec: list) -> ParameterSpace:
    """Rebuild a :class:`ParameterSpace` from :func:`space_spec` output."""
    return ParameterSpace(
        [
            Variable(
                name=v["name"],
                kind=VariableKind(v["kind"]),
                low=float(v["low"]),
                high=float(v["high"]),
                levels=int(v["levels"]),
            )
            for v in spec
        ]
    )


def space_fingerprint(space: ParameterSpace) -> str:
    """Short content hash of a space's variable spec (names, kinds,
    ranges, level counts) -- two spaces with the same fingerprint accept
    the same coded design matrices."""
    blob = json.dumps(space_spec(space), sort_keys=True).encode()
    return _md5_hex(blob)[:12]


def corpus_fingerprint(x: np.ndarray, y: np.ndarray) -> str:
    """Short content hash of a training corpus (exact array bytes)."""
    x = np.ascontiguousarray(np.asarray(x, dtype=float))
    y = np.ascontiguousarray(np.asarray(y, dtype=float))
    h = hashlib.sha256()
    h.update(str(x.shape).encode())
    h.update(x.tobytes())
    h.update(str(y.shape).encode())
    h.update(y.tobytes())
    return h.hexdigest()[:12]


# ----------------------------------------------------------------------
# Family serializers: model -> (params, arrays) and back
# ----------------------------------------------------------------------
def _require_fitted(model: RegressionModel) -> None:
    if not model.is_fitted:
        raise SerializationError("cannot serialize an unfitted model")


def _linear_to_payload(model: LinearModel) -> Tuple[dict, Dict[str, np.ndarray]]:
    params = {
        "interactions": model.interactions,
        "quadratic": model.quadratic,
        "selection": model.selection,
        "ridge": model.ridge,
    }
    arrays = {
        "active": np.asarray(model._active, dtype=np.int64),
        "beta": np.asarray(model._beta, dtype=np.float64),
        "sse": np.asarray(model._sse, dtype=np.float64),
    }
    return params, arrays


def _linear_from_payload(
    manifest: Mapping[str, Any], arrays: Mapping[str, np.ndarray]
) -> LinearModel:
    params = manifest["params"]
    model = LinearModel(
        variable_names=manifest["variable_names"],
        interactions=bool(params["interactions"]),
        quadratic=bool(params["quadratic"]),
        selection=str(params["selection"]),
        ridge=float(params["ridge"]),
    )
    n_features = int(manifest["n_features"])
    model._builder = ModelMatrixBuilder(
        n_features,
        interactions=model.interactions,
        quadratic=model.quadratic,
    )
    model._active = np.asarray(arrays["active"], dtype=np.int64)
    model._beta = np.asarray(arrays["beta"], dtype=np.float64)
    model._sse = float(arrays["sse"])
    model._n_features = n_features
    model._fitted = True
    return model


def _mars_to_payload(model: MarsModel) -> Tuple[dict, Dict[str, np.ndarray]]:
    params = {
        "max_terms": model.max_terms,
        "max_degree": model.max_degree,
        "max_knots": model.max_knots,
        "penalty": model.penalty,
    }
    # Flatten the basis (a list of hinge products) into parallel arrays
    # plus CSR-style offsets; knots stay binary float64 the whole way.
    offsets = [0]
    hinge_var, hinge_knot, hinge_sign = [], [], []
    for bf in model.basis:
        for h in bf.hinges:
            hinge_var.append(h.var)
            hinge_knot.append(h.knot)
            hinge_sign.append(h.sign)
        offsets.append(len(hinge_var))
    arrays = {
        "coef": np.asarray(model.coef, dtype=np.float64),
        "basis_offsets": np.asarray(offsets, dtype=np.int64),
        "hinge_var": np.asarray(hinge_var, dtype=np.int64),
        "hinge_knot": np.asarray(hinge_knot, dtype=np.float64),
        "hinge_sign": np.asarray(hinge_sign, dtype=np.int64),
        "gcv_score": np.asarray(
            np.nan if model.gcv_score is None else model.gcv_score,
            dtype=np.float64,
        ),
    }
    return params, arrays


def _mars_from_payload(
    manifest: Mapping[str, Any], arrays: Mapping[str, np.ndarray]
) -> MarsModel:
    params = manifest["params"]
    model = MarsModel(
        variable_names=manifest["variable_names"],
        max_terms=int(params["max_terms"]),
        max_degree=int(params["max_degree"]),
        max_knots=int(params["max_knots"]),
        penalty=float(params["penalty"]),
    )
    offsets = np.asarray(arrays["basis_offsets"], dtype=np.int64)
    var = np.asarray(arrays["hinge_var"], dtype=np.int64)
    knot = np.asarray(arrays["hinge_knot"], dtype=np.float64)
    sign = np.asarray(arrays["hinge_sign"], dtype=np.int64)
    basis = []
    for b in range(offsets.shape[0] - 1):
        hinges = tuple(
            Hinge(int(var[i]), float(knot[i]), int(sign[i]))
            for i in range(int(offsets[b]), int(offsets[b + 1]))
        )
        basis.append(MarsBasis(hinges))
    model.basis = basis
    model.coef = np.asarray(arrays["coef"], dtype=np.float64)
    gcv_score = float(arrays["gcv_score"])
    model.gcv_score = None if np.isnan(gcv_score) else gcv_score
    model._n_features = int(manifest["n_features"])
    model._fitted = True
    return model


def _rbf_to_payload(model: RbfModel) -> Tuple[dict, Dict[str, np.ndarray]]:
    params = {
        "kernel": model.kernel,
        "center_mode": model.center_mode,
        "radius_scales": list(model.radius_scales),
        "min_samples_leaf": model.min_samples_leaf,
        "ridge": model.ridge,
        "linear_tail": model.linear_tail,
        "selected_size": model.selected_size,
        "selected_scale": model.selected_scale,
    }
    arrays = {
        "centers": np.asarray(model._net.centers, dtype=np.float64),
        "radii": np.asarray(model._net.radii, dtype=np.float64),
        "weights": np.asarray(model._net.weights, dtype=np.float64),
        "bic_score": np.asarray(
            np.nan if model.bic_score is None else model.bic_score,
            dtype=np.float64,
        ),
    }
    return params, arrays


def _rbf_from_payload(
    manifest: Mapping[str, Any], arrays: Mapping[str, np.ndarray]
) -> RbfModel:
    params = manifest["params"]
    model = RbfModel(
        variable_names=manifest["variable_names"],
        kernel=str(params["kernel"]),
        center_mode=str(params["center_mode"]),
        radius_scales=[float(s) for s in params["radius_scales"]],
        min_samples_leaf=int(params["min_samples_leaf"]),
        ridge=float(params["ridge"]),
        linear_tail=bool(params["linear_tail"]),
    )
    model._net = _Network(
        centers=np.asarray(arrays["centers"], dtype=np.float64),
        radii=np.asarray(arrays["radii"], dtype=np.float64),
        weights=np.asarray(arrays["weights"], dtype=np.float64),
    )
    model.selected_size = params["selected_size"]
    model.selected_scale = params["selected_scale"]
    bic_score = float(arrays["bic_score"])
    model.bic_score = None if np.isnan(bic_score) else bic_score
    model._n_features = int(manifest["n_features"])
    model._fitted = True
    return model


_FAMILIES = {
    "linear": (LinearModel, _linear_to_payload, _linear_from_payload),
    "mars": (MarsModel, _mars_to_payload, _mars_from_payload),
    "rbf": (RbfModel, _rbf_to_payload, _rbf_from_payload),
}


def family_of(model: RegressionModel) -> str:
    """The registry family name for a model instance."""
    for name, (cls, _, _) in _FAMILIES.items():
        if type(model) is cls:
            return name
    raise SerializationError(
        f"unsupported model type {type(model).__name__}; "
        f"serializable families: {sorted(_FAMILIES)}"
    )


# ----------------------------------------------------------------------
# Payload assembly
# ----------------------------------------------------------------------
def model_to_payload(
    model: RegressionModel,
    space: Optional[ParameterSpace] = None,
    corpus: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    fit_metrics: Optional[Mapping[str, float]] = None,
) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Serialize a fitted model into ``(manifest, arrays)``.

    ``space`` embeds the design-space spec (and its fingerprint) so a
    served model can validate inputs; ``corpus`` records the training
    data's fingerprint; ``fit_metrics`` is free-form (test error, sample
    counts, ...) and excluded from the content digest.
    """
    _require_fitted(model)
    family = family_of(model)
    params, arrays = _FAMILIES[family][1](model)
    manifest: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "family": family,
        "n_features": int(model._n_features),
        "variable_names": list(model.variable_names)
        if model.variable_names
        else None,
        "params": params,
        "space": None,
        "space_fingerprint": None,
        "corpus_fingerprint": None,
        "fit_metrics": dict(fit_metrics) if fit_metrics else {},
        "arrays": {
            name: {
                "dtype": str(a.dtype),
                "shape": list(a.shape),
                "md5": _md5_hex(np.ascontiguousarray(a).tobytes()),
            }
            for name, a in sorted(arrays.items())
        },
    }
    if space is not None:
        if space.dim != model._n_features:
            raise SerializationError(
                f"space has {space.dim} variables but the model was "
                f"fitted on {model._n_features} features"
            )
        manifest["space"] = space_spec(space)
        manifest["space_fingerprint"] = space_fingerprint(space)
    if corpus is not None:
        manifest["corpus_fingerprint"] = corpus_fingerprint(*corpus)
    return manifest, arrays


def payload_digest(
    manifest: Mapping[str, Any], arrays: Mapping[str, np.ndarray]
) -> str:
    """Content address of a payload: hash of the digest-stable manifest
    fields plus the exact bytes of every array."""
    stable = {
        k: v for k, v in sorted(manifest.items()) if k not in _VOLATILE_FIELDS
    }
    h = hashlib.sha256(json.dumps(stable, sort_keys=True).encode())
    for name in sorted(arrays):
        a = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()[:16]


def model_from_payload(
    manifest: Mapping[str, Any], arrays: Mapping[str, np.ndarray]
) -> RegressionModel:
    """Reconstruct a model from ``(manifest, arrays)``; the inverse of
    :func:`model_to_payload`, verifying schema version and array
    checksums first."""
    version = manifest.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaVersionError(
            f"payload has schema version {version!r}; this build reads "
            f"version {SCHEMA_VERSION}"
        )
    family = manifest.get("family")
    if family not in _FAMILIES:
        raise SerializationError(f"unknown model family {family!r}")
    declared = manifest.get("arrays", {})
    if set(declared) != set(arrays):
        raise SerializationError(
            f"array set mismatch: manifest declares {sorted(declared)}, "
            f"payload has {sorted(arrays)}"
        )
    for name, meta in declared.items():
        actual = _md5_hex(np.ascontiguousarray(arrays[name]).tobytes())
        if actual != meta["md5"]:
            raise SerializationError(
                f"array {name!r} is corrupt: checksum {actual} != "
                f"manifest {meta['md5']}"
            )
    return _FAMILIES[family][2](manifest, arrays)


# ----------------------------------------------------------------------
# File round-trip
# ----------------------------------------------------------------------
def save_model(
    model: RegressionModel,
    directory: Union[str, Path],
    space: Optional[ParameterSpace] = None,
    corpus: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    fit_metrics: Optional[Mapping[str, float]] = None,
    extra_manifest: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Write ``manifest.json`` + ``arrays.npz`` under ``directory``.

    Returns the manifest (with the content ``id`` filled in).  Use a
    :class:`repro.serve.registry.ModelRegistry` for named, versioned
    storage; this function is the raw one-directory form.
    """
    import time

    manifest, arrays = model_to_payload(
        model, space=space, corpus=corpus, fit_metrics=fit_metrics
    )
    if extra_manifest:
        overlap = set(extra_manifest) & set(manifest)
        if overlap:
            raise SerializationError(
                f"extra_manifest would shadow reserved fields: {sorted(overlap)}"
            )
        manifest.update(extra_manifest)
    manifest["id"] = payload_digest(manifest, arrays)
    manifest["created_unix"] = time.time()
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / ARRAYS_NAME, "wb") as f:
        np.savez(f, **arrays)
    (directory / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=1, sort_keys=True) + "\n"
    )
    return manifest


def load_model(
    directory: Union[str, Path],
) -> Tuple[RegressionModel, Dict[str, Any]]:
    """Read a model saved by :func:`save_model`; returns (model, manifest).

    The loaded model predicts bit-identically to the one that was saved:
    all numeric state travels as binary float64/int64 npz arrays and is
    checksum-verified on the way in.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    arrays_path = directory / ARRAYS_NAME
    if not manifest_path.exists() or not arrays_path.exists():
        raise SerializationError(f"no serialized model under {directory}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as e:
        raise SerializationError(f"corrupt manifest {manifest_path}: {e}")
    if not isinstance(manifest, dict):
        raise SerializationError(f"corrupt manifest {manifest_path}")
    with np.load(arrays_path) as npz:
        arrays = {name: npz[name] for name in npz.files}
    model = model_from_payload(manifest, arrays)
    return model, manifest


def manifest_space(manifest: Mapping[str, Any]) -> Optional[ParameterSpace]:
    """The design space embedded in a manifest, if any."""
    spec = manifest.get("space")
    if not spec:
        return None
    return space_from_spec(spec)

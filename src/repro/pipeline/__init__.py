"""The iterative empirical model-building process (paper Figure 1).

:func:`build_model` runs the full loop: generate candidates, select a
D-optimal design, measure the response at each design point via a
caller-supplied *oracle* (compile + simulate), fit a model, estimate its
error on an independent test set, and augment the design until the error
target is met or the simulation budget is exhausted.

:func:`learning_curve` reproduces the Figure 5 experiment: model accuracy
as a function of training-set size on nested (augmented) designs.
"""

from repro.pipeline.build import (
    ModelBuildResult,
    Oracle,
    build_model,
    evaluate_model,
    learning_curve,
    measure_points,
    LearningCurvePoint,
)

__all__ = [
    "ModelBuildResult",
    "Oracle",
    "build_model",
    "evaluate_model",
    "learning_curve",
    "measure_points",
    "LearningCurvePoint",
]

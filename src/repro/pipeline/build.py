"""Iterative model building (Figure 1) and evaluation helpers."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.doe import (
    augment_design,
    d_optimal_design,
    random_candidates,
)
from repro.models.base import RegressionModel
from repro.models.metrics import mean_absolute_percentage_error
from repro.obs import counter, span
from repro.obs.ledger import record_event
from repro.space import ParameterSpace

_ITERATIONS = counter("pipeline.iterations")
_ORACLE_MEASUREMENTS = counter("pipeline.oracle_measurements")
_ZERO_RESPONSES = counter("pipeline.zero_test_responses")

#: An oracle measures the system response (execution time in cycles) at a
#: raw design point; in the full system this is "compile the program with
#: these flags and simulate it on this microarchitecture".  Batch-aware
#: oracles (e.g. :class:`repro.harness.measure.EngineOracle`) additionally
#: expose ``measure_many(points) -> sequence of floats``, which
#: :func:`measure_points` prefers so whole design matrices reach the
#: measurement backend at once (and can fan out to worker processes).
Oracle = Callable[[Dict[str, float]], float]


def measure_points(
    oracle: Oracle, space: ParameterSpace, coded: np.ndarray
) -> np.ndarray:
    """Measure the oracle at every row of a coded design matrix.

    If the oracle implements the batch protocol (a ``measure_many``
    method), the decoded design is submitted whole; otherwise each point
    is measured through the plain callable.  Either way the responses
    come back in row order.
    """
    coded = np.atleast_2d(coded)
    points = [space.decode(row) for row in coded]
    measure_many = getattr(oracle, "measure_many", None)
    with span(
        "pipeline.measure_points",
        n_points=coded.shape[0],
        batched=measure_many is not None,
    ):
        if measure_many is not None:
            responses = np.asarray(measure_many(points), dtype=float)
            if responses.shape != (coded.shape[0],):
                raise ValueError(
                    f"batch oracle returned {responses.shape} responses "
                    f"for {coded.shape[0]} points"
                )
        else:
            responses = np.array([float(oracle(p)) for p in points])
    _ORACLE_MEASUREMENTS.inc(coded.shape[0])
    return responses


def evaluate_model(
    model: RegressionModel,
    x_test: np.ndarray,
    y_test: np.ndarray,
) -> Tuple[float, float]:
    """(mean, std) of absolute percentage prediction error on a test set.

    Test points whose measured response is exactly zero are excluded
    (percentage error is undefined there -- dividing would inject
    inf/nan into the error history); each exclusion increments the
    ``pipeline.zero_test_responses`` counter and the first occurrence
    warns.  Returns ``(nan, nan)`` if every response is zero.
    """
    y_test = np.asarray(y_test, dtype=float)
    pred = np.asarray(model.predict(x_test), dtype=float)
    nonzero = y_test != 0.0
    if not nonzero.all():
        n_zero = int((~nonzero).sum())
        _ZERO_RESPONSES.inc(n_zero)
        warnings.warn(
            f"evaluate_model: ignoring {n_zero} test point(s) with zero "
            "response (undefined percentage error)",
            RuntimeWarning,
            stacklevel=2,
        )
        if not nonzero.any():
            return float("nan"), float("nan")
        pred, y_test = pred[nonzero], y_test[nonzero]
    errors = np.abs((pred - y_test) / y_test) * 100.0
    return float(errors.mean()), float(errors.std())


@dataclass
class ModelBuildResult:
    """Everything produced by one run of the Figure-1 loop."""

    model: RegressionModel
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    #: (n_samples, mean % error, std % error) after each iteration.
    error_history: List[Tuple[int, float, float]] = field(default_factory=list)

    @property
    def test_error(self) -> float:
        return self.error_history[-1][1]

    @property
    def n_samples(self) -> int:
        return self.x_train.shape[0]


def build_model(
    oracle: Oracle,
    space: ParameterSpace,
    model_factory: Callable[[], RegressionModel],
    rng: np.random.Generator,
    initial_size: int = 100,
    batch_size: int = 50,
    max_samples: int = 400,
    target_error: float = 5.0,
    n_candidates: int = 1000,
    test_size: int = 100,
    test_set: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> ModelBuildResult:
    """Run the iterative model-building process of Figure 1.

    The loop measures an initial D-optimal design, fits a model, and
    checks its average percentage error on an independent test set.  While
    the error exceeds ``target_error`` and the budget allows, the design
    is D-optimally augmented with ``batch_size`` new points and the model
    is refitted ("repeat steps 3 and 4 until a model with desired accuracy
    is obtained").

    Parameters
    ----------
    test_set:
        Optional pre-measured ``(x_test_coded, y_test)`` pair.  When
        omitted an independent random design of ``test_size`` points is
        generated and measured through the oracle.
    """
    with span(
        "pipeline.build_model",
        initial_size=initial_size,
        batch_size=batch_size,
        max_samples=max_samples,
    ) as top:
        candidates = random_candidates(space, n_candidates, rng)

        if test_set is None:
            with span("pipeline.test_set", n_points=test_size):
                x_test = random_candidates(space, test_size, rng)
                y_test = measure_points(oracle, space, x_test)
        else:
            x_test, y_test = test_set

        history: List[Tuple[int, float, float]] = []
        with span("pipeline.iteration", index=0) as it:
            with span("pipeline.initial_design", n_points=initial_size):
                design = d_optimal_design(candidates, initial_size, rng)
            x_train = design.design
            y_train = measure_points(oracle, space, x_train)
            with span("pipeline.fit", n_samples=x_train.shape[0]):
                model = model_factory()
                model.fit(x_train, y_train)
            mean_err, std_err = evaluate_model(model, x_test, y_test)
            it.set_attrs(n_samples=x_train.shape[0], mean_err=mean_err)
        _ITERATIONS.inc()
        history.append((x_train.shape[0], mean_err, std_err))

        iteration = 0
        while mean_err > target_error and x_train.shape[0] + batch_size <= max_samples:
            iteration += 1
            with span("pipeline.iteration", index=iteration) as it:
                with span("pipeline.augment_design", n_points=batch_size):
                    extra = augment_design(x_train, candidates, batch_size, rng)
                x_new = extra.design
                y_new = measure_points(oracle, space, x_new)
                x_train = np.vstack([x_train, x_new])
                y_train = np.concatenate([y_train, y_new])
                with span("pipeline.fit", n_samples=x_train.shape[0]):
                    model = model_factory()
                    model.fit(x_train, y_train)
                mean_err, std_err = evaluate_model(model, x_test, y_test)
                it.set_attrs(n_samples=x_train.shape[0], mean_err=mean_err)
            _ITERATIONS.inc()
            history.append((x_train.shape[0], mean_err, std_err))

        top.set_attrs(n_samples=x_train.shape[0], final_error=mean_err)

    # Provenance: one model_fit event ties this fit to the measurement
    # batches the oracle just recorded under the same run id (the
    # workload/input attributes come from batch-aware engine oracles).
    record_event(
        "model_fit",
        attrs={
            "family": type(model).__name__,
            "workload": getattr(oracle, "workload", None),
            "input": getattr(oracle, "input_name", None),
            "response": getattr(oracle, "response", "cycles"),
            "n_samples": int(x_train.shape[0]),
            "n_test": int(np.asarray(y_test).shape[0]),
            "test_error_pct": float(mean_err),
            "iterations": len(history),
            "initial_size": initial_size,
            "batch_size": batch_size,
            "max_samples": max_samples,
            "target_error": target_error,
            "space_dim": space.dim,
        },
    )

    return ModelBuildResult(
        model=model,
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        error_history=history,
    )


@dataclass
class LearningCurvePoint:
    """One point of a Figure-5 learning curve."""

    n_samples: int
    mean_error: float
    std_error: float


def learning_curve(
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    model_factory: Callable[[], RegressionModel],
    sizes: Sequence[int],
) -> List[LearningCurvePoint]:
    """Accuracy vs training-set size on nested prefixes of a design.

    Measured points are reused across sizes (prefixes of an augmented
    D-optimal design are themselves D-optimal-ish), which mirrors how the
    paper grows its designs and keeps the simulation budget linear.
    """
    points = []
    for size in sizes:
        if size < 2 or size > x_train.shape[0]:
            continue
        model = model_factory()
        model.fit(x_train[:size], y_train[:size])
        mean_err, std_err = evaluate_model(model, x_test, y_test)
        points.append(LearningCurvePoint(size, mean_err, std_err))
    return points

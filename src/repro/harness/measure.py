"""The measurement oracle: design point -> execution time in cycles.

Measuring a design point means: build the workload's binary for the
point's compiler settings (and issue width -- the machine description
depends on it, as in the paper's per-FU-configuration gcc builds), run
it functionally once to get the dynamic trace and checksum, and estimate
execution time with SMARTS sampling (or exhaustive detailed simulation).

Caching layers (see ``docs/SIMULATOR.md`` for keys and invalidation):

* binaries + traces are memoized in-process on (workload, input,
  compiler key, issue width) and *on disk* in the content-addressed
  artifact store (:mod:`repro.harness.artifacts`), shared across
  engines and pool workers, since the trace does not depend on the rest
  of the microarchitecture;
* SMARTS timing work is memoized on (binary digest, trace digest, full
  timing key) at run and sampling-unit granularity
  (:mod:`repro.sim.memo`);
* (cycles, checksum) results are memoized on the full point, optionally
  persisted to ``.repro_cache/measurements.json`` so the benchmark suite
  reuses measurements across processes.

Design points are independent of one another, so batches of them are
embarrassingly parallel: :meth:`MeasurementEngine.measure_many` /
:meth:`MeasurementEngine.measure_batch` fan cache misses out to a
process pool (``jobs`` workers, default from ``REPRO_JOBS``).  Misses
are grouped by shared binary, partitioned into one cost-balanced chunk
per worker (a measured per-point cost model sizes the chunks), and
workers share compiles/traces/timing units through the on-disk stores.
Since a point's measurement is a pure function of its cache key, the
results are bit-identical to the serial path regardless of worker
count.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import multiprocessing
import os
import tempfile
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.codegen import COMPILER_VERSION, compile_module
from repro.harness.artifacts import ArtifactStore
from repro.harness.configs import split_point
from repro.obs import counter, histogram, span
from repro.obs.context import (
    TelemetryContext,
    WorkerTelemetry,
    begin_task,
    capture_context,
    collect_task,
    install_context,
    merge_worker_telemetry,
)
from repro.obs.ledger import cap_result_keys, record_event
from repro.opt.flags import CompilerConfig
from repro.sim import simulate
from repro.sim.config import MicroarchConfig
from repro.sim.func import execute
from repro.sim.memo import TimingMemo
from repro.workloads import get_workload

_TRACE_HITS = counter("measure.trace_cache.hits")
_TRACE_MISSES = counter("measure.trace_cache.misses")
_TRACE_EVICTIONS = counter("measure.trace_cache.evictions")
_RESULT_HITS = counter("measure.result_cache.hits")
_RESULT_MISSES = counter("measure.result_cache.misses")
_COMPILATIONS = counter("measure.compilations")
_SIMULATIONS = counter("measure.simulations")
# Pool bookkeeping.  These two are the only counters recorded on the
# *parent* side of a pool run; every other ``measure.*`` metric above is
# incremented where the work happens (possibly a worker process) and
# shipped back via repro.obs.context, which is what keeps serial and
# parallel runs of the same point set bit-identical in `repro stats`.
_BATCH_SUBMITTED = counter("measure.batch.submitted")
_WORKER_MS = histogram("measure.batch.worker_ms")


def _md5_hex(data: bytes) -> str:
    """md5 hexdigest usable on FIPS-enabled Pythons.

    The fingerprint is a cache key, not a security boundary, so it must
    be declared as such (``usedforsecurity=False``) where the kwarg
    exists; older signatures (<3.9 style) take no kwarg at all.
    """
    try:
        h = hashlib.md5(data, usedforsecurity=False)
    except TypeError:
        h = hashlib.md5(data)
    return h.hexdigest()


def default_jobs() -> int:
    """Worker-process count from ``REPRO_JOBS`` (default 1 = serial).

    ``0`` or a negative value means "all cores"; unparseable values fall
    back to serial so a stray environment variable can never break a
    measurement run.
    """
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


@dataclass
class Measurement:
    """One measured design point."""

    cycles: float
    checksum: int
    instructions: int
    sampling_error: float
    #: Static code size of the binary, in instructions (a secondary
    #: response the paper mentions models can be built for).
    code_size: int = 0


class MeasurementEngine:
    """Compiles, simulates and caches measurements.

    Parameters
    ----------
    mode:
        ``"smarts"`` (default, the paper's methodology) or ``"detailed"``.
    smarts_interval:
        Sampling interval for SMARTS (1 unit in every N measured).
    cache_dir:
        Directory for the persistent measurement cache; None disables
        persistence (in-memory caching still applies).
    max_cached_traces:
        Traces are large; only this many binaries+traces stay resident.
    jobs:
        Worker processes for :meth:`measure_many` / :meth:`measure_batch`
        (None reads ``REPRO_JOBS``; 1 keeps everything in-process).
    artifact_dir:
        Directory for the on-disk binary+trace artifact store shared
        across engines and pool workers.  Defaults to
        ``<cache_dir>/artifacts`` when ``cache_dir`` is set; None with
        no ``cache_dir`` disables it.
    memo_path:
        File for the persistent SMARTS timing memo
        (:class:`repro.sim.memo.TimingMemo`).  Defaults to
        ``<cache_dir>/sim_memo.json`` when ``cache_dir`` is set.
    """

    def __init__(
        self,
        mode: str = "smarts",
        smarts_interval: int = 3,
        cache_dir: Optional[str] = None,
        max_cached_traces: int = 6,
        jobs: Optional[int] = None,
        artifact_dir: Optional[str] = None,
        memo_path: Optional[str] = None,
    ):
        self.mode = mode
        self.smarts_interval = smarts_interval
        self.max_cached_traces = max_cached_traces
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        #: LRU of (exe, functional) keyed on (workload, input, compiler
        #: key, issue width); hits move the entry to the MRU end.
        self._trace_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._result_cache: Dict[str, Measurement] = {}
        self._dirty = False
        self.simulations = 0
        self.compilations = 0
        #: EWMA of measured per-point seconds keyed on (workload, input);
        #: feeds the chunk planner's cost model.
        self._point_cost: Dict[Tuple[str, str], float] = {}
        self._cache_path: Optional[Path] = None
        if cache_dir is not None:
            self._cache_path = Path(cache_dir) / "measurements.json"
            self._load_disk_cache()
            if artifact_dir is None:
                artifact_dir = str(Path(cache_dir) / "artifacts")
            if memo_path is None:
                memo_path = str(Path(cache_dir) / "sim_memo.json")
        self._artifact_dir = artifact_dir
        self._memo_path = memo_path
        self.artifacts: Optional[ArtifactStore] = (
            ArtifactStore(artifact_dir) if artifact_dir is not None else None
        )
        self.memo: Optional[TimingMemo] = (
            TimingMemo(memo_path) if memo_path is not None else None
        )

    # ------------------------------------------------------------------
    # Persistent cache
    # ------------------------------------------------------------------
    def _read_disk_raw(self) -> Dict[str, dict]:
        """Raw key->payload dict currently on disk ({} on any failure)."""
        if self._cache_path is None or not self._cache_path.exists():
            return {}
        try:
            raw = json.loads(self._cache_path.read_text())
        except (json.JSONDecodeError, OSError):
            return {}
        return raw if isinstance(raw, dict) else {}

    def _load_disk_cache(self) -> None:
        for key, value in self._read_disk_raw().items():
            value.setdefault("code_size", 0)
            self._result_cache[key] = Measurement(**value)

    @contextlib.contextmanager
    def _save_lock(self) -> Iterator[None]:
        """Serialize read-merge-replace against other savers (POSIX only;
        elsewhere the merge still makes concurrent saves lose at most a
        simultaneous writer's delta, never the whole file)."""
        try:
            import fcntl
        except ImportError:
            yield
            return
        lock_path = self._cache_path.with_suffix(".lock")
        with open(lock_path, "w") as lk:
            fcntl.flock(lk, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lk, fcntl.LOCK_UN)

    def save(self) -> None:
        """Flush the measurement cache to disk (no-op without cache_dir).

        Safe for concurrent writers: the current ``measurements.json`` is
        re-read and merged (disk ∪ memory, memory wins) under a lock
        file, so two engines saving interleaved measurements to the same
        cache directory both survive instead of last-writer-wins.  The
        write itself is atomic: the payload goes to a temporary file in
        the same directory and is ``os.replace``-d over
        ``measurements.json``, so a crash mid-flush leaves either the old
        cache or the new one, never a truncated file for
        ``_load_disk_cache`` to discard.  Entries found on disk but not
        in memory are absorbed into the in-memory cache as well.

        The timing memo (when configured) is flushed with the same
        discipline by :meth:`repro.sim.memo.TimingMemo.save`.
        """
        if self.memo is not None:
            self.memo.save()
        if self._cache_path is None or not self._dirty:
            return
        self._cache_path.parent.mkdir(parents=True, exist_ok=True)
        with self._save_lock():
            payload = self._read_disk_raw()
            for key, value in payload.items():
                if key not in self._result_cache:
                    value.setdefault("code_size", 0)
                    self._result_cache[key] = Measurement(**value)
            for key, m in self._result_cache.items():
                payload[key] = {
                    "cycles": m.cycles,
                    "checksum": m.checksum,
                    "instructions": m.instructions,
                    "sampling_error": m.sampling_error,
                    "code_size": m.code_size,
                }
            fd, tmp = tempfile.mkstemp(
                dir=str(self._cache_path.parent),
                prefix=self._cache_path.name,
                suffix=".tmp",
            )
            try:
                with os.fdopen(fd, "w") as f:
                    json.dump(payload, f)
                os.replace(tmp, self._cache_path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        self._dirty = False

    # ------------------------------------------------------------------
    _fingerprints: Dict[Tuple[str, str], str] = {}

    @classmethod
    def _workload_fingerprint(cls, workload: str, input_name: str) -> str:
        """Short hash of the workload's source so stale cache entries
        from an edited workload can never be served."""
        key = (workload, input_name)
        if key not in cls._fingerprints:
            source = get_workload(workload).source(input_name)
            cls._fingerprints[key] = _md5_hex(source.encode())[:10]
        return cls._fingerprints[key]

    @classmethod
    def _result_key(
        cls,
        workload: str,
        input_name: str,
        compiler: CompilerConfig,
        microarch: MicroarchConfig,
        mode: str,
        interval: int,
    ) -> str:
        parts = (
            [
                workload,
                input_name,
                cls._workload_fingerprint(workload, input_name),
                f"cc{COMPILER_VERSION}",
                mode,
                str(interval),
            ]
            + [str(v) for v in compiler.cache_key()]
            + [str(v) for v in microarch.cache_key()]
        )
        return "|".join(parts)

    def _binary_and_trace(
        self, workload: str, input_name: str, compiler: CompilerConfig, issue_width: int
    ):
        key = (workload, input_name, compiler.cache_key(), issue_width)
        hit = self._trace_cache.get(key)
        if hit is not None:
            # True LRU: refresh recency on hit so a hot trace is never
            # evicted just because it was inserted first.
            self._trace_cache.move_to_end(key)
            _TRACE_HITS.inc()
            return hit
        _TRACE_MISSES.inc()
        art_key = None
        exe = None
        if self.artifacts is not None:
            art_key = _md5_hex(
                "|".join(
                    [
                        workload,
                        input_name,
                        self._workload_fingerprint(workload, input_name),
                        f"cc{COMPILER_VERSION}",
                        str(issue_width),
                    ]
                    + [str(v) for v in compiler.cache_key()]
                ).encode()
            )
            exe = self.artifacts.load_binary(art_key)
        if exe is None:
            module = get_workload(workload).module(input_name)
            with span(
                "measure.compile",
                workload=workload,
                input=input_name,
                issue_width=issue_width,
            ):
                exe = compile_module(module, compiler, issue_width=issue_width)
            self.compilations += 1
            _COMPILATIONS.inc()
            if self.artifacts is not None:
                self.artifacts.store_binary(art_key, exe)
        functional = None
        if self.artifacts is not None:
            # Keyed on the binary's content digest: flag settings that
            # emit identical machine code share one stored trace.
            functional = self.artifacts.load_trace(exe)
        if functional is None:
            with span(
                "measure.functional", workload=workload, input=input_name
            ) as sp:
                functional = execute(exe, collect_trace=True)
                sp.set_attrs(instructions=functional.instruction_count)
            if self.artifacts is not None:
                self.artifacts.store_trace(exe, functional)
        if len(self._trace_cache) >= self.max_cached_traces:
            self._trace_cache.popitem(last=False)  # evict the LRU entry
            _TRACE_EVICTIONS.inc()
        entry = (exe, functional)
        self._trace_cache[key] = entry
        return entry

    def compile_and_trace(
        self, workload: str, input_name: str, compiler: CompilerConfig, issue_width: int
    ):
        """Public cached access to a workload's (binary, functional run)."""
        return self._binary_and_trace(workload, input_name, compiler, issue_width)

    # ------------------------------------------------------------------
    def measure(
        self,
        workload: str,
        point: Mapping[str, float],
        input_name: str = "train",
    ) -> Measurement:
        """Measure one full (compiler x microarch) design point."""
        compiler, microarch = split_point(point)
        return self.measure_configs(workload, compiler, microarch, input_name)

    def measure_configs(
        self,
        workload: str,
        compiler: CompilerConfig,
        microarch: MicroarchConfig,
        input_name: str = "train",
    ) -> Measurement:
        key = self._result_key(
            workload, input_name, compiler, microarch, self.mode, self.smarts_interval
        )
        cached = self._result_cache.get(key)
        if cached is not None:
            _RESULT_HITS.inc()
            return cached
        _RESULT_MISSES.inc()
        if self.mode == "static":
            return self._estimate_static(
                key, workload, compiler, microarch, input_name
            )
        t0 = time.perf_counter()
        exe, functional = self._binary_and_trace(
            workload, input_name, compiler, microarch.issue_width
        )
        with span(
            "measure.simulate",
            workload=workload,
            input=input_name,
            mode=self.mode,
            interval=self.smarts_interval,
        ):
            outcome = simulate(
                exe,
                microarch,
                mode=self.mode,
                interval=self.smarts_interval,
                functional=functional,
                memo=self.memo,
            )
        self.simulations += 1
        _SIMULATIONS.inc()
        self._observe_cost(workload, input_name, time.perf_counter() - t0)
        result = Measurement(
            cycles=outcome.cycles,
            checksum=outcome.return_value,
            instructions=outcome.instructions,
            sampling_error=outcome.sampling_error,
            code_size=len(exe.instrs),
        )
        self._result_cache[key] = result
        self._dirty = True
        return result

    def _estimate_static(
        self,
        key: str,
        workload: str,
        compiler: CompilerConfig,
        microarch: MicroarchConfig,
        input_name: str,
    ) -> Measurement:
        """``--oracle static``: answer from the analytical cost model.

        No compilation, execution or simulation happens; the program's
        static analysis (cached per workload by the oracle) is evaluated
        in microseconds.  ``checksum=0`` and ``sampling_error=0.0`` mark
        the result as an estimate, and the mode field in the result key
        keeps static entries apart from measured ones.
        """
        # Imported lazily: the static-analysis stack is opt-in and the
        # accurate path must not pay for it.
        from repro.analysis.static.oracle import default_static_oracle

        with span(
            "measure.static", workload=workload, input=input_name
        ):
            breakdown = default_static_oracle().estimate(
                workload, compiler, microarch, input_name
            )
        result = Measurement(
            cycles=breakdown.cycles,
            checksum=0,
            instructions=int(breakdown.instructions),
            sampling_error=0.0,
            code_size=breakdown.code_size,
        )
        self._result_cache[key] = result
        self._dirty = True
        return result

    def _observe_cost(
        self, workload: str, input_name: str, seconds: float
    ) -> None:
        """Fold one measured per-point duration into the cost model."""
        key = (workload, input_name)
        prev = self._point_cost.get(key)
        self._point_cost[key] = (
            seconds if prev is None else 0.7 * prev + 0.3 * seconds
        )

    def _estimated_cost(self, workload: str, input_name: str) -> float:
        return self._point_cost.get((workload, input_name), 1.0)

    def cycles(
        self,
        workload: str,
        point: Mapping[str, float],
        input_name: str = "train",
    ) -> float:
        return self.measure(workload, point, input_name).cycles

    # ------------------------------------------------------------------
    # Batch measurement (process-pool fan-out)
    # ------------------------------------------------------------------
    def measure_many(
        self,
        requests: Sequence[Tuple[str, CompilerConfig, MicroarchConfig, str]],
        jobs: Optional[int] = None,
    ) -> List[Measurement]:
        """Measure many ``(workload, compiler, microarch, input)`` tuples.

        Cache hits are served from this engine; misses are deduplicated
        by cache key and, with ``jobs > 1``, fanned out to a process
        pool.  Results land back in this engine's caches, so a following
        :meth:`save` persists them.  Guaranteed identical to calling
        :meth:`measure_configs` in a loop, for any worker count.
        """
        requests = list(requests)
        jobs = self.jobs if jobs is None else max(1, int(jobs))
        results: List[Optional[Measurement]] = [None] * len(requests)
        #: cache key -> indices into `requests` still needing measurement.
        pending: "OrderedDict[str, List[int]]" = OrderedDict()
        for i, (workload, comp, micro, input_name) in enumerate(requests):
            key = self._result_key(
                workload, input_name, comp, micro, self.mode, self.smarts_interval
            )
            cached = self._result_cache.get(key)
            if cached is not None:
                _RESULT_HITS.inc()
                results[i] = cached
            else:
                pending.setdefault(key, []).append(i)
        # Static estimates are microseconds each: the pool's per-worker
        # startup would dwarf the work, so they always run in-process.
        if pending and (jobs <= 1 or len(pending) == 1 or self.mode == "static"):
            for indices in pending.values():
                workload, comp, micro, input_name = requests[indices[0]]
                m = self.measure_configs(workload, comp, micro, input_name)
                for i in indices:
                    results[i] = m
        elif pending:
            self._measure_pending_parallel(requests, pending, results, jobs)
        if requests:
            self._record_batch_provenance(requests, pending, jobs)
        return results  # type: ignore[return-value]

    def _record_batch_provenance(
        self,
        requests: Sequence[Tuple[str, CompilerConfig, MicroarchConfig, str]],
        pending: "OrderedDict[str, List[int]]",
        jobs: int,
    ) -> None:
        """Append one ``measure_batch`` ledger event covering this call.

        Every result key in the batch (cache hit or fresh simulation) is
        referenced, because lineage needs the *inputs* of a model fit,
        not just the simulator work this particular process happened to
        do.  The config digest fingerprints the full ordered key list,
        so two batches over the same design are recognizably identical.
        """
        keys = [
            self._result_key(
                w, inp, comp, micro, self.mode, self.smarts_interval
            )
            for w, comp, micro, inp in requests
        ]
        workloads = sorted({r[0] for r in requests})
        inputs = sorted({r[3] for r in requests})
        record_event(
            "measure_batch",
            attrs={
                "workload": workloads[0] if len(workloads) == 1 else workloads,
                "input": inputs[0] if len(inputs) == 1 else inputs,
                "n_points": len(requests),
                "n_misses": len(pending),
                "n_hits": len(requests) - sum(len(v) for v in pending.values()),
                "jobs": jobs,
                "mode": self.mode,
                "interval": self.smarts_interval,
            },
            refs={
                "config_digest": _md5_hex("|".join(keys).encode())[:16],
                "result_keys": cap_result_keys(sorted(set(keys))),
            },
        )

    def _plan_chunks(
        self,
        requests: Sequence[Tuple[str, CompilerConfig, MicroarchConfig, str]],
        pending: "OrderedDict[str, List[int]]",
        n_chunks: int,
    ) -> List[List[Tuple[str, str, CompilerConfig, MicroarchConfig, str]]]:
        """Partition pending work into at most ``n_chunks`` task chunks.

        Points are ordered so that points sharing a binary (same
        workload, input, compiler key and issue width) are contiguous --
        a worker measuring such a run pays one compile+trace for all of
        them via its LRU -- and the ordered list is split at cumulative
        cost boundaries from the per-point cost model, so each chunk
        carries roughly equal work.  One chunk per worker replaces the
        old one-future-per-point submission, whose per-task pickling and
        telemetry overhead dominated small batches.
        """
        tasks = []
        for key, indices in pending.items():
            workload, comp, micro, input_name = requests[indices[0]]
            order = (
                workload,
                input_name,
                comp.cache_key(),
                micro.issue_width,
                micro.cache_key(),
            )
            cost = self._estimated_cost(workload, input_name)
            tasks.append((order, cost, (key, workload, comp, micro, input_name)))
        tasks.sort(key=lambda t: t[0])
        n_chunks = max(1, min(n_chunks, len(tasks)))
        total = sum(t[1] for t in tasks)
        chunks: List[List[tuple]] = [[] for _ in range(n_chunks)]
        cum = 0.0
        for order, cost, task in tasks:
            # Place by the task's cost *midpoint*: placing by its start
            # offset would push a boundary-straddling expensive task
            # entirely into the earlier chunk and unbalance the split.
            center = cum + cost / 2.0
            idx = int(center / total * n_chunks) if total > 0 else 0
            if idx >= n_chunks:
                idx = n_chunks - 1
            chunks[idx].append(task)
            cum += cost
        return [c for c in chunks if c]

    def _measure_pending_parallel(
        self,
        requests: Sequence[Tuple[str, CompilerConfig, MicroarchConfig, str]],
        pending: "OrderedDict[str, List[int]]",
        results: List[Optional[Measurement]],
        jobs: int,
    ) -> None:
        n_workers = min(jobs, len(pending))
        chunks = self._plan_chunks(requests, pending, n_workers)
        with span(
            "measure.batch",
            pool_size=n_workers,
            n_points=len(requests),
            n_missing=len(pending),
            n_chunks=len(chunks),
        ):
            # Captured *inside* the batch span so worker spans merge in
            # as its children; workers adopt the context in the pool
            # initializer and ship each task's telemetry back with the
            # result (see repro.obs.context).
            ctx = capture_context()
            with ProcessPoolExecutor(
                max_workers=n_workers,
                mp_context=multiprocessing.get_context(),
                initializer=_init_worker,
                initargs=(
                    self.mode,
                    self.smarts_interval,
                    self.max_cached_traces,
                    self._artifact_dir,
                    self._memo_path,
                    ctx,
                ),
            ) as pool:
                futures = []
                for chunk in chunks:
                    futures.append(pool.submit(_measure_chunk, chunk))
                    _BATCH_SUBMITTED.inc()
                for fut in as_completed(futures):
                    items, worker_ms, telemetry = fut.result()
                    _WORKER_MS.observe(worker_ms)
                    merge_worker_telemetry(telemetry, ctx)
                    for key, m in items:
                        self.simulations += 1
                        self._result_cache[key] = m
                        self._dirty = True
                        for i in pending[key]:
                            results[i] = m
                    if items:
                        workload = requests[pending[items[0][0]][0]][0]
                        input_name = requests[pending[items[0][0]][0]][3]
                        self._observe_cost(
                            workload, input_name, worker_ms / 1e3 / len(items)
                        )
        if self.memo is not None:
            # Absorb the units/runs the workers just persisted, so
            # follow-up serial measurements in this process reuse them.
            self.memo.load()

    def measure_batch(
        self,
        workload: str,
        points: Sequence[Mapping[str, float]],
        input_name: str = "train",
        jobs: Optional[int] = None,
    ) -> List[Measurement]:
        """Measure a whole design (sequence of raw points) for one
        workload, fanning cache misses out to ``jobs`` workers."""
        requests = []
        for point in points:
            compiler, microarch = split_point(point)
            requests.append((workload, compiler, microarch, input_name))
        return self.measure_many(requests, jobs=jobs)

    def cycles_batch(
        self,
        workload: str,
        points: Sequence[Mapping[str, float]],
        input_name: str = "train",
        jobs: Optional[int] = None,
    ) -> List[float]:
        return [
            m.cycles
            for m in self.measure_batch(workload, points, input_name, jobs=jobs)
        ]

    def oracle(self, workload: str, input_name: str = "train") -> "EngineOracle":
        """A batch-aware oracle for :func:`repro.pipeline.build_model`."""
        return EngineOracle(self, workload, input_name)

    def code_size_oracle(
        self, workload: str, input_name: str = "train"
    ) -> "EngineOracle":
        """Oracle for the secondary code-size response (Section 2.2
        notes models can be built for metrics beyond execution time)."""
        return EngineOracle(self, workload, input_name, response="code_size")


class EngineOracle:
    """Oracle bound to one (engine, workload, input, response).

    Callable one point at a time like any plain oracle, and additionally
    implements the batch half of the pipeline's ``Oracle`` protocol:
    ``measure_many(points)`` submits the whole design to
    :meth:`MeasurementEngine.measure_batch` so cache misses run on the
    engine's worker pool.
    """

    def __init__(
        self,
        engine: MeasurementEngine,
        workload: str,
        input_name: str = "train",
        response: str = "cycles",
        jobs: Optional[int] = None,
    ):
        self.engine = engine
        self.workload = workload
        self.input_name = input_name
        self.response = response
        self.jobs = jobs

    def _value(self, m: Measurement) -> float:
        return float(getattr(m, self.response))

    def __call__(self, point: Mapping[str, float]) -> float:
        return self._value(
            self.engine.measure(self.workload, point, self.input_name)
        )

    def measure_many(
        self, points: Sequence[Mapping[str, float]]
    ) -> List[float]:
        return [
            self._value(m)
            for m in self.engine.measure_batch(
                self.workload, points, self.input_name, jobs=self.jobs
            )
        ]


# ----------------------------------------------------------------------
# Worker-process side of the pool.  Each worker holds one engine (fresh
# in-memory caches, no measurement-file persistence) alive across tasks,
# so repeated (compiler key, issue width) pairs amortize their
# compilations; the on-disk artifact store and timing memo are shared
# with the parent and the other workers.
# ----------------------------------------------------------------------
_WORKER_ENGINE: Optional[MeasurementEngine] = None


def _init_worker(
    mode: str,
    smarts_interval: int,
    max_cached_traces: int,
    artifact_dir: Optional[str] = None,
    memo_path: Optional[str] = None,
    ctx: Optional[TelemetryContext] = None,
) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = MeasurementEngine(
        mode=mode,
        smarts_interval=smarts_interval,
        cache_dir=None,
        max_cached_traces=max_cached_traces,
        jobs=1,
        artifact_dir=artifact_dir,
        memo_path=memo_path,
    )
    install_context(ctx)


def _measure_chunk(
    chunk: Sequence[Tuple[str, str, CompilerConfig, MicroarchConfig, str]],
) -> Tuple[List[Tuple[str, Measurement]], float, WorkerTelemetry]:
    """Measure one planned chunk of (key, request) tasks in a worker.

    The chunk is measured sequentially on the worker's engine -- its
    binary LRU serves the shared-binary runs the planner grouped -- and
    the timing memo is flushed once at the end so sibling workers and
    future processes reuse the units this chunk simulated.
    """
    begin_task()
    t0 = time.perf_counter()
    out: List[Tuple[str, Measurement]] = []
    for key, workload, compiler, microarch, input_name in chunk:
        with span("measure.task", workload=workload, input=input_name, key=key):
            m = _WORKER_ENGINE.measure_configs(
                workload, compiler, microarch, input_name
            )
        out.append((key, m))
    if _WORKER_ENGINE.memo is not None:
        _WORKER_ENGINE.memo.save()
    worker_ms = (time.perf_counter() - t0) * 1e3
    return out, worker_ms, collect_task()


_DEFAULT: Optional[MeasurementEngine] = None


def default_engine() -> MeasurementEngine:
    """Shared engine with the on-disk cache in ``.repro_cache``.

    The cache directory can be overridden with ``REPRO_CACHE_DIR``;
    setting it to ``0`` or ``off`` disables persistence.
    """
    global _DEFAULT
    if _DEFAULT is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
        if cache_dir.lower() in ("0", "off", "none", ""):
            cache_dir = None
        _DEFAULT = MeasurementEngine(cache_dir=cache_dir)
    return _DEFAULT

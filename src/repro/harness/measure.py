"""The measurement oracle: design point -> execution time in cycles.

Measuring a design point means: build the workload's binary for the
point's compiler settings (and issue width -- the machine description
depends on it, as in the paper's per-FU-configuration gcc builds), run
it functionally once to get the dynamic trace and checksum, and estimate
execution time with SMARTS sampling (or exhaustive detailed simulation).

Caching layers:

* binaries + traces are memoized on (workload, input, compiler key,
  issue width), since the trace does not depend on the rest of the
  microarchitecture;
* (cycles, checksum) results are memoized on the full point, optionally
  persisted to ``.repro_cache/measurements.json`` so the benchmark suite
  reuses measurements across processes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

from repro.codegen import COMPILER_VERSION, compile_module
from repro.harness.configs import split_point
from repro.obs import counter, span
from repro.opt.flags import CompilerConfig
from repro.sim import simulate
from repro.sim.config import MicroarchConfig
from repro.sim.func import execute
from repro.workloads import get_workload

_TRACE_HITS = counter("measure.trace_cache.hits")
_TRACE_MISSES = counter("measure.trace_cache.misses")
_TRACE_EVICTIONS = counter("measure.trace_cache.evictions")
_RESULT_HITS = counter("measure.result_cache.hits")
_RESULT_MISSES = counter("measure.result_cache.misses")
_COMPILATIONS = counter("measure.compilations")
_SIMULATIONS = counter("measure.simulations")


@dataclass
class Measurement:
    """One measured design point."""

    cycles: float
    checksum: int
    instructions: int
    sampling_error: float
    #: Static code size of the binary, in instructions (a secondary
    #: response the paper mentions models can be built for).
    code_size: int = 0


class MeasurementEngine:
    """Compiles, simulates and caches measurements.

    Parameters
    ----------
    mode:
        ``"smarts"`` (default, the paper's methodology) or ``"detailed"``.
    smarts_interval:
        Sampling interval for SMARTS (1 unit in every N measured).
    cache_dir:
        Directory for the persistent measurement cache; None disables
        persistence (in-memory caching still applies).
    max_cached_traces:
        Traces are large; only this many binaries+traces stay resident.
    """

    def __init__(
        self,
        mode: str = "smarts",
        smarts_interval: int = 3,
        cache_dir: Optional[str] = None,
        max_cached_traces: int = 6,
    ):
        self.mode = mode
        self.smarts_interval = smarts_interval
        self.max_cached_traces = max_cached_traces
        #: LRU of (exe, functional) keyed on (workload, input, compiler
        #: key, issue width); hits move the entry to the MRU end.
        self._trace_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._result_cache: Dict[str, Measurement] = {}
        self._dirty = False
        self.simulations = 0
        self.compilations = 0
        self._cache_path: Optional[Path] = None
        if cache_dir is not None:
            self._cache_path = Path(cache_dir) / "measurements.json"
            self._load_disk_cache()

    # ------------------------------------------------------------------
    # Persistent cache
    # ------------------------------------------------------------------
    def _load_disk_cache(self) -> None:
        if self._cache_path is None or not self._cache_path.exists():
            return
        try:
            raw = json.loads(self._cache_path.read_text())
        except (json.JSONDecodeError, OSError):
            return
        for key, value in raw.items():
            value.setdefault("code_size", 0)
            self._result_cache[key] = Measurement(**value)

    def save(self) -> None:
        """Flush the measurement cache to disk (no-op without cache_dir).

        The write is atomic: the payload goes to a temporary file in the
        same directory and is ``os.replace``-d over ``measurements.json``,
        so a crash mid-flush leaves either the old cache or the new one,
        never a truncated file for ``_load_disk_cache`` to discard.
        """
        if self._cache_path is None or not self._dirty:
            return
        self._cache_path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            key: {
                "cycles": m.cycles,
                "checksum": m.checksum,
                "instructions": m.instructions,
                "sampling_error": m.sampling_error,
                "code_size": m.code_size,
            }
            for key, m in self._result_cache.items()
        }
        fd, tmp = tempfile.mkstemp(
            dir=str(self._cache_path.parent),
            prefix=self._cache_path.name,
            suffix=".tmp",
        )
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(payload, f)
            os.replace(tmp, self._cache_path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self._dirty = False

    # ------------------------------------------------------------------
    _fingerprints: Dict[Tuple[str, str], str] = {}

    @classmethod
    def _workload_fingerprint(cls, workload: str, input_name: str) -> str:
        """Short hash of the workload's source so stale cache entries
        from an edited workload can never be served."""
        key = (workload, input_name)
        if key not in cls._fingerprints:
            source = get_workload(workload).source(input_name)
            cls._fingerprints[key] = hashlib.md5(
                source.encode()
            ).hexdigest()[:10]
        return cls._fingerprints[key]

    @classmethod
    def _result_key(
        cls,
        workload: str,
        input_name: str,
        compiler: CompilerConfig,
        microarch: MicroarchConfig,
        mode: str,
        interval: int,
    ) -> str:
        parts = (
            [
                workload,
                input_name,
                cls._workload_fingerprint(workload, input_name),
                f"cc{COMPILER_VERSION}",
                mode,
                str(interval),
            ]
            + [str(v) for v in compiler.cache_key()]
            + [str(v) for v in microarch.cache_key()]
        )
        return "|".join(parts)

    def _binary_and_trace(
        self, workload: str, input_name: str, compiler: CompilerConfig, issue_width: int
    ):
        key = (workload, input_name, compiler.cache_key(), issue_width)
        hit = self._trace_cache.get(key)
        if hit is not None:
            # True LRU: refresh recency on hit so a hot trace is never
            # evicted just because it was inserted first.
            self._trace_cache.move_to_end(key)
            _TRACE_HITS.inc()
            return hit
        _TRACE_MISSES.inc()
        module = get_workload(workload).module(input_name)
        with span(
            "measure.compile",
            workload=workload,
            input=input_name,
            issue_width=issue_width,
        ):
            exe = compile_module(module, compiler, issue_width=issue_width)
        self.compilations += 1
        _COMPILATIONS.inc()
        with span("measure.functional", workload=workload, input=input_name) as sp:
            functional = execute(exe, collect_trace=True)
            sp.set_attrs(instructions=functional.instruction_count)
        if len(self._trace_cache) >= self.max_cached_traces:
            self._trace_cache.popitem(last=False)  # evict the LRU entry
            _TRACE_EVICTIONS.inc()
        entry = (exe, functional)
        self._trace_cache[key] = entry
        return entry

    def compile_and_trace(
        self, workload: str, input_name: str, compiler: CompilerConfig, issue_width: int
    ):
        """Public cached access to a workload's (binary, functional run)."""
        return self._binary_and_trace(workload, input_name, compiler, issue_width)

    # ------------------------------------------------------------------
    def measure(
        self,
        workload: str,
        point: Mapping[str, float],
        input_name: str = "train",
    ) -> Measurement:
        """Measure one full (compiler x microarch) design point."""
        compiler, microarch = split_point(point)
        return self.measure_configs(workload, compiler, microarch, input_name)

    def measure_configs(
        self,
        workload: str,
        compiler: CompilerConfig,
        microarch: MicroarchConfig,
        input_name: str = "train",
    ) -> Measurement:
        key = self._result_key(
            workload, input_name, compiler, microarch, self.mode, self.smarts_interval
        )
        cached = self._result_cache.get(key)
        if cached is not None:
            _RESULT_HITS.inc()
            return cached
        _RESULT_MISSES.inc()
        exe, functional = self._binary_and_trace(
            workload, input_name, compiler, microarch.issue_width
        )
        with span(
            "measure.simulate",
            workload=workload,
            input=input_name,
            mode=self.mode,
            interval=self.smarts_interval,
        ):
            outcome = simulate(
                exe,
                microarch,
                mode=self.mode,
                interval=self.smarts_interval,
                functional=functional,
            )
        self.simulations += 1
        _SIMULATIONS.inc()
        result = Measurement(
            cycles=outcome.cycles,
            checksum=outcome.return_value,
            instructions=outcome.instructions,
            sampling_error=outcome.sampling_error,
            code_size=len(exe.instrs),
        )
        self._result_cache[key] = result
        self._dirty = True
        return result

    def cycles(
        self,
        workload: str,
        point: Mapping[str, float],
        input_name: str = "train",
    ) -> float:
        return self.measure(workload, point, input_name).cycles

    def oracle(self, workload: str, input_name: str = "train"):
        """An oracle callable for :func:`repro.pipeline.build_model`."""

        def _oracle(point: Mapping[str, float]) -> float:
            return self.cycles(workload, point, input_name)

        return _oracle

    def code_size_oracle(self, workload: str, input_name: str = "train"):
        """Oracle for the secondary code-size response (Section 2.2
        notes models can be built for metrics beyond execution time)."""

        def _oracle(point: Mapping[str, float]) -> float:
            return float(self.measure(workload, point, input_name).code_size)

        return _oracle


_DEFAULT: Optional[MeasurementEngine] = None


def default_engine() -> MeasurementEngine:
    """Shared engine with the on-disk cache in ``.repro_cache``.

    The cache directory can be overridden with ``REPRO_CACHE_DIR``;
    setting it to ``0`` or ``off`` disables persistence.
    """
    global _DEFAULT
    if _DEFAULT is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
        if cache_dir.lower() in ("0", "off", "none", ""):
            cache_dir = None
        _DEFAULT = MeasurementEngine(cache_dir=cache_dir)
    return _DEFAULT

"""One driver per table/figure of the paper's evaluation section."""

from repro.harness.experiments.accuracy import (
    Table3Result,
    run_table3,
    run_fig5_learning_curves,
    run_fig6_scatter,
)
from repro.harness.experiments.interpret import (
    run_table4_mars_effects,
    run_fig3_unroll_icache,
)
from repro.harness.experiments.search import (
    SearchOutcome,
    run_model_search,
    run_fig7_speedups,
    run_table7_pgo,
)
from repro.harness.experiments.sampling import run_smarts_accuracy
from repro.harness.experiments.ablations import (
    run_design_ablation,
    run_rbf_ablation,
)
from repro.harness.experiments.codesign import (
    run_joint_search,
    run_microarch_search,
)

__all__ = [
    "Table3Result",
    "run_table3",
    "run_fig5_learning_curves",
    "run_fig6_scatter",
    "run_table4_mars_effects",
    "run_fig3_unroll_icache",
    "SearchOutcome",
    "run_model_search",
    "run_fig7_speedups",
    "run_table7_pgo",
    "run_smarts_accuracy",
    "run_design_ablation",
    "run_rbf_ablation",
    "run_joint_search",
    "run_microarch_search",
]

"""Extension: hardware/software co-design search.

The paper's conclusion points at using the models for "efficient
searches over parts of the design space"; Section 6.3 freezes the
microarchitecture and searches the compiler.  The same machinery runs
the *inverse* search -- freeze the compiler settings, search the
11-variable Table 2 subspace for the best (or best-per-cost) machine for
a program -- and the *joint* search over all 25 variables.  Both are
pure model evaluations: no extra simulation is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.harness.corpus import Corpus
from repro.harness.model_zoo import standard_factories
from repro.models.base import RegressionModel
from repro.opt.flags import CompilerConfig, O2
from repro.search import GeneticSearch, SearchResult
from repro.sim.config import MicroarchConfig
from repro.space import (
    COMPILER_VARIABLE_NAMES,
    MICROARCH_VARIABLE_NAMES,
    ParameterSpace,
)


def frozen_compiler_objective(
    model: RegressionModel,
    space: ParameterSpace,
    microarch_subspace: ParameterSpace,
    compiler: CompilerConfig,
):
    """Objective over the microarch subspace with Table 1 vars frozen."""
    comp_point = compiler.to_point()
    comp_indices = []
    comp_values = []
    for i, name in enumerate(space.names):
        if name in comp_point:
            comp_indices.append(i)
            comp_values.append(space[name].encode(comp_point[name]))
    micro_indices = [space.index_of(n) for n in microarch_subspace.names]

    def objective(micro_coded: np.ndarray) -> np.ndarray:
        micro_coded = np.atleast_2d(micro_coded)
        joint = np.empty((micro_coded.shape[0], space.dim))
        joint[:, micro_indices] = micro_coded
        joint[:, comp_indices] = comp_values
        return model.predict(joint)

    return objective


@dataclass
class CodesignOutcome:
    workload: str
    best_microarch: MicroarchConfig
    predicted_cycles: float
    evaluations: int


def run_microarch_search(
    corpus: Corpus,
    compiler: CompilerConfig = O2,
    model_name: str = "rbf-rt",
    seed: int = 17,
    population: int = 60,
    generations: int = 40,
) -> Dict[str, CodesignOutcome]:
    """Find the model-predicted best Table 2 machine per workload."""
    microarch_subspace = corpus.space.subspace(MICROARCH_VARIABLE_NAMES)
    rng = np.random.default_rng(seed)
    outcomes: Dict[str, CodesignOutcome] = {}
    for name, data in corpus.data.items():
        factory = standard_factories(
            corpus.space.names, data.x_train.shape[0]
        )[model_name]
        model = factory()
        model.fit(data.x_train, data.y_train)
        objective = frozen_compiler_objective(
            model, corpus.space, microarch_subspace, compiler
        )
        ga = GeneticSearch(
            microarch_subspace, population=population, generations=generations
        )
        result = ga.run(objective, rng)
        outcomes[name] = CodesignOutcome(
            workload=name,
            best_microarch=MicroarchConfig.from_point(result.best_point),
            predicted_cycles=result.best_value,
            evaluations=result.evaluations,
        )
    return outcomes


def run_joint_search(
    corpus: Corpus,
    workload: str,
    model_name: str = "rbf-rt",
    seed: int = 23,
    population: int = 80,
    generations: int = 60,
) -> SearchResult:
    """Search compiler and microarchitecture together (25 variables)."""
    data = corpus.data[workload]
    factory = standard_factories(
        corpus.space.names, data.x_train.shape[0]
    )[model_name]
    model = factory()
    model.fit(data.x_train, data.y_train)

    def objective(coded: np.ndarray) -> np.ndarray:
        return model.predict(np.atleast_2d(coded))

    ga = GeneticSearch(
        corpus.space, population=population, generations=generations
    )
    return ga.run(objective, np.random.default_rng(seed))

"""Interpretability experiments: Table 4 (MARS effects) and Figure 3."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.harness.configs import joint_point
from repro.harness.corpus import Corpus
from repro.harness.measure import MeasurementEngine, default_engine
from repro.harness.model_zoo import standard_factories
from repro.models import LinearModel
from repro.opt.flags import O2, CompilerConfig
from repro.sim.config import TYPICAL, MicroarchConfig
from repro.space import (
    COMPILER_VARIABLE_NAMES,
    MICROARCH_VARIABLE_NAMES,
    full_space,
)


@dataclass
class MarsEffects:
    """Named MARS effect coefficients for one workload (Table 4 style)."""

    workload: str
    #: term name -> coefficient (coded scale: half the low->high change).
    effects: Dict[str, float]

    def top(self, k: int = 12) -> List[Tuple[str, float]]:
        items = [
            (name, value)
            for name, value in self.effects.items()
            if name != "(intercept)"
        ]
        items.sort(key=lambda kv: -abs(kv[1]))
        return items[:k]

    def _group_magnitude(self, wanted: Sequence[str]) -> float:
        total = 0.0
        for name, value in self.effects.items():
            if name == "(intercept)":
                continue
            vars_in = name.split(" * ")
            if all(v in wanted for v in vars_in):
                total += abs(value)
        return total

    @property
    def microarch_magnitude(self) -> float:
        return self._group_magnitude(MICROARCH_VARIABLE_NAMES)

    @property
    def compiler_magnitude(self) -> float:
        return self._group_magnitude(COMPILER_VARIABLE_NAMES)


def run_table4_mars_effects(corpus: Corpus) -> Dict[str, MarsEffects]:
    """Fit MARS per workload and extract effect coefficients."""
    results: Dict[str, MarsEffects] = {}
    for name, data in corpus.data.items():
        factory = standard_factories(
            corpus.space.names, data.x_train.shape[0]
        )["mars"]
        model = factory()
        model.fit(data.x_train, data.y_train)
        results[name] = MarsEffects(name, model.named_effects())
    return results


@dataclass
class Fig3Result:
    """art runtime over the unroll-factor x icache-size grid."""

    unroll_factors: List[int]
    icache_sizes: List[int]
    #: cycles[(factor, size)] measured.
    cycles: Dict[Tuple[int, int], float]
    #: Linear-model fit over the unroll axis for the smallest icache.
    linear_prediction: Dict[int, float]

    def column(self, icache: int) -> List[float]:
        return [self.cycles[(u, icache)] for u in self.unroll_factors]


def run_fig3_unroll_icache(
    engine: Optional[MeasurementEngine] = None,
    workload: str = "art",
    unroll_factors: Sequence[int] = (4, 6, 8, 10, 12),
    icache_sizes_kb: Sequence[int] = (8, 32, 128),
) -> Fig3Result:
    """Measure the Figure 3 response surface.

    Unrolling is enabled on top of -O2 with ``max_unroll_times`` swept;
    the linear-model overlay shows why a global linear fit cannot follow
    the dip-then-rise response (Section 4.1's motivating example).
    """
    engine = engine or default_engine()
    cycles: Dict[Tuple[int, int], float] = {}
    import dataclasses

    # A narrow, small-window machine: unrolling's benefit (fetch/issue
    # overhead removal) and its cost (register pressure spills) are both
    # largest there, which is where the paper's dip-then-rise response
    # is clearest.
    base = dataclasses.replace(TYPICAL, issue_width=2, ruu_size=16)
    grid = []
    requests = []
    for kb in icache_sizes_kb:
        microarch = dataclasses.replace(base, icache_size=kb * 1024)
        for unroll in unroll_factors:
            compiler = dataclasses.replace(
                O2,
                unroll_loops=True,
                max_unroll_times=unroll,
                max_unrolled_insns=300,
            )
            grid.append((unroll, kb * 1024))
            requests.append((workload, compiler, microarch, "train"))
    try:
        measured = engine.measure_many(requests)
    finally:
        engine.save()
    for cell, m in zip(grid, measured):
        cycles[cell] = m.cycles

    # Simple 1-D linear fit of cycles vs unroll factor at the smallest
    # icache, showing the inadequacy of the global linear form.
    smallest = min(icache_sizes_kb) * 1024
    xs = np.array(unroll_factors, dtype=float)
    ys = np.array([cycles[(u, smallest)] for u in unroll_factors])
    slope, intercept = np.polyfit(xs, ys, 1)
    prediction = {u: float(slope * u + intercept) for u in unroll_factors}
    return Fig3Result(
        unroll_factors=list(unroll_factors),
        icache_sizes=[kb * 1024 for kb in icache_sizes_kb],
        cycles=cycles,
        linear_prediction=prediction,
    )

"""Model-based search experiments: Table 6, Figure 7, Table 7.

A fitted model predicts cycles at arbitrary design points for free, so a
genetic algorithm can search the 14-variable compiler subspace with the
microarchitecture frozen (Section 6.3).  The prescribed settings are
then *actually* compiled and simulated to get true speedups over -O2 and
-O3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.harness.configs import TABLE5_CONFIGS, joint_point
from repro.harness.corpus import Corpus
from repro.harness.measure import MeasurementEngine, default_engine
from repro.harness.model_zoo import standard_factories
from repro.models.base import RegressionModel
from repro.opt.flags import CompilerConfig, O2, O3
from repro.search import GeneticSearch
from repro.sim.config import MicroarchConfig
from repro.space import COMPILER_VARIABLE_NAMES, ParameterSpace


def frozen_microarch_objective(
    model: RegressionModel,
    space: ParameterSpace,
    compiler_subspace: ParameterSpace,
    microarch: MicroarchConfig,
):
    """Objective over the compiler subspace with Table 2 vars frozen."""
    micro_point = microarch.to_point()
    micro_indices = []
    micro_values = []
    for i, name in enumerate(space.names):
        if name in micro_point:
            micro_indices.append(i)
            micro_values.append(space[name].encode(micro_point[name]))
    comp_indices = [space.index_of(n) for n in compiler_subspace.names]

    def objective(comp_coded: np.ndarray) -> np.ndarray:
        comp_coded = np.atleast_2d(comp_coded)
        joint = np.empty((comp_coded.shape[0], space.dim))
        joint[:, comp_indices] = comp_coded
        joint[:, micro_indices] = micro_values
        return model.predict(joint)

    return objective


@dataclass
class SearchOutcome:
    """GA search result for one (workload, microarch config) pair."""

    workload: str
    config_name: str
    best_settings: CompilerConfig
    predicted_cycles: float
    #: Model-predicted cycles at O2 for the same microarch.
    predicted_o2_cycles: float
    evaluations: int

    @property
    def predicted_speedup_pct(self) -> float:
        return (self.predicted_o2_cycles / self.predicted_cycles - 1.0) * 100


def run_model_search(
    corpus: Corpus,
    configs: Optional[Mapping[str, MicroarchConfig]] = None,
    model_name: str = "rbf-rt",
    seed: int = 7,
    generations: int = 40,
    population: int = 60,
) -> Dict[str, Dict[str, SearchOutcome]]:
    """Table 6: GA-prescribed settings per workload per configuration."""
    configs = dict(configs) if configs else dict(TABLE5_CONFIGS)
    compiler_subspace = corpus.space.subspace(COMPILER_VARIABLE_NAMES)
    outcomes: Dict[str, Dict[str, SearchOutcome]] = {}
    rng = np.random.default_rng(seed)
    for name, data in corpus.data.items():
        factory = standard_factories(
            corpus.space.names, data.x_train.shape[0]
        )[model_name]
        model = factory()
        model.fit(data.x_train, data.y_train)
        outcomes[name] = {}
        for config_name, microarch in configs.items():
            objective = frozen_microarch_objective(
                model, corpus.space, compiler_subspace, microarch
            )
            ga = GeneticSearch(
                compiler_subspace,
                population=population,
                generations=generations,
            )
            result = ga.run(objective, rng)
            settings = CompilerConfig.from_point(result.best_point)
            o2_coded = compiler_subspace.encode(O2.to_point())
            predicted_o2 = float(objective(o2_coded[None, :])[0])
            outcomes[name][config_name] = SearchOutcome(
                workload=name,
                config_name=config_name,
                best_settings=settings,
                predicted_cycles=result.best_value,
                predicted_o2_cycles=predicted_o2,
                evaluations=result.evaluations,
            )
    return outcomes


@dataclass
class SpeedupRow:
    """Figure 7 data for one (workload, config)."""

    workload: str
    config_name: str
    o2_cycles: float
    o3_cycles: float
    searched_cycles: float
    predicted_speedup_pct: float

    @property
    def o3_speedup_pct(self) -> float:
        return (self.o2_cycles / self.o3_cycles - 1.0) * 100

    @property
    def actual_speedup_pct(self) -> float:
        return (self.o2_cycles / self.searched_cycles - 1.0) * 100


def run_fig7_speedups(
    corpus: Corpus,
    searches: Dict[str, Dict[str, SearchOutcome]],
    engine: Optional[MeasurementEngine] = None,
    input_name: str = "train",
) -> List[SpeedupRow]:
    """Simulate at the prescribed settings; actual vs predicted speedups.

    All (workload, config) verification points are submitted to the
    engine as one batch, so they fan out across the engine's worker
    pool; the engine cache is flushed even if a measurement crashes.
    """
    engine = engine or default_engine()
    cells = [
        (workload, config_name, outcome)
        for workload, per_config in searches.items()
        for config_name, outcome in per_config.items()
    ]
    requests = []
    for workload, config_name, outcome in cells:
        microarch = TABLE5_CONFIGS[config_name]
        requests += [
            (workload, O2, microarch, input_name),
            (workload, O3, microarch, input_name),
            (workload, outcome.best_settings, microarch, input_name),
        ]
    try:
        measured = engine.measure_many(requests)
    finally:
        engine.save()
    rows: List[SpeedupRow] = []
    for i, (workload, config_name, outcome) in enumerate(cells):
        o2, o3, best = measured[3 * i : 3 * i + 3]
        rows.append(
            SpeedupRow(
                workload=workload,
                config_name=config_name,
                o2_cycles=o2.cycles,
                o3_cycles=o3.cycles,
                searched_cycles=best.cycles,
                predicted_speedup_pct=outcome.predicted_speedup_pct,
            )
        )
    return rows


def run_table7_pgo(
    searches: Dict[str, Dict[str, SearchOutcome]],
    engine: Optional[MeasurementEngine] = None,
) -> List[SpeedupRow]:
    """Profile-guided scenario: train-input settings applied to ref runs.

    The model (and hence the prescribed settings) comes from the train
    input; actual speedups are measured on the ref input (Table 7).
    """
    engine = engine or default_engine()
    cells = [
        (workload, config_name, outcome)
        for workload, per_config in searches.items()
        for config_name, outcome in per_config.items()
    ]
    requests = []
    for workload, config_name, outcome in cells:
        microarch = TABLE5_CONFIGS[config_name]
        requests += [
            (workload, O2, microarch, "ref"),
            (workload, outcome.best_settings, microarch, "ref"),
        ]
    try:
        measured = engine.measure_many(requests)
    finally:
        engine.save()
    rows: List[SpeedupRow] = []
    for i, (workload, config_name, outcome) in enumerate(cells):
        o2, best = measured[2 * i : 2 * i + 2]
        rows.append(
            SpeedupRow(
                workload=workload,
                config_name=config_name,
                o2_cycles=o2.cycles,
                o3_cycles=o2.cycles,  # O3 not part of Table 7
                searched_cycles=best.cycles,
                predicted_speedup_pct=outcome.predicted_speedup_pct,
            )
        )
    return rows

"""SMARTS validation (paper Section 5's sampling-accuracy claim)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.codegen import compile_module
from repro.opt.flags import O2
from repro.sim import simulate
from repro.sim.config import TYPICAL, MicroarchConfig
from repro.sim.func import execute
from repro.workloads import get_workload, workload_names


@dataclass
class SmartsAccuracyRow:
    workload: str
    detailed_cycles: float
    smarts_cycles: float
    claimed_ci_pct: float
    sampled_units: int

    @property
    def actual_error_pct(self) -> float:
        return (
            abs(self.smarts_cycles - self.detailed_cycles)
            / self.detailed_cycles
            * 100.0
        )


def run_smarts_accuracy(
    workloads: Optional[Sequence[str]] = None,
    microarch: MicroarchConfig = TYPICAL,
    interval: int = 10,
    unit_size: int = 1000,
) -> List[SmartsAccuracyRow]:
    """Compare SMARTS estimates against exhaustive detailed simulation."""
    rows = []
    for name in workloads or workload_names():
        module = get_workload(name).module("train")
        exe = compile_module(module, O2, issue_width=microarch.issue_width)
        functional = execute(exe, collect_trace=True)
        detailed = simulate(
            exe, microarch, mode="detailed", functional=functional
        )
        sampled = simulate(
            exe,
            microarch,
            mode="smarts",
            interval=interval,
            unit_size=unit_size,
            functional=functional,
        )
        rows.append(
            SmartsAccuracyRow(
                workload=name,
                detailed_cycles=detailed.cycles,
                smarts_cycles=sampled.cycles,
                claimed_ci_pct=sampled.sampling_error * 100.0,
                sampled_units=max(
                    1, functional.instruction_count // (unit_size * interval)
                ),
            )
        )
    return rows

"""Model-accuracy experiments: Table 3, Figure 5, Figure 6."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.harness.corpus import Corpus, WorkloadData
from repro.harness.model_zoo import standard_factories
from repro.models.metrics import r_squared
from repro.pipeline import LearningCurvePoint, evaluate_model, learning_curve


@dataclass
class Table3Result:
    """Average % prediction error per workload and model family."""

    errors: Dict[str, Dict[str, float]]
    averages: Dict[str, float]

    def ranking_ok(self) -> bool:
        """Paper's headline ordering: rbf <= mars <= linear on average."""
        avg = self.averages
        return avg["rbf-rt"] <= avg["mars"] <= avg["linear"]


def run_table3(corpus: Corpus) -> Table3Result:
    """Fit the three model families per workload; test-set MAPE."""
    errors: Dict[str, Dict[str, float]] = {}
    for name, data in corpus.data.items():
        factories = standard_factories(
            corpus.space.names, data.x_train.shape[0]
        )
        errors[name] = {}
        for model_name, factory in factories.items():
            model = factory()
            model.fit(data.x_train, data.y_train)
            mean_err, _std = evaluate_model(model, data.x_test, data.y_test)
            errors[name][model_name] = mean_err
    model_names = ["linear", "mars", "rbf-rt"]
    averages = {
        m: float(np.mean([errors[w][m] for w in errors])) for m in model_names
    }
    return Table3Result(errors=errors, averages=averages)


def run_fig5_learning_curves(
    corpus: Corpus,
    sizes: Optional[Sequence[int]] = None,
    model: str = "rbf-rt",
) -> Dict[str, List[LearningCurvePoint]]:
    """RBF accuracy (mean±std % error) vs training-set size, per workload.

    Uses nested prefixes of the augmented D-optimal design, mirroring the
    paper's iteratively grown designs.
    """
    curves: Dict[str, List[LearningCurvePoint]] = {}
    for name, data in corpus.data.items():
        use_sizes = list(sizes) if sizes else corpus.growth_steps
        factory = standard_factories(
            corpus.space.names, data.x_train.shape[0]
        )[model]
        curves[name] = learning_curve(
            data.x_train,
            data.y_train,
            data.x_test,
            data.y_test,
            factory,
            use_sizes,
        )
    return curves


@dataclass
class ScatterResult:
    """Actual-vs-predicted pairs for one workload (Figure 6)."""

    workload: str
    actual: np.ndarray
    predicted: np.ndarray

    @property
    def r2(self) -> float:
        return r_squared(self.actual, self.predicted)

    @property
    def max_abs_pct_error(self) -> float:
        return float(
            np.max(np.abs(self.predicted - self.actual) / self.actual) * 100
        )


def run_fig6_scatter(
    corpus: Corpus,
    workloads: Sequence[str] = ("art", "vortex", "mcf"),
) -> List[ScatterResult]:
    """Test-set actual vs RBF-predicted execution times."""
    results = []
    for name in workloads:
        data = corpus.data[name]
        factory = standard_factories(
            corpus.space.names, data.x_train.shape[0]
        )["rbf-rt"]
        model = factory()
        model.fit(data.x_train, data.y_train)
        results.append(
            ScatterResult(
                workload=name,
                actual=data.y_test.copy(),
                predicted=model.predict(data.x_test),
            )
        )
    return results

"""Ablations of the methodology's design choices.

The paper argues for (a) D-optimal designs over arbitrary samples
(Section 3), (b) the multiquadric kernel ("we evaluated several kernel
functions and found models based on the multi-quadratic kernel to be the
most accurate"), and (c) regression-tree center selection over
one-neuron-per-sample networks, which overfit (Section 4.4).  These
drivers quantify each choice on the measured corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.doe import (
    ModelMatrixBuilder,
    d_optimal_design,
    latin_hypercube_candidates,
    random_candidates,
)
from repro.harness.corpus import Corpus
from repro.harness.measure import MeasurementEngine, default_engine
from repro.models import RbfModel
from repro.pipeline import evaluate_model, measure_points
from repro.space import full_space


@dataclass
class DesignAblationRow:
    workload: str
    strategy: str
    n_train: int
    test_error_pct: float


def run_design_ablation(
    corpus: Corpus,
    workloads: Optional[Sequence[str]] = None,
    n_train: Optional[int] = None,
    engine: Optional[MeasurementEngine] = None,
    seed: int = 99,
) -> List[DesignAblationRow]:
    """D-optimal vs random vs Latin-hypercube training designs.

    Each strategy gets the same simulation budget; models are evaluated
    on the corpus's shared test set.  Extra simulations are needed for
    the alternative designs, so by default only two workloads run.
    """
    engine = engine or default_engine()
    space = full_space()
    rng = np.random.default_rng(seed)
    names = list(workloads) if workloads else list(corpus.data)[:2]
    rows: List[DesignAblationRow] = []
    # finally: a crash mid-sweep keeps every measurement already taken.
    try:
        for name in names:
            data = corpus.data[name]
            budget = n_train or min(60, data.x_train.shape[0])
            designs = {
                "d-optimal": data.x_train[:budget],
                "random": random_candidates(space, budget, rng),
                "lhs": latin_hypercube_candidates(space, budget, rng),
            }
            for strategy, design in designs.items():
                if strategy == "d-optimal":
                    y = data.y_train[:budget]
                else:
                    y = measure_points(engine.oracle(name), space, design)
                model = RbfModel(variable_names=space.names)
                model.fit(design, y)
                err, _ = evaluate_model(model, data.x_test, data.y_test)
                rows.append(DesignAblationRow(name, strategy, budget, err))
            engine.save()
    finally:
        engine.save()
    return rows


@dataclass
class RbfAblationRow:
    workload: str
    variant: str
    test_error_pct: float
    n_neurons: int


def run_rbf_ablation(corpus: Corpus) -> List[RbfAblationRow]:
    """Kernel choice and center-selection ablations (no extra sims)."""
    variants = {
        "multiquadric+tree": dict(kernel="multiquadric", center_mode="tree"),
        "gaussian+tree": dict(kernel="gaussian", center_mode="tree"),
        "inv-multiquadric+tree": dict(
            kernel="inverse_multiquadric", center_mode="tree"
        ),
        "multiquadric+all-points": dict(
            kernel="multiquadric", center_mode="data"
        ),
    }
    rows: List[RbfAblationRow] = []
    for name, data in corpus.data.items():
        for variant, kwargs in variants.items():
            model = RbfModel(variable_names=corpus.space.names, **kwargs)
            model.fit(data.x_train, data.y_train)
            err, _ = evaluate_model(model, data.x_test, data.y_test)
            rows.append(RbfAblationRow(name, variant, err, model.n_neurons))
    return rows

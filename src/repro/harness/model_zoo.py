"""Standard model configurations used throughout the experiments.

Matches Section 5 "Building models": linear models with main effects and
two-factor interactions (BIC-selected when the sample cannot support the
full 326-term expansion), MARS with GCV pruning, and RBF networks with
regression-tree centers, multiquadric kernel and BIC size selection.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.models import LinearModel, MarsModel, RbfModel
from repro.models.base import RegressionModel

ModelFactory = Callable[[], RegressionModel]


def linear_factory(names: Sequence[str], n_train: int) -> ModelFactory:
    # The full two-factor expansion of 25 variables has 326 terms; use
    # BIC forward selection whenever the sample cannot estimate them all.
    selection = "none" if n_train >= 340 else "bic"
    return lambda: LinearModel(
        variable_names=list(names), interactions=True, selection=selection
    )


def mars_factory(names: Sequence[str], n_train: int) -> ModelFactory:
    # Size the forward pass so the GCV effective-parameter charge
    # C(M) = M + penalty*(M-1) stays below half the sample: a forward
    # basis that saturates the charge leaves backward pruning nothing to
    # work with (GCV diverges as C -> n) and collapses to near-constant
    # models.
    penalty = 3
    budget = int((n_train / 2 + penalty) / (penalty + 1))
    max_terms = max(11, min(41, budget | 1))
    return lambda: MarsModel(
        variable_names=list(names),
        max_terms=max_terms,
        max_degree=2,
        penalty=penalty,
    )


def rbf_factory(
    names: Sequence[str], n_train: int, kernel: str = "multiquadric"
) -> ModelFactory:
    return lambda: RbfModel(variable_names=list(names), kernel=kernel)


def standard_factories(
    names: Sequence[str], n_train: int
) -> Dict[str, ModelFactory]:
    """The paper's three model families, keyed by display name."""
    return {
        "linear": linear_factory(names, n_train),
        "mars": mars_factory(names, n_train),
        "rbf-rt": rbf_factory(names, n_train),
    }

"""Named configurations and design-point plumbing."""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.opt.flags import CompilerConfig, O2, O3
from repro.sim.config import AGGRESSIVE, CONSTRAINED, MicroarchConfig, TYPICAL
from repro.space import COMPILER_VARIABLE_NAMES, MICROARCH_VARIABLE_NAMES

#: The paper's Table 5 microarchitectural configurations.
TABLE5_CONFIGS: Dict[str, MicroarchConfig] = {
    "constrained": CONSTRAINED,
    "typical": TYPICAL,
    "aggressive": AGGRESSIVE,
}


def split_point(
    point: Mapping[str, float],
) -> Tuple[CompilerConfig, MicroarchConfig]:
    """Split a 25-variable design point into the two config objects."""
    return CompilerConfig.from_point(point), MicroarchConfig.from_point(point)


def microarch_point(config: MicroarchConfig) -> Dict[str, float]:
    """The Table 2 part of a design point for a given configuration."""
    return config.to_point()


def joint_point(
    compiler: CompilerConfig, microarch: MicroarchConfig
) -> Dict[str, float]:
    """Full 25-variable point from the two config objects."""
    point = compiler.to_point()
    point.update(microarch.to_point())
    return point

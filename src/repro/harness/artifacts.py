"""On-disk content-addressed store for compiled binaries and traces.

The expensive substrate work of a measurement -- compiling the workload
at one compiler configuration and running it functionally to get the
dynamic trace -- is a pure function of (workload source, input, compiler
key, compiler version, issue width).  This store shares that work across
*processes*: N pool workers measuring points that need the same binary
compile it once, and every later engine on the same cache directory
skips both the compile and the functional run entirely.

Layout (under ``<cache_dir>/artifacts/``):

* ``bin/<key>.pkl`` -- the pickled :class:`Executable` for one compiler
  key digest.  The key covers the workload-source fingerprint and
  ``COMPILER_VERSION``, so editing a workload or the compiler can never
  resurrect a stale binary.
* ``trace/<static_digest>.pkl`` -- the functional outcome (checksum,
  instruction count, packed trace arrays), keyed on the *binary's*
  content digest.  Distinct flag settings that emit identical machine
  code -- the dominant case in one-factor screens -- share one stored
  trace, because the trace is a pure function of the executable.

Writes are atomic (``tempfile`` + ``os.replace``) and need no lock:
files are content-addressed, so concurrent writers of the same key
write identical bytes and either replacement is correct.  Reads are
tolerant -- any unpicklable/corrupt file reads as a miss.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.codegen.linker import Executable
from repro.obs import counter
from repro.sim.func import FunctionalResult
from repro.sim.tracepack import PackedTrace, as_packed, static_digest

BINARY_HITS = counter("measure.artifacts.binary_hits")
BINARY_MISSES = counter("measure.artifacts.binary_misses")
TRACE_HITS = counter("measure.artifacts.trace_hits")
TRACE_MISSES = counter("measure.artifacts.trace_misses")

#: Bump when the stored payload layout changes.
ARTIFACT_VERSION = 1


class ArtifactStore:
    """Binary + trace artifact cache rooted at one directory."""

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        self._bin_dir = self.root / "bin"
        self._trace_dir = self.root / "trace"

    # ------------------------------------------------------------------
    def _write_atomic(self, path: Path, payload: object) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _read(self, path: Path) -> Optional[dict]:
        try:
            with open(path, "rb") as f:
                payload = pickle.load(f)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != ARTIFACT_VERSION
        ):
            return None
        return payload

    # ------------------------------------------------------------------
    def load_binary(self, key: str) -> Optional[Executable]:
        payload = self._read(self._bin_dir / f"{key}.pkl")
        if payload is None:
            BINARY_MISSES.inc()
            return None
        exe = payload.get("exe")
        if not isinstance(exe, Executable):
            BINARY_MISSES.inc()
            return None
        BINARY_HITS.inc()
        return exe

    def store_binary(self, key: str, exe: Executable) -> None:
        # Strip the memoized per-trace tables before pickling: they are
        # session-local (keyed by object identity) and can be huge.
        tables = exe.__dict__.pop("_repro_trace_tables", None)
        try:
            self._write_atomic(
                self._bin_dir / f"{key}.pkl",
                {"version": ARTIFACT_VERSION, "exe": exe},
            )
        finally:
            if tables is not None:
                exe._repro_trace_tables = tables  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def load_trace(self, exe: Executable) -> Optional[FunctionalResult]:
        """The stored functional outcome for this exact binary, if any."""
        payload = self._read(
            self._trace_dir / f"{static_digest(exe)}.pkl"
        )
        if payload is None:
            TRACE_MISSES.inc()
            return None
        try:
            n = int(payload["n"])
            pcs = np.frombuffer(payload["pcs"], dtype=np.int64)
            eas = np.frombuffer(payload["eas"], dtype=np.int64)
            if pcs.shape[0] != n or eas.shape[0] != n:
                TRACE_MISSES.inc()
                return None
            result = FunctionalResult(
                return_value=int(payload["return_value"]),
                instruction_count=int(payload["instruction_count"]),
                trace=PackedTrace(pcs.copy(), eas.copy()),
            )
        except (KeyError, ValueError, TypeError):
            TRACE_MISSES.inc()
            return None
        TRACE_HITS.inc()
        return result

    def store_trace(self, exe: Executable, functional: FunctionalResult) -> None:
        if functional.trace is None:
            return
        packed = as_packed(functional.trace)
        self._write_atomic(
            self._trace_dir / f"{static_digest(exe)}.pkl",
            {
                "version": ARTIFACT_VERSION,
                "n": len(packed),
                "pcs": packed.pcs.tobytes(),
                "eas": packed.eas.tobytes(),
                "return_value": functional.return_value,
                "instruction_count": functional.instruction_count,
            },
        )

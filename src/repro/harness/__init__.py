"""Experiment harness: glue between the substrate and the modeling core.

:mod:`repro.harness.measure` is the oracle -- "compile the workload at
these Table 1 settings, simulate it at these Table 2 settings, return
cycles" -- with trace and measurement caches (plus an optional on-disk
cache so the benchmark suite can share measurements across runs).

:mod:`repro.harness.experiments` implements one driver per table/figure
of the paper's evaluation; :mod:`repro.harness.report` renders
paper-vs-measured text tables.
"""

from repro.harness.measure import (
    Measurement,
    MeasurementEngine,
    default_engine,
)
from repro.harness.configs import (
    TABLE5_CONFIGS,
    microarch_point,
    split_point,
)

__all__ = [
    "Measurement",
    "MeasurementEngine",
    "default_engine",
    "TABLE5_CONFIGS",
    "microarch_point",
    "split_point",
]

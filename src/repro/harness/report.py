"""Text-table rendering for paper-vs-measured reporting."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.harness import paper_values
from repro.harness.experiments.accuracy import ScatterResult, Table3Result
from repro.harness.experiments.search import SearchOutcome, SpeedupRow
from repro.pipeline import LearningCurvePoint


def table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_table3(result: Table3Result) -> str:
    """Table 3: measured errors side by side with the paper's."""
    headers = [
        "benchmark",
        "linear",
        "mars",
        "rbf-rt",
        "| paper:linear",
        "mars",
        "rbf-rt",
    ]
    rows = []
    for name in result.errors:
        ours = result.errors[name]
        paper = paper_values.TABLE3.get(name, {})
        rows.append(
            [
                name,
                f"{ours['linear']:.2f}",
                f"{ours['mars']:.2f}",
                f"{ours['rbf-rt']:.2f}",
                f"| {paper.get('linear', float('nan')):.2f}",
                f"{paper.get('mars', float('nan')):.2f}",
                f"{paper.get('rbf-rt', float('nan')):.2f}",
            ]
        )
    avg = result.averages
    pavg = paper_values.TABLE3_AVERAGE
    rows.append(
        [
            "Average",
            f"{avg['linear']:.2f}",
            f"{avg['mars']:.2f}",
            f"{avg['rbf-rt']:.2f}",
            f"| {pavg['linear']:.2f}",
            f"{pavg['mars']:.2f}",
            f"{pavg['rbf-rt']:.2f}",
        ]
    )
    note = (
        "model ranking (rbf <= mars <= linear): "
        + ("REPRODUCED" if result.ranking_ok() else "NOT reproduced")
    )
    return (
        "Table 3 -- average % prediction error (ours | paper)\n"
        + table(headers, rows)
        + "\n"
        + note
    )


def render_learning_curves(
    curves: Mapping[str, List[LearningCurvePoint]]
) -> str:
    """Figure 5 as text: error (mean±std) per training size per program."""
    lines = ["Figure 5 -- RBF test error vs training-set size"]
    for name, points in curves.items():
        series = "  ".join(
            f"{p.n_samples}:{p.mean_error:.1f}±{p.std_error:.1f}"
            for p in points
        )
        monotone = (
            points[-1].mean_error <= points[0].mean_error
            if len(points) >= 2
            else True
        )
        tag = "(improves with samples)" if monotone else "(NON-monotone)"
        lines.append(f"  {name:8s} {series}  {tag}")
    return "\n".join(lines)


def render_scatter(results: Sequence[ScatterResult]) -> str:
    lines = ["Figure 6 -- actual vs predicted execution time (RBF)"]
    for r in results:
        lines.append(
            f"  {r.workload:8s} r2={r.r2:.3f}  "
            f"max |error|={r.max_abs_pct_error:.1f}%  n={len(r.actual)}"
        )
    return "\n".join(lines)


def render_mars_effects(effects_by_workload, top: int = 10) -> str:
    lines = [
        "Table 4 -- key MARS effect coefficients "
        "(coded scale; negative = bigger/on is faster)"
    ]
    for name, eff in effects_by_workload.items():
        micro = eff.microarch_magnitude
        comp = eff.compiler_magnitude
        lines.append(
            f"  {name}: |microarch effects|={micro:,.0f} "
            f"|compiler effects|={comp:,.0f}"
        )
        for term, value in eff.top(top):
            lines.append(f"      {value:+14,.0f}  {term}")
    return "\n".join(lines)


def render_search_settings(
    searches: Mapping[str, Mapping[str, SearchOutcome]]
) -> str:
    """Table 6: flag/heuristic settings per program and configuration."""
    headers = ["benchmark", "config", "flags(1-9)", "heuristics(10-14)"]
    rows = []
    for workload, per_config in searches.items():
        for config_name, outcome in per_config.items():
            s = outcome.best_settings
            flags = "".join(
                str(int(getattr(s, n))) for n in s._FLAG_NAMES
            )
            heur = "/".join(
                str(getattr(s, n)) for n in s._HEURISTIC_NAMES
            )
            rows.append([workload, config_name, flags, heur])
    return "Table 6 -- model-prescribed settings\n" + table(headers, rows)


def render_speedups(rows: Sequence[SpeedupRow], title: str) -> str:
    headers = [
        "benchmark",
        "config",
        "O3 vs O2 %",
        "pred %",
        "actual %",
    ]
    body = []
    for r in rows:
        body.append(
            [
                r.workload,
                r.config_name,
                f"{r.o3_speedup_pct:+.2f}",
                f"{r.predicted_speedup_pct:+.2f}",
                f"{r.actual_speedup_pct:+.2f}",
            ]
        )
    actuals = [r.actual_speedup_pct for r in rows]
    avg = sum(actuals) / len(actuals) if actuals else 0.0
    best = max(actuals) if actuals else 0.0
    note = (
        f"average actual speedup {avg:+.2f}% (paper: "
        f"{paper_values.FIG7_AVERAGE_SPEEDUP:+.1f}%), max {best:+.2f}% "
        f"(paper: {paper_values.FIG7_MAX_SPEEDUP:+.1f}%)"
    )
    return f"{title}\n" + table(headers, body) + "\n" + note

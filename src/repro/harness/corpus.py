"""Measurement corpus: the shared train/test data behind the experiments.

The corpus holds, per workload, a D-optimal training design (grown by
successive augmentation so its prefixes are themselves D-optimal-ish --
which is what the Figure 5 learning curves slice) and an independent
random test design, with measured execution times for both.

Experiment scale follows the ``REPRO_SCALE`` environment variable
(default 1.0): the paper's 400/100 train/test corresponds roughly to
``REPRO_SCALE=3.5``; the default keeps a full benchmark run tractable on
one core.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.doe import augment_design, d_optimal_design, random_candidates
from repro.harness.measure import MeasurementEngine, default_engine
from repro.space import ParameterSpace, full_space
from repro.workloads import workload_names


def scale_factor() -> float:
    try:
        return float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        return 1.0


def scaled(n: int, minimum: int = 8) -> int:
    return max(minimum, int(round(n * scale_factor())))


@dataclass
class WorkloadData:
    """Measured design data for one workload."""

    workload: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray


@dataclass
class Corpus:
    space: ParameterSpace
    data: Dict[str, WorkloadData]
    #: Sizes at which the training design was augmented (nested prefixes).
    growth_steps: List[int]


def build_design(
    space: ParameterSpace,
    n_train: int,
    rng: np.random.Generator,
    n_candidates: int = 600,
    initial: int = 30,
    step: int = 25,
) -> "tuple[np.ndarray, List[int]]":
    """A D-optimal design grown by augmentation (nested prefixes)."""
    candidates = random_candidates(space, n_candidates, rng)
    first = min(initial, n_train)
    design = d_optimal_design(candidates, first, rng).design
    steps = [first]
    while design.shape[0] < n_train:
        add = min(step, n_train - design.shape[0])
        extra = augment_design(design, candidates, add, rng)
        design = np.vstack([design, extra.design])
        steps.append(design.shape[0])
    return design, steps


def build_corpus(
    workloads: Optional[Sequence[str]] = None,
    n_train: Optional[int] = None,
    n_test: Optional[int] = None,
    seed: int = 20070313,
    engine: Optional[MeasurementEngine] = None,
    input_name: str = "train",
    progress: bool = False,
) -> Corpus:
    """Measure the experiment corpus (heavily cached across calls)."""
    engine = engine or default_engine()
    space = full_space()
    rng = np.random.default_rng(seed)
    names = list(workloads) if workloads else workload_names()
    n_train = n_train if n_train is not None else scaled(110)
    n_test = n_test if n_test is not None else scaled(35)

    x_train, steps = build_design(space, n_train, rng)
    x_test = random_candidates(space, n_test, rng)

    train_points = [space.decode(row) for row in x_train]
    test_points = [space.decode(row) for row in x_test]
    data: Dict[str, WorkloadData] = {}
    # Per-workload flush inside the loop keeps partial progress on disk;
    # the finally covers a crash or Ctrl-C mid-workload (results already
    # collected from the pool are in the engine's cache and survive).
    try:
        for name in names:
            y_train = np.asarray(
                engine.cycles_batch(name, train_points, input_name)
            )
            if progress:
                print(f"  {name}: measured {x_train.shape[0]} train")
            y_test = np.asarray(
                engine.cycles_batch(name, test_points, input_name)
            )
            data[name] = WorkloadData(name, x_train, y_train, x_test, y_test)
            engine.save()
    finally:
        engine.save()
    return Corpus(space=space, data=data, growth_steps=steps)

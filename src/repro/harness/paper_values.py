"""Reference numbers from the paper, for paper-vs-measured reporting.

These are transcription of the published tables; the benchmark harness
prints them next to this reproduction's measurements.  Substrate-level
substitutions (synthetic workloads, reimplemented simulator) mean the
*shape* -- orderings, signs, rough magnitudes -- is the reproduction
target, not the absolute values.
"""

#: Table 3: average % prediction error per program and technique.
TABLE3 = {
    "gzip": {"linear": 4.44, "mars": 3.17, "rbf-rt": 2.90},
    "vpr": {"linear": 7.69, "mars": 3.78, "rbf-rt": 1.84},
    "mesa": {"linear": 20.15, "mars": 8.78, "rbf-rt": 7.31},
    "art": {"linear": 26.44, "mars": 14.20, "rbf-rt": 4.63},
    "mcf": {"linear": 11.25, "mars": 4.85, "rbf-rt": 3.99},
    "vortex": {"linear": 9.69, "mars": 6.95, "rbf-rt": 5.15},
    "bzip2": {"linear": 4.81, "mars": 2.80, "rbf-rt": 3.02},
}
TABLE3_AVERAGE = {"linear": 12.07, "mars": 6.35, "rbf-rt": 4.13}

#: Fig. 7 headline numbers: speedup of model-searched settings over O2.
FIG7_AVERAGE_SPEEDUP = 9.5
FIG7_MAX_SPEEDUP = 19.0
#: O3 over O2 on the typical configuration: an average *slowdown*.
FIG7_O3_TYPICAL_SLOWDOWN = -2.0

#: Table 7: actual % speedup over O2 in the PGO scenario
#: (model built on train input, applied to ref runs).
TABLE7 = {
    "gzip": {"constrained": 2.22, "typical": 6.24, "aggressive": 3.12},
    "vpr": {"constrained": 8.17, "typical": 5.23, "aggressive": 4.19},
    "mesa": {"constrained": -1.89, "typical": -4.76, "aggressive": 26.54},
    "art": {"constrained": 16.78, "typical": 18.07, "aggressive": -0.01},
    "mcf": {"constrained": 17.37, "typical": 21.40, "aggressive": 2.43},
    "vortex": {"constrained": -1.38, "typical": -13.45, "aggressive": -8.32},
    "bzip2": {"constrained": -0.20, "typical": -2.78, "aggressive": 1.88},
}
TABLE7_AVERAGE = {"constrained": 5.87, "typical": 4.28, "aggressive": 4.26}

#: Table 4 qualitative facts the reproduction should echo.
TABLE4_FACTS = [
    "microarchitectural terms dominate compiler terms",
    "omit-frame-pointer and inlining are the strongest compiler effects",
    "loop-optimize can have a positive (harmful) coefficient",
    "ul2 size and memory latency dominate mcf, with a negative "
    "ul2*memlat interaction",
    "no two programs share the same significant-optimization set",
]

#: Section 5: SMARTS sampling accuracy claim.
SMARTS_TARGET_ERROR = 1.0  # percent
SMARTS_CONFIDENCE = 99.7  # percent

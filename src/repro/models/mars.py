"""Multivariate Adaptive Regression Splines (paper Section 4.2).

MARS [Friedman 1991] recursively partitions the domain with products of
hinge functions ``max(0, x_v - t)`` / ``max(0, t - x_v)`` and fits the
response as a linear combination of these basis functions (Equation 6).

The implementation follows the classical two-phase algorithm:

* **forward pass** -- greedily add the reflected hinge pair (parent basis
  x variable x knot) that most reduces training SSE, with candidate
  scoring vectorized over knots via orthogonalization against the current
  basis;
* **backward pass** -- prune basis functions one at a time, keeping the
  subset minimizing Generalized Cross Validation.

The fitted model exposes an ANOVA decomposition (basis functions grouped
by the variable set they involve) and Table-4-style *effect coefficients*:
for each variable or interaction present in the model, half the change in
predicted response between its low and high corners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.base import RegressionModel
from repro.models.metrics import gcv


@dataclass(frozen=True)
class Hinge:
    """One hinge factor ``max(0, sign * (x[var] - knot))``."""

    var: int
    knot: float
    sign: int  # +1 or -1

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, self.sign * (x[:, self.var] - self.knot))


@dataclass(frozen=True)
class MarsBasis:
    """A product of hinge factors; the empty product is the intercept."""

    hinges: Tuple[Hinge, ...] = ()

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        col = np.ones(x.shape[0])
        for h in self.hinges:
            col = col * h.evaluate(x)
        return col

    @property
    def variables(self) -> FrozenSet[int]:
        return frozenset(h.var for h in self.hinges)

    @property
    def degree(self) -> int:
        return len(self.hinges)

    def describe(self, names: Sequence[str]) -> str:
        if not self.hinges:
            return "(intercept)"
        parts = []
        for h in self.hinges:
            if h.sign > 0:
                parts.append(f"max(0, {names[h.var]} - {h.knot:g})")
            else:
                parts.append(f"max(0, {h.knot:g} - {names[h.var]})")
        return " * ".join(parts)


def _pair_gain(
    c_perp: np.ndarray, residual: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """SSE reduction of jointly adding each (plus, minus) column pair.

    ``c_perp`` has shape (n, 2K): columns 2k and 2k+1 are a reflected pair,
    already orthogonalized against the current basis.  Returns the gain per
    pair and per-column squared norms (for degeneracy checks).
    """
    n, two_k = c_perp.shape
    k = two_k // 2
    a = c_perp[:, 0::2]
    b = c_perp[:, 1::2]
    aa = np.einsum("ij,ij->j", a, a)
    bb = np.einsum("ij,ij->j", b, b)
    ab = np.einsum("ij,ij->j", a, b)
    ar = a.T @ residual
    br = b.T @ residual
    det = aa * bb - ab * ab
    gains = np.empty(k)
    eps = 1e-10
    for i in range(k):
        if det[i] > eps * max(aa[i] * bb[i], eps):
            # Joint 2-column projection gain.
            inv = np.array([[bb[i], -ab[i]], [-ab[i], aa[i]]]) / det[i]
            v = np.array([ar[i], br[i]])
            gains[i] = float(v @ inv @ v)
        elif aa[i] > eps or bb[i] > eps:
            # Degenerate pair: score the better single column.
            ga = ar[i] ** 2 / aa[i] if aa[i] > eps else 0.0
            gb = br[i] ** 2 / bb[i] if bb[i] > eps else 0.0
            gains[i] = max(ga, gb)
        else:
            gains[i] = -np.inf
    col_norms = np.empty(two_k)
    col_norms[0::2] = aa
    col_norms[1::2] = bb
    return gains, col_norms


class MarsModel(RegressionModel):
    """MARS with forward growth and GCV backward pruning.

    Parameters
    ----------
    max_terms:
        Maximum number of basis functions grown in the forward pass
        (including the intercept).
    max_degree:
        Maximum interaction order of a basis function (2 reproduces the
        paper's two-factor-interaction focus).
    max_knots:
        Maximum number of candidate knots per (parent, variable) pair;
        knots are taken at quantiles of the active data.
    penalty:
        GCV complexity charge per non-constant basis function (Friedman
        recommends 2-4; 3 is customary when interactions are allowed).
    """

    def __init__(
        self,
        variable_names: Optional[Sequence[str]] = None,
        max_terms: int = 41,
        max_degree: int = 2,
        max_knots: int = 15,
        penalty: float = 3.0,
    ):
        super().__init__(variable_names)
        self.max_terms = max_terms
        self.max_degree = max_degree
        self.max_knots = max_knots
        self.penalty = penalty
        self.basis: List[MarsBasis] = []
        self.coef: Optional[np.ndarray] = None
        self.gcv_score: Optional[float] = None
        self._forward_basis: List[MarsBasis] = []

    # ------------------------------------------------------------------
    # Forward pass
    # ------------------------------------------------------------------
    def _candidate_knots(
        self, x_col: np.ndarray, active: np.ndarray
    ) -> np.ndarray:
        values = np.unique(x_col[active]) if active.any() else np.unique(x_col)
        if values.shape[0] < 2:
            return np.empty(0)
        # Knots at interior data values; cap via quantile subsampling.
        knots = values[:-1] if values.shape[0] > 2 else values[:1]
        if knots.shape[0] > self.max_knots:
            idx = np.linspace(0, knots.shape[0] - 1, self.max_knots).astype(int)
            knots = knots[idx]
        return knots

    def _forward(self, x: np.ndarray, y: np.ndarray) -> List[MarsBasis]:
        n, k = x.shape
        basis = [MarsBasis()]
        b_cols = [np.ones(n)]
        # Orthonormal basis of the fitted column space + residual.
        q = np.ones((n, 1)) / np.sqrt(n)
        residual = y - q[:, 0] * (q[:, 0] @ y)
        sse_now = float(residual @ residual)

        while len(basis) + 2 <= self.max_terms:
            best = None  # (gain, parent_idx, var, knot)
            for parent_idx, parent in enumerate(basis):
                if parent.degree >= self.max_degree:
                    continue
                parent_col = b_cols[parent_idx]
                active = parent_col > 0
                if active.sum() < 3:
                    continue
                for var in range(k):
                    if var in parent.variables:
                        continue
                    knots = self._candidate_knots(x[:, var], active)
                    if knots.shape[0] == 0:
                        continue
                    xv = x[:, var][:, None]
                    plus = parent_col[:, None] * np.maximum(0.0, xv - knots)
                    minus = parent_col[:, None] * np.maximum(0.0, knots - xv)
                    cand = np.empty((n, 2 * knots.shape[0]))
                    cand[:, 0::2] = plus
                    cand[:, 1::2] = minus
                    c_perp = cand - q @ (q.T @ cand)
                    gains, _ = _pair_gain(c_perp, residual)
                    j = int(np.argmax(gains))
                    if np.isfinite(gains[j]) and (
                        best is None or gains[j] > best[0]
                    ):
                        best = (float(gains[j]), parent_idx, var, float(knots[j]))
            if best is None:
                break
            gain, parent_idx, var, knot = best
            if gain <= 1e-10 * max(sse_now, 1e-10):
                break
            parent = basis[parent_idx]
            for sign in (+1, -1):
                new_basis = MarsBasis(parent.hinges + (Hinge(var, knot, sign),))
                col = new_basis.evaluate(x)
                c_perp = col - q @ (q.T @ col)
                norm = np.linalg.norm(c_perp)
                if norm < 1e-8:
                    continue  # degenerate (e.g. hinge inactive everywhere)
                basis.append(new_basis)
                b_cols.append(col)
                q_new = c_perp / norm
                residual = residual - q_new * (q_new @ residual)
                q = np.column_stack([q, q_new])
            sse_now = float(residual @ residual)
        return basis

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def _fit_subset(
        self, b: np.ndarray, y: np.ndarray, keep: List[int]
    ) -> Tuple[np.ndarray, float]:
        cols = b[:, keep]
        beta, *_ = np.linalg.lstsq(cols, y, rcond=None)
        resid = y - cols @ beta
        return beta, float(resid @ resid)

    def _effective_params(self, n_terms: int) -> float:
        return n_terms + self.penalty * max(0, n_terms - 1)

    def _backward(
        self, x: np.ndarray, y: np.ndarray, basis: List[MarsBasis]
    ) -> Tuple[List[MarsBasis], np.ndarray, float]:
        n = x.shape[0]
        b = np.column_stack([bf.evaluate(x) for bf in basis])
        keep = list(range(len(basis)))
        beta, sse_val = self._fit_subset(b, y, keep)
        best = (
            gcv(sse_val, n, self._effective_params(len(keep))),
            list(keep),
            beta,
        )
        current = list(keep)
        while len(current) > 1:
            candidates = []
            for drop in current:
                if drop == 0:
                    continue  # keep the intercept
                trial = [i for i in current if i != drop]
                beta_t, sse_t = self._fit_subset(b, y, trial)
                score = gcv(sse_t, n, self._effective_params(len(trial)))
                candidates.append((score, trial, beta_t))
            if not candidates:
                break
            candidates.sort(key=lambda c: c[0])
            current = candidates[0][1]
            if candidates[0][0] < best[0]:
                best = candidates[0]
        score, keep, beta = best
        return [basis[i] for i in keep], beta, score

    # ------------------------------------------------------------------
    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        forward_basis = self._forward(x, y)
        self._forward_basis = forward_basis
        self.basis, self.coef, self.gcv_score = self._backward(
            x, y, forward_basis
        )

    def _predict(self, x: np.ndarray) -> np.ndarray:
        b = np.column_stack([bf.evaluate(x) for bf in self.basis])
        return b @ self.coef

    # ------------------------------------------------------------------
    # Interpretation (Section 6.2)
    # ------------------------------------------------------------------
    @property
    def n_terms(self) -> int:
        return len(self.basis)

    def describe(self) -> str:
        names = self.variable_names or [
            f"x{i}" for i in range(self._n_features)
        ]
        lines = []
        for bf, c in zip(self.basis, self.coef):
            lines.append(f"{c:+12.4f} * {bf.describe(names)}")
        return "\n".join(lines)

    def anova_components(self) -> Dict[FrozenSet[int], List[Tuple[MarsBasis, float]]]:
        """Basis functions grouped by the variable set they involve."""
        groups: Dict[FrozenSet[int], List[Tuple[MarsBasis, float]]] = {}
        for bf, c in zip(self.basis, self.coef):
            groups.setdefault(bf.variables, []).append((bf, float(c)))
        return groups

    def _component_value(
        self, group: List[Tuple[MarsBasis, float]], point: Dict[int, float]
    ) -> float:
        total = 0.0
        for bf, c in group:
            val = c
            for h in bf.hinges:
                val *= max(0.0, h.sign * (point[h.var] - h.knot))
            total += val
        return total

    def effect_coefficients(self) -> Dict[Tuple[int, ...], float]:
        """Table-4-style coefficients from the ANOVA decomposition.

        For a main effect i the coefficient is half the change in the
        component function g_i between the low (-1) and high (+1) coded
        corner; for a pair (i, j) it is the standard 2^2 factorial
        interaction contrast ``(g(++) - g(+-) - g(-+) + g(--)) / 4``.
        These reduce to the usual regression coefficients when the
        components are linear.
        """
        effects: Dict[Tuple[int, ...], float] = {}
        for vars_set, group in self.anova_components().items():
            vs = tuple(sorted(vars_set))
            if len(vs) == 0:
                effects[()] = self._component_value(group, {})
            elif len(vs) == 1:
                i = vs[0]
                hi = self._component_value(group, {i: 1.0})
                lo = self._component_value(group, {i: -1.0})
                effects[vs] = (hi - lo) / 2.0
            elif len(vs) == 2:
                i, j = vs
                pp = self._component_value(group, {i: 1.0, j: 1.0})
                pm = self._component_value(group, {i: 1.0, j: -1.0})
                mp = self._component_value(group, {i: -1.0, j: 1.0})
                mm = self._component_value(group, {i: -1.0, j: -1.0})
                effects[vs] = (pp - pm - mp + mm) / 4.0
            else:
                # Higher-order components: report the full-range contrast
                # against the all-low corner, scaled by 2^degree.
                hi = self._component_value(group, {v: 1.0 for v in vs})
                lo = self._component_value(group, {v: -1.0 for v in vs})
                effects[vs] = (hi - lo) / (2.0 ** len(vs))
        return effects

    def named_effects(self) -> Dict[str, float]:
        """Effect coefficients keyed by human-readable term names."""
        names = self.variable_names or [
            f"x{i}" for i in range(self._n_features)
        ]
        out: Dict[str, float] = {}
        for vs, value in self.effect_coefficients().items():
            if not vs:
                out["(intercept)"] = value
            else:
                out[" * ".join(names[v] for v in vs)] = value
        return out

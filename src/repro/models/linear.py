"""Linear regression models (paper Section 4.1).

The model is ``y = b0 + sum b_i x_i (+ sum b_ij x_i x_j)`` on the coded
scale; coefficients are least-squares estimates (Equation 3).  Because a
full two-factor-interaction expansion of the 25-variable space has 326
terms, the model supports BIC-guided greedy forward selection as its
overfitting control (Section 4.4); the default fits all terms with a
ridge fallback when the system is ill-conditioned.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.doe.model_matrix import ModelMatrixBuilder
from repro.models.base import RegressionModel
from repro.models.metrics import bic


def _forward_select(
    f: np.ndarray, y: np.ndarray, patience: int = 3
) -> List[int]:
    """Greedy forward selection of model-matrix columns minimizing BIC.

    Maintains an orthonormal basis Q of the selected columns; a candidate
    column's SSE reduction is ``(c_perp . r)^2 / ||c_perp||^2`` where
    ``c_perp`` is the candidate orthogonalized against Q and ``r`` the
    current residual.  Selection stops when BIC has not improved for
    ``patience`` consecutive additions.
    """
    n, p = f.shape
    norms = np.linalg.norm(f, axis=0)
    selected: List[int] = []
    q_cols: List[np.ndarray] = []
    residual = y.astype(float).copy()
    remaining = set(range(p))

    # Always include the intercept column (index 0) first if present.
    f_perp = f.copy()

    best_bic = np.inf
    best_len = 0
    stall = 0
    sse_now = float(residual @ residual)
    order: List[int] = []

    while remaining and len(selected) < min(n - 2, p):
        cols = np.fromiter(remaining, dtype=int)
        c = f_perp[:, cols]
        c_norm2 = np.einsum("ij,ij->j", c, c)
        proj = c.T @ residual
        with np.errstate(divide="ignore", invalid="ignore"):
            gains = np.where(c_norm2 > 1e-12, proj * proj / c_norm2, -np.inf)
        best_local = int(np.argmax(gains))
        j = int(cols[best_local])
        if not np.isfinite(gains[best_local]) or gains[best_local] <= 0:
            break
        # Accept the column: orthonormalize it and deflate residual/others.
        q = f_perp[:, j] / np.sqrt(c_norm2[best_local])
        residual = residual - q * (q @ residual)
        f_perp = f_perp - np.outer(q, q @ f_perp)
        selected.append(j)
        remaining.discard(j)
        order.append(j)

        sse_now = float(residual @ residual)
        score = bic(sse_now, n, len(selected))
        if score < best_bic - 1e-12:
            best_bic = score
            best_len = len(selected)
            stall = 0
        else:
            stall += 1
            if stall >= patience:
                break
    return order[:best_len] if best_len else order[:1]


class LinearModel(RegressionModel):
    """Global parametric linear regression on the coded scale.

    Parameters
    ----------
    interactions:
        Include all two-factor interaction terms (Equation 2).
    quadratic:
        Include squared terms (off by default, matching the paper).
    selection:
        ``"none"`` fits every term; ``"bic"`` performs greedy forward
        selection with the BIC stopping rule.
    ridge:
        Tikhonov regularization added when solving the normal equations;
        only material when the expansion is (near-)rank-deficient.
    """

    def __init__(
        self,
        variable_names: Optional[Sequence[str]] = None,
        interactions: bool = True,
        quadratic: bool = False,
        selection: str = "none",
        ridge: float = 1e-8,
    ):
        super().__init__(variable_names)
        if selection not in ("none", "bic"):
            raise ValueError(f"unknown selection mode {selection!r}")
        self.interactions = interactions
        self.quadratic = quadratic
        self.selection = selection
        self.ridge = ridge
        self._builder: Optional[ModelMatrixBuilder] = None
        self._active: Optional[np.ndarray] = None
        self._beta: Optional[np.ndarray] = None
        self._sse: Optional[float] = None

    # ------------------------------------------------------------------
    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        self._builder = ModelMatrixBuilder(
            x.shape[1],
            interactions=self.interactions,
            quadratic=self.quadratic,
        )
        f = self._builder.expand(x)
        if self.selection == "bic":
            active = _forward_select(f, y)
            if 0 not in active:
                active = [0] + active
            self._active = np.array(sorted(active), dtype=int)
        else:
            self._active = np.arange(f.shape[1])
        f_active = f[:, self._active]
        # Ridge-stabilized normal equations (exact OLS when well-posed).
        gram = f_active.T @ f_active
        gram[np.diag_indices_from(gram)] += self.ridge
        self._beta = np.linalg.solve(gram, f_active.T @ y)
        self._sse = float(np.sum((f_active @ self._beta - y) ** 2))

    def _predict(self, x: np.ndarray) -> np.ndarray:
        f = self._builder.expand(x)
        return f[:, self._active] @ self._beta

    # ------------------------------------------------------------------
    @property
    def n_params(self) -> int:
        return int(self._active.shape[0])

    @property
    def training_sse(self) -> float:
        if self._sse is None:
            raise RuntimeError("model is not fitted")
        return self._sse

    def coefficients(self) -> Dict[str, float]:
        """Term name -> partial regression coefficient (coded scale)."""
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        names = self._builder.term_names(
            self.variable_names
            or [f"x{i}" for i in range(self._n_features)]
        )
        return {
            names[idx]: float(b)
            for idx, b in zip(self._active, self._beta)
        }

    def significant_terms(self, top: int = 20) -> List[str]:
        """The ``top`` non-intercept terms by coefficient magnitude."""
        coefs = self.coefficients()
        coefs.pop("(intercept)", None)
        ranked = sorted(coefs.items(), key=lambda kv: -abs(kv[1]))
        return [name for name, _ in ranked[:top]]

"""Empirical modeling techniques (paper Section 4).

Three regression families relate the coded design vector to the response:

* :class:`LinearModel` -- global parametric least squares with main effects
  and two-factor interactions, BIC-guided complexity control (Section 4.1);
* :class:`MarsModel` -- Multivariate Adaptive Regression Splines: recursive
  partitioning with q-order spline (hinge) basis functions, GCV backward
  pruning, and an interpretable ANOVA decomposition (Section 4.2);
* :class:`RbfModel` -- a radial basis function network whose neuron centers
  are chosen by a regression tree, with Gaussian or multiquadric kernels
  and BIC size selection (Section 4.3).

All models consume *coded* design matrices (``[-1, 1]`` scale, see
:mod:`repro.space`) and a response vector.
"""

from repro.models.base import RegressionModel
from repro.models.metrics import (
    sse,
    mse,
    rmse,
    r_squared,
    mean_absolute_percentage_error,
    bic,
    gcv,
    train_test_error,
)
from repro.models.linear import LinearModel
from repro.models.regression_tree import RegressionTree, TreeNode
from repro.models.mars import MarsModel, MarsBasis
from repro.models.rbf import RbfModel, KERNELS
from repro.models.validation import (
    CrossValidationResult,
    compare_models,
    k_fold_cv,
)

__all__ = [
    "RegressionModel",
    "LinearModel",
    "MarsModel",
    "MarsBasis",
    "RbfModel",
    "KERNELS",
    "RegressionTree",
    "TreeNode",
    "CrossValidationResult",
    "compare_models",
    "k_fold_cv",
    "sse",
    "mse",
    "rmse",
    "r_squared",
    "mean_absolute_percentage_error",
    "bic",
    "gcv",
    "train_test_error",
]

"""Model-adequacy metrics (paper Sections 4.4 and 6.1).

The paper reports model quality as the average percentage error in
prediction on an independent test set, and guards against overfitting with
the Bayesian Information Criterion (Equation 9) and Generalized Cross
Validation.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np


def sse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Sum of squared errors (Equation 4)."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    return float(np.sum((y_pred - y_true) ** 2))


def mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true, dtype=float)
    return sse(y_true, y_pred) / y_true.shape[0]


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return float(np.sqrt(mse(y_true, y_pred)))


def r_squared(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination."""
    y_true = np.asarray(y_true, dtype=float)
    total = float(np.sum((y_true - y_true.mean()) ** 2))
    if total == 0:
        return 1.0 if sse(y_true, y_pred) == 0 else 0.0
    return 1.0 - sse(y_true, y_pred) / total


def mean_absolute_percentage_error(
    y_true: np.ndarray, y_pred: np.ndarray
) -> float:
    """Average percentage prediction error, the paper's accuracy metric.

    Returned in percent (e.g. ``4.13`` means 4.13%).
    """
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if np.any(y_true == 0):
        raise ValueError("percentage error undefined for zero responses")
    return float(np.mean(np.abs((y_pred - y_true) / y_true)) * 100.0)


def bic(sse_value: float, n_samples: int, n_params: int) -> float:
    """Bayesian Information Criterion, Equation 9 of the paper:

        BIC = (p + (ln(p) - 1) * gamma) / (p * (p - gamma)) * SSE

    where ``p`` is the sample count and ``gamma`` the parameter count.  The
    expression grows with model complexity and is infinite when the model
    has as many parameters as samples.
    """
    p, gamma = n_samples, n_params
    if gamma >= p:
        return np.inf
    return (p + (np.log(p) - 1.0) * gamma) / (p * (p - gamma)) * sse_value


def gcv(sse_value: float, n_samples: int, effective_params: float) -> float:
    """Generalized Cross Validation score.

        GCV = (SSE / n) / (1 - C/n)^2

    ``effective_params`` (C) may exceed the raw parameter count to charge
    for adaptive basis selection (as in MARS).
    """
    n = n_samples
    if effective_params >= n:
        return np.inf
    return (sse_value / n) / (1.0 - effective_params / n) ** 2


def train_test_error(
    model_factory: Callable[[], "object"],
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
) -> Tuple[float, float]:
    """Fit a fresh model and return (train MAPE, test MAPE)."""
    model = model_factory()
    model.fit(x_train, y_train)
    return (
        mean_absolute_percentage_error(y_train, model.predict(x_train)),
        mean_absolute_percentage_error(y_test, model.predict(x_test)),
    )

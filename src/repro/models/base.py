"""Common interface for empirical models."""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

import numpy as np


class RegressionModel(abc.ABC):
    """An empirical model y = f_hat(x) fitted on coded design matrices.

    Subclasses implement :meth:`fit` and :meth:`predict`; the base class
    provides shared validation and bookkeeping.
    """

    def __init__(self, variable_names: Optional[Sequence[str]] = None):
        self.variable_names = list(variable_names) if variable_names else None
        self._fitted = False
        self._n_features: Optional[int] = None

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        """Fit implementation; receives validated 2-D x and 1-D y."""

    @abc.abstractmethod
    def _predict(self, x: np.ndarray) -> np.ndarray:
        """Predict implementation; receives validated 2-D x."""

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "RegressionModel":
        """Fit the model on a coded ``(n, k)`` design and ``(n,)`` response."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"design has {x.shape[0]} rows but response has {y.shape[0]}"
            )
        if x.shape[0] == 0:
            raise ValueError("cannot fit a model on an empty data set")
        if self.variable_names and len(self.variable_names) != x.shape[1]:
            raise ValueError(
                f"got {x.shape[1]} features but "
                f"{len(self.variable_names)} variable names"
            )
        self._n_features = x.shape[1]
        self._fit(x, y)
        self._fitted = True
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict responses at coded design points.

        Accepts an ``(n, k)`` design matrix or a single 1-D point of
        length ``k`` (promoted to ``(1, k)``); always returns an ``(n,)``
        vector.  Dimension mismatches fail here with a clear message
        rather than inside the subclass ``_predict``.
        """
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            if x.shape[0] != self._n_features:
                raise ValueError(
                    f"1-D input has length {x.shape[0]} but the model was "
                    f"fitted on {self._n_features} features; pass an "
                    f"(n, {self._n_features}) matrix to predict a batch"
                )
            x = x[None, :]
        elif x.ndim != 2:
            raise ValueError(
                f"expected a 1-D point or 2-D design matrix, got "
                f"{x.ndim}-D input of shape {x.shape}"
            )
        if x.shape[1] != self._n_features:
            raise ValueError(
                f"model was fitted on {self._n_features} features, "
                f"got {x.shape[1]}"
            )
        return self._predict(x)

    def predict_one(self, x: Sequence[float]) -> float:
        """Predict the response at a single coded design point."""
        return float(self.predict(np.asarray(x, dtype=float).ravel())[0])

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    # ------------------------------------------------------------------
    def _name_of(self, index: int) -> str:
        if self.variable_names:
            return self.variable_names[index]
        return f"x{index}"

"""Cross-validation utilities for model assessment and selection.

The paper controls overfitting with analytic criteria (BIC, GCV) because
simulations are too expensive to waste on held-out folds; when data *is*
available, k-fold cross-validation is the standard check that those
criteria picked well.  These helpers are used by the ablation benchmarks
and available to library users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.models.base import RegressionModel


@dataclass
class CrossValidationResult:
    """Per-fold and aggregate percentage errors."""

    fold_errors: List[float]

    @property
    def mean_error(self) -> float:
        return float(np.mean(self.fold_errors))

    @property
    def std_error(self) -> float:
        return float(np.std(self.fold_errors))


def k_fold_cv(
    model_factory: Callable[[], RegressionModel],
    x: np.ndarray,
    y: np.ndarray,
    k: int = 5,
    seed: int = 0,
) -> CrossValidationResult:
    """k-fold cross-validated mean absolute percentage error."""
    x = np.atleast_2d(np.asarray(x, dtype=float))
    y = np.asarray(y, dtype=float).ravel()
    n = x.shape[0]
    if k < 2 or k > n:
        raise ValueError(f"k={k} must be in [2, {n}]")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    folds = np.array_split(order, k)

    errors: List[float] = []
    for fold in folds:
        mask = np.ones(n, dtype=bool)
        mask[fold] = False
        model = model_factory()
        model.fit(x[mask], y[mask])
        pred = model.predict(x[fold])
        truth = y[fold]
        errors.append(
            float(np.mean(np.abs(pred - truth) / np.abs(truth)) * 100.0)
        )
    return CrossValidationResult(errors)


def compare_models(
    factories: Dict[str, Callable[[], RegressionModel]],
    x: np.ndarray,
    y: np.ndarray,
    k: int = 5,
    seed: int = 0,
) -> Dict[str, CrossValidationResult]:
    """Cross-validate several model families on the same folds."""
    return {
        name: k_fold_cv(factory, x, y, k=k, seed=seed)
        for name, factory in factories.items()
    }

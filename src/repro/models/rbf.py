"""Radial basis function networks (paper Section 4.3).

A three-layer network models the response as a weighted sum of localized
radial basis functions (Equation 7).  Following the paper, neuron centers
and radii are derived from a regression tree that partitions the design
space into regions of roughly uniform response: each leaf region
contributes one neuron, centered at the training point nearest the
region's centroid, with radius proportional to the region's half-diagonal.
Network size (tree leaf count) and radius scale are selected by BIC
(Section 4.4); the paper found the multiquadric kernel most accurate, so
it is the default.

``center_mode="data"`` places one neuron on every training point instead,
reproducing the overfitting pathology discussed in Section 4.4 (used by
the ablation benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.base import RegressionModel
from repro.models.metrics import bic
from repro.models.regression_tree import RegressionTree


def _gaussian(u2: np.ndarray) -> np.ndarray:
    """exp(-||x-c||^2 / 2r^2); Equation 8 (Gaussian)."""
    return np.exp(-u2)


def _multiquadric(u2: np.ndarray) -> np.ndarray:
    """sqrt(1 + ||x-c||^2 / 2r^2); Equation 8 (multiquad)."""
    return np.sqrt(1.0 + u2)


def _inverse_multiquadric(u2: np.ndarray) -> np.ndarray:
    return 1.0 / np.sqrt(1.0 + u2)


#: Available kernel functions; each maps squared scaled distance
#: ``u2 = ||x - c||^2 / (2 r^2)`` to the basis response.
KERNELS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "gaussian": _gaussian,
    "multiquadric": _multiquadric,
    "inverse_multiquadric": _inverse_multiquadric,
}


@dataclass
class _Network:
    centers: np.ndarray  # (m, k)
    radii: np.ndarray  # (m,)
    weights: np.ndarray  # (m + 1,) -- leading element is the bias w0


class RbfModel(RegressionModel):
    """RBF network with regression-tree center selection.

    Parameters
    ----------
    kernel:
        One of :data:`KERNELS`; the paper's evaluation favours
        ``"multiquadric"``.
    center_mode:
        ``"tree"`` (paper's RBF-RT) derives centers from regression-tree
        regions; ``"data"`` uses every training point as a center.
    candidate_sizes:
        Leaf counts to consider; defaults to a geometric sweep bounded by
        half the training-set size.  The size minimizing BIC wins.
    radius_scales:
        Multipliers on the region half-diagonal tried during selection.
    ridge:
        Regularization of the output-weight least squares.
    linear_tail:
        Augment the basis with the raw coded coordinates (an RBF network
        with a first-order polynomial tail), so global linear trends do
        not have to be pieced together from localized bumps.
    """

    def __init__(
        self,
        variable_names: Optional[Sequence[str]] = None,
        kernel: str = "multiquadric",
        center_mode: str = "tree",
        candidate_sizes: Optional[Sequence[int]] = None,
        radius_scales: Sequence[float] = (0.75, 1.0, 1.5),
        min_samples_leaf: int = 3,
        ridge: float = 1e-6,
        linear_tail: bool = True,
    ):
        super().__init__(variable_names)
        if kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; choose from {sorted(KERNELS)}"
            )
        if center_mode not in ("tree", "data"):
            raise ValueError(f"unknown center_mode {center_mode!r}")
        self.kernel = kernel
        self.center_mode = center_mode
        self.candidate_sizes = (
            list(candidate_sizes) if candidate_sizes else None
        )
        self.radius_scales = list(radius_scales)
        self.min_samples_leaf = min_samples_leaf
        self.ridge = ridge
        self.linear_tail = linear_tail
        self._net: Optional[_Network] = None
        self.selected_size: Optional[int] = None
        self.selected_scale: Optional[float] = None
        self.bic_score: Optional[float] = None

    # ------------------------------------------------------------------
    def _design_matrix(
        self, x: np.ndarray, centers: np.ndarray, radii: np.ndarray
    ) -> np.ndarray:
        # Squared distances, (n, m).
        d2 = (
            np.sum(x**2, axis=1)[:, None]
            - 2.0 * x @ centers.T
            + np.sum(centers**2, axis=1)[None, :]
        )
        np.maximum(d2, 0.0, out=d2)
        u2 = d2 / (2.0 * radii[None, :] ** 2)
        phi = KERNELS[self.kernel](u2)
        if self.linear_tail:
            return np.column_stack([np.ones(x.shape[0]), x, phi])
        return np.column_stack([np.ones(x.shape[0]), phi])

    def _solve_weights(
        self, phi: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, float]:
        gram = phi.T @ phi
        gram[np.diag_indices_from(gram)] += self.ridge
        w = np.linalg.solve(gram, phi.T @ y)
        resid = y - phi @ w
        return w, float(resid @ resid)

    def _tree_centers(
        self, x: np.ndarray, y: np.ndarray, n_leaves: int, scale: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        tree = RegressionTree(
            max_leaves=n_leaves, min_samples_leaf=self.min_samples_leaf
        )
        tree.fit(x, y)
        centers, radii = [], []
        for indices, lo, hi in tree.leaf_regions():
            members = x[indices]
            centroid = members.mean(axis=0)
            nearest = members[
                int(np.argmin(np.sum((members - centroid) ** 2, axis=1)))
            ]
            centers.append(nearest)
            half_diag = 0.5 * float(np.linalg.norm(hi - lo))
            radii.append(max(scale * half_diag, 1e-3))
        return np.array(centers), np.array(radii)

    def _default_sizes(self, n: int) -> List[int]:
        cap = max(2, n // 2)
        sizes = []
        size = 4
        while size <= cap:
            sizes.append(size)
            size = int(round(size * 1.5))
        if not sizes:
            sizes = [2]
        return sizes

    # ------------------------------------------------------------------
    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        n = x.shape[0]
        if self.center_mode == "data":
            # Every training point a center; radius from typical spacing.
            centers = x.copy()
            d2 = (
                np.sum(x**2, axis=1)[:, None]
                - 2.0 * x @ x.T
                + np.sum(x**2, axis=1)[None, :]
            )
            np.fill_diagonal(d2, np.inf)
            typical = float(np.sqrt(np.median(np.min(d2, axis=1))))
            radii = np.full(n, max(2.0 * typical, 1e-3))
            phi = self._design_matrix(x, centers, radii)
            w, sse_val = self._solve_weights(phi, y)
            self._net = _Network(centers, radii, w)
            self.selected_size = n
            self.selected_scale = 1.0
            self.bic_score = bic(sse_val, n, phi.shape[1])
            return

        sizes = self.candidate_sizes or self._default_sizes(n)
        best = None  # (bic, net, size, scale)
        for size in sizes:
            if size + 1 >= n:
                continue
            for scale in self.radius_scales:
                centers, radii = self._tree_centers(x, y, size, scale)
                phi = self._design_matrix(x, centers, radii)
                w, sse_val = self._solve_weights(phi, y)
                score = bic(sse_val, n, phi.shape[1])
                if best is None or score < best[0]:
                    best = (
                        score,
                        _Network(centers, radii, w),
                        centers.shape[0],
                        scale,
                    )
        if best is None:
            raise ValueError(
                f"training set of size {n} too small for any candidate "
                f"network size"
            )
        self.bic_score, self._net, self.selected_size, self.selected_scale = best

    def _predict(self, x: np.ndarray) -> np.ndarray:
        phi = self._design_matrix(x, self._net.centers, self._net.radii)
        return phi @ self._net.weights

    # ------------------------------------------------------------------
    @property
    def n_neurons(self) -> int:
        if self._net is None:
            raise RuntimeError("model is not fitted")
        return self._net.centers.shape[0]

"""CART-style regression trees.

Used both as a standalone non-parametric model and -- following Orr et
al. [12], cited in Section 4.3 -- as the mechanism that chooses the number,
centers and radii of RBF neurons: the tree recursively partitions the
design space into regions of roughly uniform response, and each region
contributes one neuron.

Trees are grown *best-first*: the leaf with the largest achievable SSE
reduction is split next, which yields a nested sequence of trees indexed
by leaf count, convenient for BIC/GCV model-size selection.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.models.base import RegressionModel


@dataclass
class TreeNode:
    """A node of the regression tree.

    Leaves have ``feature is None``; internal nodes route points with
    ``x[feature] <= threshold`` to ``left`` and the rest to ``right``.
    """

    indices: np.ndarray
    value: float
    sse: float
    depth: int
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def leaves(self) -> List["TreeNode"]:
        if self.is_leaf:
            return [self]
        return self.left.leaves() + self.right.leaves()


def _node_stats(y: np.ndarray) -> Tuple[float, float]:
    mean = float(y.mean())
    return mean, float(np.sum((y - mean) ** 2))


def _best_split(
    x: np.ndarray, y: np.ndarray, indices: np.ndarray, min_leaf: int
) -> Optional[Tuple[int, float, float]]:
    """Best (feature, threshold, sse_reduction) for a node, or None.

    For each feature, candidate thresholds are midpoints between
    consecutive distinct sorted values; the split SSE is computed with
    prefix sums in O(n) per feature.
    """
    ys = y[indices]
    n = ys.shape[0]
    if n < 2 * min_leaf:
        return None
    _, total_sse = _node_stats(ys)
    best: Optional[Tuple[int, float, float]] = None
    for feat in range(x.shape[1]):
        xs = x[indices, feat]
        order = np.argsort(xs, kind="stable")
        xs_sorted = xs[order]
        ys_sorted = ys[order]
        csum = np.cumsum(ys_sorted)
        csum2 = np.cumsum(ys_sorted**2)
        total, total2 = csum[-1], csum2[-1]
        # Split after position i (1-indexed count in left child).
        counts = np.arange(1, n)
        left_sse = csum2[:-1] - csum[:-1] ** 2 / counts
        right_counts = n - counts
        right_sum = total - csum[:-1]
        right_sse = (total2 - csum2[:-1]) - right_sum**2 / right_counts
        reduction = total_sse - (left_sse + right_sse)
        # Legal split positions: value changes and both children big enough.
        legal = (
            (xs_sorted[1:] > xs_sorted[:-1] + 1e-12)
            & (counts >= min_leaf)
            & (right_counts >= min_leaf)
        )
        if not np.any(legal):
            continue
        reduction = np.where(legal, reduction, -np.inf)
        pos = int(np.argmax(reduction))
        if reduction[pos] <= 1e-12:
            continue
        threshold = 0.5 * (xs_sorted[pos] + xs_sorted[pos + 1])
        if best is None or reduction[pos] > best[2]:
            best = (feat, float(threshold), float(reduction[pos]))
    return best


class RegressionTree(RegressionModel):
    """Best-first CART regression tree.

    Parameters
    ----------
    max_leaves:
        Upper bound on leaf count (model complexity).
    min_samples_leaf:
        Minimum training points in any leaf.
    """

    def __init__(
        self,
        variable_names=None,
        max_leaves: int = 32,
        min_samples_leaf: int = 3,
    ):
        super().__init__(variable_names)
        if max_leaves < 1:
            raise ValueError("max_leaves must be >= 1")
        self.max_leaves = max_leaves
        self.min_samples_leaf = min_samples_leaf
        self.root: Optional[TreeNode] = None
        self._x: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        self._x = x
        indices = np.arange(x.shape[0])
        mean, node_sse = _node_stats(y)
        self.root = TreeNode(indices=indices, value=mean, sse=node_sse, depth=0)
        # Best-first growth: priority queue on achievable SSE reduction.
        counter = itertools.count()  # tie-breaker, keeps heap comparable
        heap: List[Tuple[float, int, TreeNode, Tuple[int, float, float]]] = []

        def push(node: TreeNode) -> None:
            split = _best_split(x, y, node.indices, self.min_samples_leaf)
            if split is not None:
                heapq.heappush(heap, (-split[2], next(counter), node, split))

        push(self.root)
        n_leaves = 1
        while heap and n_leaves < self.max_leaves:
            _, _, node, (feat, threshold, _) = heapq.heappop(heap)
            mask = x[node.indices, feat] <= threshold
            li, ri = node.indices[mask], node.indices[~mask]
            lmean, lsse = _node_stats(y[li])
            rmean, rsse = _node_stats(y[ri])
            node.feature = feat
            node.threshold = threshold
            node.left = TreeNode(li, lmean, lsse, node.depth + 1)
            node.right = TreeNode(ri, rmean, rsse, node.depth + 1)
            node.indices = np.empty(0, dtype=int)  # free internal storage
            n_leaves += 1
            push(node.left)
            push(node.right)

    def _predict(self, x: np.ndarray) -> np.ndarray:
        out = np.empty(x.shape[0])
        for i, row in enumerate(x):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    # ------------------------------------------------------------------
    @property
    def n_leaves(self) -> int:
        if self.root is None:
            raise RuntimeError("model is not fitted")
        return len(self.root.leaves())

    def leaf_regions(self) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """For each leaf: (member indices, region lower, region upper).

        Region bounds are the hyper-rectangle implied by the split path,
        clipped to the coded cube ``[-1, 1]^k``; used by the RBF network to
        derive neuron centers and radii.
        """
        if self.root is None:
            raise RuntimeError("model is not fitted")
        k = self._x.shape[1]
        results = []

        def walk(node: TreeNode, lo: np.ndarray, hi: np.ndarray) -> None:
            if node.is_leaf:
                results.append((node.indices.copy(), lo.copy(), hi.copy()))
                return
            left_hi = hi.copy()
            left_hi[node.feature] = min(hi[node.feature], node.threshold)
            walk(node.left, lo, left_hi)
            right_lo = lo.copy()
            right_lo[node.feature] = max(lo[node.feature], node.threshold)
            walk(node.right, right_lo, hi)

        walk(self.root, -np.ones(k), np.ones(k))
        return results

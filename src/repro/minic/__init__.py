"""MiniC: the C-like source language of the workload programs.

MiniC supports ``int`` and ``float`` scalars, global scalars and 1-D
global arrays, functions, the usual arithmetic / bitwise / comparison /
short-circuit logical operators, ``if``/``while``/``for`` control flow and
explicit casts.  There is no heap and no address-of: pointer-style data
structures are expressed as index-linked arrays, which is faithful to how
cache-hostile SPEC kernels (mcf-style) actually behave.

The usual frontend pipeline applies: :func:`tokenize` -> :func:`parse` ->
:func:`analyze` -> :func:`lower_to_ir` (producing :class:`repro.ir.Module`).
:func:`compile_source` runs all four.
"""

from repro.minic.diagnostics import MiniCError
from repro.minic.lexer import Token, TokenKind, tokenize, LexerError
from repro.minic.parser import parse, ParseError
from repro.minic.sema import analyze, SemanticError
from repro.minic.lower import lower_to_ir
from repro.minic import ast


def compile_source(source: str, name: str = "module"):
    """Front-end pipeline: MiniC source text -> verified IR module.

    The source text is threaded through every stage, so any
    :class:`MiniCError` renders line/column plus the offending source
    line.
    """
    program = parse(tokenize(source), source=source)
    analyze(program, source=source)
    module = lower_to_ir(program, name=name)
    return module


__all__ = [
    "MiniCError",
    "Token",
    "TokenKind",
    "tokenize",
    "LexerError",
    "parse",
    "ParseError",
    "analyze",
    "SemanticError",
    "lower_to_ir",
    "compile_source",
    "ast",
]

"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import List, Optional

from repro.ir.types import Type
from repro.minic import ast
from repro.minic.diagnostics import MiniCError
from repro.minic.lexer import Token, TokenKind


class ParseError(MiniCError):
    """Syntax error; carries line/col and the offending source line."""


#: Binary operator precedence levels, lowest binding first.
_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_TYPE_NAMES = {"int": Type.INT, "float": Type.FLOAT, "void": Type.VOID}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def error(self, msg: str) -> ParseError:
        tok = self.peek()
        found = tok.text if tok.kind is not TokenKind.EOF else "end of input"
        return ParseError(
            f"{msg} (found {found!r})", line=tok.line, col=tok.col
        )

    def expect_punct(self, text: str) -> Token:
        tok = self.peek()
        if tok.kind is TokenKind.PUNCT and tok.text == text:
            return self.advance()
        raise self.error(f"expected {text!r}")

    def match_punct(self, text: str) -> bool:
        tok = self.peek()
        if tok.kind is TokenKind.PUNCT and tok.text == text:
            self.advance()
            return True
        return False

    def match_keyword(self, text: str) -> bool:
        tok = self.peek()
        if tok.kind is TokenKind.KEYWORD and tok.text == text:
            self.advance()
            return True
        return False

    def at_keyword(self, *names: str) -> bool:
        tok = self.peek()
        return tok.kind is TokenKind.KEYWORD and tok.text in names

    def expect_ident(self) -> str:
        tok = self.peek()
        if tok.kind is not TokenKind.IDENT:
            raise self.error("expected identifier")
        return self.advance().text

    def parse_type(self) -> Type:
        tok = self.peek()
        if tok.kind is TokenKind.KEYWORD and tok.text in _TYPE_NAMES:
            self.advance()
            return _TYPE_NAMES[tok.text]
        raise self.error("expected type name")

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self.peek().kind is not TokenKind.EOF:
            if not self.at_keyword("int", "float", "void"):
                raise self.error("expected declaration")
            # Look ahead: type IDENT '(' -> function; otherwise global.
            if (
                self.peek(1).kind is TokenKind.IDENT
                and self.peek(2).kind is TokenKind.PUNCT
                and self.peek(2).text == "("
            ):
                program.functions.append(self.parse_function())
            else:
                program.globals.append(self.parse_global())
        return program

    def parse_global(self) -> ast.GlobalDecl:
        line = self.peek().line
        var_type = self.parse_type()
        if var_type is Type.VOID:
            raise self.error("global cannot be void")
        name = self.expect_ident()
        array_size: Optional[int] = None
        init = None
        if self.match_punct("["):
            size_tok = self.peek()
            if size_tok.kind is not TokenKind.INT_LIT:
                raise self.error("array size must be an integer literal")
            self.advance()
            array_size = size_tok.value
            if array_size <= 0:
                raise self.error("array size must be positive")
            self.expect_punct("]")
        elif self.match_punct("="):
            tok = self.peek()
            negative = False
            if tok.kind is TokenKind.PUNCT and tok.text == "-":
                self.advance()
                negative = True
                tok = self.peek()
            if tok.kind is TokenKind.INT_LIT:
                init = -tok.value if negative else tok.value
            elif tok.kind is TokenKind.FLOAT_LIT:
                init = -tok.value if negative else tok.value
            else:
                raise self.error("global initializer must be a literal")
            self.advance()
        self.expect_punct(";")
        return ast.GlobalDecl(line, var_type, name, array_size, init)

    def parse_function(self) -> ast.FuncDecl:
        line = self.peek().line
        return_type = self.parse_type()
        name = self.expect_ident()
        self.expect_punct("(")
        params: List[ast.Param] = []
        if not (self.peek().kind is TokenKind.PUNCT and self.peek().text == ")"):
            while True:
                p_type = self.parse_type()
                if p_type is Type.VOID:
                    raise self.error("parameter cannot be void")
                p_name = self.expect_ident()
                params.append(ast.Param(p_type, p_name))
                if not self.match_punct(","):
                    break
        self.expect_punct(")")
        body = self.parse_block()
        return ast.FuncDecl(line, return_type, name, params, body)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_block(self) -> List[ast.Stmt]:
        self.expect_punct("{")
        stmts: List[ast.Stmt] = []
        while not self.match_punct("}"):
            if self.peek().kind is TokenKind.EOF:
                raise self.error("unterminated block")
            stmts.append(self.parse_statement())
        return stmts

    def parse_statement(self) -> ast.Stmt:
        tok = self.peek()
        if tok.kind is TokenKind.PUNCT and tok.text == "{":
            # A bare block is represented as an if(1)-less list; wrap in
            # an IfStmt-free container by flattening via a dummy loop is
            # overkill -- use an IfStmt with constant true?  Simpler: treat
            # as statement list inside a no-op if.  Cleanest: disallow.
            raise self.error("bare blocks are not supported; use control flow")
        if self.at_keyword("int", "float"):
            return self.parse_decl()
        if self.at_keyword("if"):
            return self.parse_if()
        if self.at_keyword("while"):
            return self.parse_while()
        if self.at_keyword("for"):
            return self.parse_for()
        if self.at_keyword("return"):
            return self.parse_return()
        return self.parse_simple_statement(require_semicolon=True)

    def parse_decl(self) -> ast.DeclStmt:
        line = self.peek().line
        var_type = self.parse_type()
        name = self.expect_ident()
        init = None
        if self.match_punct("="):
            init = self.parse_expression()
        self.expect_punct(";")
        return ast.DeclStmt(line=line, var_type=var_type, name=name, init=init)

    def parse_if(self) -> ast.IfStmt:
        line = self.peek().line
        self.match_keyword("if")
        self.expect_punct("(")
        cond = self.parse_expression()
        self.expect_punct(")")
        then_body = self.parse_body_or_single()
        else_body: List[ast.Stmt] = []
        if self.match_keyword("else"):
            if self.at_keyword("if"):
                else_body = [self.parse_if()]
            else:
                else_body = self.parse_body_or_single()
        return ast.IfStmt(line=line, cond=cond, then_body=then_body, else_body=else_body)

    def parse_body_or_single(self) -> List[ast.Stmt]:
        if self.peek().kind is TokenKind.PUNCT and self.peek().text == "{":
            return self.parse_block()
        return [self.parse_statement()]

    def parse_while(self) -> ast.WhileStmt:
        line = self.peek().line
        self.match_keyword("while")
        self.expect_punct("(")
        cond = self.parse_expression()
        self.expect_punct(")")
        body = self.parse_body_or_single()
        return ast.WhileStmt(line=line, cond=cond, body=body)

    def parse_for(self) -> ast.ForStmt:
        line = self.peek().line
        self.match_keyword("for")
        self.expect_punct("(")
        init: Optional[ast.Stmt] = None
        if not (self.peek().kind is TokenKind.PUNCT and self.peek().text == ";"):
            if self.at_keyword("int", "float"):
                init = self.parse_decl()  # consumes the ';'
            else:
                init = self.parse_simple_statement(require_semicolon=True)
        else:
            self.expect_punct(";")
        cond: Optional[ast.Expr] = None
        if not (self.peek().kind is TokenKind.PUNCT and self.peek().text == ";"):
            cond = self.parse_expression()
        self.expect_punct(";")
        step: Optional[ast.Stmt] = None
        if not (self.peek().kind is TokenKind.PUNCT and self.peek().text == ")"):
            step = self.parse_simple_statement(require_semicolon=False)
        self.expect_punct(")")
        body = self.parse_body_or_single()
        return ast.ForStmt(line=line, init=init, cond=cond, step=step, body=body)

    def parse_return(self) -> ast.ReturnStmt:
        line = self.peek().line
        self.match_keyword("return")
        value = None
        if not (self.peek().kind is TokenKind.PUNCT and self.peek().text == ";"):
            value = self.parse_expression()
        self.expect_punct(";")
        return ast.ReturnStmt(line=line, value=value)

    def parse_simple_statement(self, require_semicolon: bool) -> ast.Stmt:
        """Assignment or expression statement."""
        line = self.peek().line
        expr = self.parse_expression()
        if self.match_punct("="):
            if not isinstance(expr, (ast.VarRef, ast.ArrayRef)):
                raise self.error("invalid assignment target")
            value = self.parse_expression()
            if require_semicolon:
                self.expect_punct(";")
            return ast.AssignStmt(line=line, target=expr, value=value)
        if require_semicolon:
            self.expect_punct(";")
        if not isinstance(expr, ast.CallExpr):
            raise self.error("expression statement must be a call")
        return ast.ExprStmt(line=line, expr=expr)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def parse_expression(self) -> ast.Expr:
        return self.parse_binary(0)

    def parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        ops = _PRECEDENCE[level]
        while (
            self.peek().kind is TokenKind.PUNCT and self.peek().text in ops
        ):
            op_tok = self.advance()
            right = self.parse_binary(level + 1)
            left = ast.Binary(
                line=op_tok.line, op=op_tok.text, left=left, right=right
            )
        return left

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind is TokenKind.PUNCT and tok.text in ("-", "!"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(line=tok.line, op=tok.text, operand=operand)
        # Cast: '(' type ')' unary
        if (
            tok.kind is TokenKind.PUNCT
            and tok.text == "("
            and self.peek(1).kind is TokenKind.KEYWORD
            and self.peek(1).text in ("int", "float")
            and self.peek(2).kind is TokenKind.PUNCT
            and self.peek(2).text == ")"
        ):
            self.advance()
            target = self.parse_type()
            self.expect_punct(")")
            operand = self.parse_unary()
            return ast.Cast(line=tok.line, target=target, operand=operand)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if tok.kind is TokenKind.PUNCT and tok.text == "[":
                if not isinstance(expr, ast.VarRef):
                    raise self.error("only named arrays can be indexed")
                self.advance()
                index = self.parse_expression()
                self.expect_punct("]")
                expr = ast.ArrayRef(line=tok.line, name=expr.name, index=index)
            elif tok.kind is TokenKind.PUNCT and tok.text == "(":
                if not isinstance(expr, ast.VarRef):
                    raise self.error("only named functions can be called")
                self.advance()
                args: List[ast.Expr] = []
                if not (
                    self.peek().kind is TokenKind.PUNCT
                    and self.peek().text == ")"
                ):
                    while True:
                        args.append(self.parse_expression())
                        if not self.match_punct(","):
                            break
                self.expect_punct(")")
                expr = ast.CallExpr(line=tok.line, name=expr.name, args=args)
            else:
                break
        return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind is TokenKind.INT_LIT:
            self.advance()
            return ast.IntLit(line=tok.line, value=tok.value)
        if tok.kind is TokenKind.FLOAT_LIT:
            self.advance()
            return ast.FloatLit(line=tok.line, value=tok.value)
        if tok.kind is TokenKind.IDENT:
            self.advance()
            return ast.VarRef(line=tok.line, name=tok.text)
        if tok.kind is TokenKind.PUNCT and tok.text == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        raise self.error("expected expression")


def parse(tokens: List[Token], source: Optional[str] = None) -> ast.Program:
    """Parse a token stream into a :class:`repro.minic.ast.Program`.

    When the original ``source`` text is supplied, syntax errors render
    the offending line with a caret.
    """
    parser = _Parser(tokens)
    try:
        return parser.parse_program()
    except MiniCError as err:
        raise err.attach_source(source)

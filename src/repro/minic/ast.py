"""MiniC abstract syntax tree.

Nodes carry a ``line`` for diagnostics and, after semantic analysis, an
inferred ``type`` on every expression (set by :mod:`repro.minic.sema`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.ir.types import Type


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass
class Expr:
    line: int = 0
    #: Filled in by semantic analysis.
    type: Optional[Type] = field(default=None, compare=False)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class ArrayRef(Expr):
    name: str = ""
    index: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Cast(Expr):
    target: Optional[Type] = None
    operand: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class Stmt:
    line: int = 0


@dataclass
class DeclStmt(Stmt):
    var_type: Optional[Type] = None
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class AssignStmt(Stmt):
    #: VarRef or ArrayRef
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class IfStmt(Stmt):
    cond: Optional[Expr] = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class WhileStmt(Stmt):
    cond: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------
@dataclass
class Param:
    type: Type
    name: str


@dataclass
class GlobalDecl:
    line: int
    var_type: Type
    name: str
    #: None for scalars; element count for arrays.
    array_size: Optional[int] = None
    #: Initializer for scalars (literal value).
    init: Optional[Union[int, float]] = None


@dataclass
class FuncDecl:
    line: int
    return_type: Type
    name: str
    params: List[Param]
    body: List[Stmt]


@dataclass
class Program:
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDecl] = field(default_factory=list)

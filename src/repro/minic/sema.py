"""Semantic analysis for MiniC.

Checks scoping, types and call signatures, and annotates every expression
node with its inferred :class:`repro.ir.Type`.  Numeric promotion follows
a conservative subset of C: ``int`` promotes implicitly to ``float``, but
narrowing ``float -> int`` requires an explicit cast.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.types import Type
from repro.minic import ast
from repro.minic.diagnostics import MiniCError


class SemanticError(MiniCError):
    """Type/scope error; carries the line and the offending source line
    (column resolution would need per-expression columns in the AST)."""


_INT_ONLY_OPS = {"%", "<<", ">>", "&", "|", "^", "&&", "||"}
_CMP_OPS = {"==", "!=", "<", "<=", ">", ">="}
_ARITH_OPS = {"+", "-", "*", "/"}


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.symbols: Dict[str, Type] = {}

    def declare(self, name: str, type_: Type, line: int) -> None:
        if name in self.symbols:
            raise SemanticError(
                f"redeclaration of {name!r}",
                line=line,
            )
        self.symbols[name] = type_

    def lookup(self, name: str) -> Optional[Type]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class _Analyzer:
    def __init__(self, program: ast.Program):
        self.program = program
        self.global_scalars: Dict[str, Type] = {}
        self.global_arrays: Dict[str, Tuple[Type, int]] = {}
        self.functions: Dict[str, ast.FuncDecl] = {}

    # ------------------------------------------------------------------
    def run(self) -> None:
        for g in self.program.globals:
            if (
                g.name in self.global_scalars
                or g.name in self.global_arrays
                or g.name in self.functions
            ):
                raise SemanticError(
                    f"redeclaration of {g.name!r}",
                    line=g.line,
                )
            if g.array_size is not None:
                self.global_arrays[g.name] = (g.var_type, g.array_size)
            else:
                if g.init is not None:
                    if g.var_type is Type.INT and not isinstance(g.init, int):
                        raise SemanticError(
                            f"int global {g.name!r} with "
                            f"float initializer",
                            line=g.line,
                        )
                    if g.var_type is Type.FLOAT and isinstance(g.init, int):
                        g.init = float(g.init)
                self.global_scalars[g.name] = g.var_type
        for f in self.program.functions:
            if (
                f.name in self.functions
                or f.name in self.global_scalars
                or f.name in self.global_arrays
            ):
                raise SemanticError(
                    f"redeclaration of {f.name!r}",
                    line=f.line,
                )
            self.functions[f.name] = f
        for f in self.program.functions:
            self.check_function(f)

    # ------------------------------------------------------------------
    def check_function(self, func: ast.FuncDecl) -> None:
        scope = _Scope()
        seen = set()
        for p in func.params:
            if p.name in seen:
                raise SemanticError(
                    f"duplicate parameter {p.name!r}",
                    line=func.line,
                )
            seen.add(p.name)
            scope.declare(p.name, p.type, func.line)
        self.check_body(func.body, scope, func)
        if func.return_type is not Type.VOID and not self._always_returns(
            func.body
        ):
            raise SemanticError(
                f"function {func.name!r} may fall off the end without "
                f"returning a value"
            )

    def _always_returns(self, body: List[ast.Stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.ReturnStmt):
                return True
            if isinstance(stmt, ast.IfStmt):
                if (
                    stmt.else_body
                    and self._always_returns(stmt.then_body)
                    and self._always_returns(stmt.else_body)
                ):
                    return True
        return False

    def check_body(
        self, body: List[ast.Stmt], scope: _Scope, func: ast.FuncDecl
    ) -> None:
        for stmt in body:
            self.check_stmt(stmt, scope, func)

    # ------------------------------------------------------------------
    def check_stmt(
        self, stmt: ast.Stmt, scope: _Scope, func: ast.FuncDecl
    ) -> None:
        if isinstance(stmt, ast.DeclStmt):
            if stmt.init is not None:
                init_type = self.check_expr(stmt.init, scope)
                self._check_assignable(stmt.var_type, init_type, stmt.line)
            scope.declare(stmt.name, stmt.var_type, stmt.line)
        elif isinstance(stmt, ast.AssignStmt):
            target_type = self._check_lvalue(stmt.target, scope)
            value_type = self.check_expr(stmt.value, scope)
            self._check_assignable(target_type, value_type, stmt.line)
        elif isinstance(stmt, ast.IfStmt):
            self._check_condition(stmt.cond, scope)
            self.check_body(stmt.then_body, _Scope(scope), func)
            self.check_body(stmt.else_body, _Scope(scope), func)
        elif isinstance(stmt, ast.WhileStmt):
            self._check_condition(stmt.cond, scope)
            self.check_body(stmt.body, _Scope(scope), func)
        elif isinstance(stmt, ast.ForStmt):
            inner = _Scope(scope)
            if stmt.init is not None:
                self.check_stmt(stmt.init, inner, func)
            if stmt.cond is not None:
                self._check_condition(stmt.cond, inner)
            if stmt.step is not None:
                self.check_stmt(stmt.step, inner, func)
            self.check_body(stmt.body, _Scope(inner), func)
        elif isinstance(stmt, ast.ReturnStmt):
            if func.return_type is Type.VOID:
                if stmt.value is not None:
                    raise SemanticError(
                        f"void function {func.name!r} "
                        f"returns a value",
                        line=stmt.line,
                    )
            else:
                if stmt.value is None:
                    raise SemanticError(
                        f"{func.name!r} must return "
                        f"{func.return_type.value}",
                        line=stmt.line,
                    )
                value_type = self.check_expr(stmt.value, scope)
                self._check_assignable(func.return_type, value_type, stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr, scope)
        else:
            raise SemanticError(f"unknown statement {stmt!r}")

    def _check_condition(self, cond: ast.Expr, scope: _Scope) -> None:
        cond_type = self.check_expr(cond, scope)
        if cond_type is not Type.INT:
            raise SemanticError(
                f"condition must be int, got "
                f"{cond_type.value}",
                line=cond.line,
            )

    def _check_lvalue(self, target: ast.Expr, scope: _Scope) -> Type:
        if isinstance(target, ast.VarRef):
            local = scope.lookup(target.name)
            if local is not None:
                target.type = local
                return local
            if target.name in self.global_scalars:
                target.type = self.global_scalars[target.name]
                return target.type
            if target.name in self.global_arrays:
                raise SemanticError(
                    f"cannot assign to array "
                    f"{target.name!r} without an index",
                    line=target.line,
                )
            raise SemanticError(
                f"undefined variable {target.name!r}",
                line=target.line,
            )
        if isinstance(target, ast.ArrayRef):
            return self._check_array_ref(target, scope)
        raise SemanticError(
            f"invalid assignment target",
            line=target.line,
        )

    def _check_array_ref(self, ref: ast.ArrayRef, scope: _Scope) -> Type:
        if ref.name not in self.global_arrays:
            raise SemanticError(
                f"{ref.name!r} is not a global array",
                line=ref.line,
            )
        index_type = self.check_expr(ref.index, scope)
        if index_type is not Type.INT:
            raise SemanticError(
                f"array index must be int",
                line=ref.line,
            )
        ref.type = self.global_arrays[ref.name][0]
        return ref.type

    def _check_assignable(
        self, target: Type, value: Type, line: int
    ) -> None:
        if target == value:
            return
        if target is Type.FLOAT and value is Type.INT:
            return  # implicit promotion
        raise SemanticError(
            f"cannot assign {value.value} to {target.value} "
            f"(use an explicit cast)",
            line=line,
        )

    # ------------------------------------------------------------------
    def check_expr(self, expr: ast.Expr, scope: _Scope) -> Type:
        if isinstance(expr, ast.IntLit):
            expr.type = Type.INT
        elif isinstance(expr, ast.FloatLit):
            expr.type = Type.FLOAT
        elif isinstance(expr, ast.VarRef):
            local = scope.lookup(expr.name)
            if local is not None:
                expr.type = local
            elif expr.name in self.global_scalars:
                expr.type = self.global_scalars[expr.name]
            else:
                raise SemanticError(
                    f"undefined variable {expr.name!r}",
                    line=expr.line,
                )
        elif isinstance(expr, ast.ArrayRef):
            self._check_array_ref(expr, scope)
        elif isinstance(expr, ast.Unary):
            operand = self.check_expr(expr.operand, scope)
            if expr.op == "!":
                if operand is not Type.INT:
                    raise SemanticError(
                        f"'!' requires an int operand",
                        line=expr.line,
                    )
                expr.type = Type.INT
            else:  # '-'
                expr.type = operand
        elif isinstance(expr, ast.Cast):
            self.check_expr(expr.operand, scope)
            expr.type = expr.target
        elif isinstance(expr, ast.Binary):
            left = self.check_expr(expr.left, scope)
            right = self.check_expr(expr.right, scope)
            if expr.op in _INT_ONLY_OPS:
                if left is not Type.INT or right is not Type.INT:
                    raise SemanticError(
                        f"operator {expr.op!r} requires "
                        f"int operands",
                        line=expr.line,
                    )
                expr.type = Type.INT
            elif expr.op in _CMP_OPS:
                expr.type = Type.INT
            elif expr.op in _ARITH_OPS:
                expr.type = (
                    Type.FLOAT
                    if Type.FLOAT in (left, right)
                    else Type.INT
                )
            else:
                raise SemanticError(
                    f"unknown operator {expr.op!r}",
                    line=expr.line,
                )
        elif isinstance(expr, ast.CallExpr):
            if expr.name not in self.functions:
                raise SemanticError(
                    f"call to undefined function "
                    f"{expr.name!r}",
                    line=expr.line,
                )
            callee = self.functions[expr.name]
            if len(expr.args) != len(callee.params):
                raise SemanticError(
                    f"{expr.name!r} expects "
                    f"{len(callee.params)} arguments, got {len(expr.args)}",
                    line=expr.line,
                )
            for arg, param in zip(expr.args, callee.params):
                arg_type = self.check_expr(arg, scope)
                self._check_assignable(param.type, arg_type, expr.line)
            expr.type = callee.return_type
        else:
            raise SemanticError(f"unknown expression {expr!r}")
        return expr.type


def analyze(program: ast.Program, source: Optional[str] = None) -> None:
    """Type-check ``program`` in place, annotating expression types.

    When the original ``source`` text is supplied, semantic errors
    render the offending line.
    """
    try:
        _Analyzer(program).run()
    except MiniCError as err:
        raise err.attach_source(source)

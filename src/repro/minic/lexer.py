"""MiniC lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Union

from repro.minic.diagnostics import MiniCError


class LexerError(MiniCError):
    """Lexical error; carries line/col and the offending source line."""


class TokenKind(enum.Enum):
    INT_LIT = "int_lit"
    FLOAT_LIT = "float_lit"
    IDENT = "ident"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = {"int", "float", "void", "if", "else", "while", "for", "return"}

# Multi-character punctuation, longest first.
PUNCTUATION = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!",
    "&", "|", "^", "(", ")", "{", "}", "[", "]", ",", ";",
]


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    value: Union[int, float, None]
    line: int
    col: int

    def __repr__(self):
        return f"Token({self.kind.value}, {self.text!r}, L{self.line})"


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg: str) -> LexerError:
        err = LexerError(msg, line=line, col=col)
        err.attach_source(source)
        return err

    while i < n:
        ch = source[i]
        # Whitespace
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        # Comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise error("unterminated block comment")
            skipped = source[i : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        # Numbers
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            while i < n and source[i].isdigit():
                i += 1
            is_float = False
            if i < n and source[i] == ".":
                is_float = True
                i += 1
                while i < n and source[i].isdigit():
                    i += 1
            if i < n and source[i] in "eE":
                is_float = True
                i += 1
                if i < n and source[i] in "+-":
                    i += 1
                if i >= n or not source[i].isdigit():
                    raise error("malformed exponent")
                while i < n and source[i].isdigit():
                    i += 1
            text = source[start:i]
            if is_float:
                tokens.append(
                    Token(TokenKind.FLOAT_LIT, text, float(text), line, col)
                )
            else:
                tokens.append(
                    Token(TokenKind.INT_LIT, text, int(text), line, col)
                )
            col += i - start
            continue
        # Identifiers / keywords
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, None, line, col))
            col += i - start
            continue
        # Punctuation
        for p in PUNCTUATION:
            if source.startswith(p, i):
                tokens.append(Token(TokenKind.PUNCT, p, None, line, col))
                i += len(p)
                col += len(p)
                break
        else:
            raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenKind.EOF, "", None, line, col))
    return tokens

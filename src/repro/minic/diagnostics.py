"""Source-located diagnostics for the MiniC frontend.

:class:`MiniCError` is the common base of :class:`~repro.minic.lexer.LexerError`,
:class:`~repro.minic.parser.ParseError` and
:class:`~repro.minic.sema.SemanticError`.  Every frontend error carries a
structured location (``line``, and ``col`` where the stage knows it) and,
once :meth:`MiniCError.attach_source` has run -- the lexer does it
immediately, ``parse``/``analyze``/``compile_source`` do it for the later
stages -- renders the offending source line with a caret:

.. code-block:: text

    line 3, col 9: condition must be int, got float
        while (f) { x = x + 1; }
               ^

Generated workloads make frontend errors *generator* bugs, so the
excerpt is what turns a checksum-less stack trace into a one-glance
diagnosis.
"""

from __future__ import annotations

from typing import Optional


class MiniCError(Exception):
    """A frontend error with structured source location."""

    def __init__(
        self,
        message: str,
        line: Optional[int] = None,
        col: Optional[int] = None,
    ):
        super().__init__(message)
        self.message = message
        self.line = line
        self.col = col
        self.source_text: Optional[str] = None

    def attach_source(self, source: Optional[str]) -> "MiniCError":
        """Remember the program text so ``str()`` can show the offending
        line.  Idempotent; returns self for raise-chaining."""
        if source is not None and self.source_text is None:
            self.source_text = source
        return self

    def excerpt(self) -> Optional[str]:
        """The offending source line plus a caret, or None when either
        the location or the source text is missing."""
        if self.source_text is None or self.line is None:
            return None
        lines = self.source_text.splitlines()
        if not 1 <= self.line <= len(lines):
            return None
        text = lines[self.line - 1].rstrip()
        out = f"    {text}"
        if self.col is not None and 1 <= self.col <= len(text) + 1:
            out += "\n    " + " " * (self.col - 1) + "^"
        return out

    def location(self) -> str:
        if self.line is None:
            return ""
        if self.col is None:
            return f"line {self.line}: "
        return f"line {self.line}, col {self.col}: "

    def __str__(self) -> str:
        out = f"{self.location()}{self.message}"
        excerpt = self.excerpt()
        if excerpt is not None:
            out += "\n" + excerpt
        return out

"""AST -> IR lowering.

Locals and parameters live in virtual registers (the IR is not SSA, so a
local maps to one mutable :class:`Temp`).  Global scalars and arrays are
accessed through explicit ``Addr``/``Load``/``Store``; array indices are
scaled by the word size with a multiply, deliberately leaving induction-
variable strength reduction work for the optimizer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir import (
    BasicBlock,
    Const,
    Function,
    GlobalVar,
    IRBuilder,
    Module,
    Temp,
    Type,
)
from repro.ir.types import WORD_SIZE
from repro.ir.values import Value
from repro.minic import ast


class _FunctionLowerer:
    def __init__(self, module: Module, func_decl: ast.FuncDecl):
        self.module = module
        self.decl = func_decl
        params = [Temp(f"arg_{p.name}", p.type) for p in func_decl.params]
        self.func = Function(func_decl.name, params, func_decl.return_type)
        self.builder = IRBuilder(self.func)
        self.env_stack: List[Dict[str, Temp]] = [{}]

    # ------------------------------------------------------------------
    # Environment
    # ------------------------------------------------------------------
    def push_scope(self) -> None:
        self.env_stack.append({})

    def pop_scope(self) -> None:
        self.env_stack.pop()

    def declare(self, name: str, temp: Temp) -> None:
        self.env_stack[-1][name] = temp

    def lookup(self, name: str) -> Optional[Temp]:
        for env in reversed(self.env_stack):
            if name in env:
                return env[name]
        return None

    # ------------------------------------------------------------------
    def run(self) -> Function:
        entry = self.func.new_block("entry")
        self.builder.set_block(entry)
        # Copy parameters into mutable locals so assignment to a
        # parameter works uniformly.
        for p_decl, p_temp in zip(self.decl.params, self.func.params):
            local = self.func.new_temp(p_temp.type, hint=f"p_{p_decl.name}_")
            self.builder.copy_to(local, p_temp)
            self.declare(p_decl.name, local)
        self.lower_body(self.decl.body)
        # Implicit return for void functions falling off the end.
        if not self.builder.block.is_terminated:
            if self.decl.return_type is Type.VOID:
                self.builder.ret(None)
            else:
                # Sema proved this is unreachable; keep the IR well formed.
                self.builder.ret(Const(0, Type.INT) if self.decl.return_type is Type.INT else Const(0.0, Type.FLOAT))
        # Terminate any dangling blocks created after returns.
        for block in self.func.blocks:
            if not block.is_terminated:
                self.builder.set_block(block)
                if self.decl.return_type is Type.VOID:
                    self.builder.ret(None)
                elif self.decl.return_type is Type.INT:
                    self.builder.ret(Const(0, Type.INT))
                else:
                    self.builder.ret(Const(0.0, Type.FLOAT))
        return self.func

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def lower_body(self, body: List[ast.Stmt]) -> None:
        self.push_scope()
        for stmt in body:
            self.lower_stmt(stmt)
        self.pop_scope()

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.DeclStmt):
            temp = self.func.new_temp(stmt.var_type, hint=f"v_{stmt.name}_")
            if stmt.init is not None:
                value = self.lower_expr(stmt.init)
                value = self.coerce(value, stmt.var_type)
                self.builder.copy_to(temp, value)
            else:
                zero = (
                    Const(0, Type.INT)
                    if stmt.var_type is Type.INT
                    else Const(0.0, Type.FLOAT)
                )
                self.builder.copy_to(temp, zero)
            self.declare(stmt.name, temp)
        elif isinstance(stmt, ast.AssignStmt):
            self.lower_assign(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is None:
                self.builder.ret(None)
            else:
                value = self.lower_expr(stmt.value)
                value = self.coerce(value, self.decl.return_type)
                self.builder.ret(value)
            # Continue emitting into a fresh (unreachable) block if more
            # statements follow; dead-block removal cleans it up.
            dead = self.func.new_block("dead")
            self.builder.set_block(dead)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        else:
            raise TypeError(f"unknown statement {stmt!r}")

    def lower_assign(self, stmt: ast.AssignStmt) -> None:
        value = self.lower_expr(stmt.value)
        target = stmt.target
        if isinstance(target, ast.VarRef):
            local = self.lookup(target.name)
            if local is not None:
                self.builder.copy_to(local, self.coerce(value, local.type))
                return
            # Global scalar.
            g = self.module.globals[target.name]
            base = self.builder.addr(target.name)
            self.builder.store(
                base, Const(0, Type.INT), self.coerce(value, g.type)
            )
            return
        if isinstance(target, ast.ArrayRef):
            g = self.module.globals[target.name]
            base, offset = self.lower_array_address(target)
            self.builder.store(base, offset, self.coerce(value, g.type))
            return
        raise TypeError(f"invalid assignment target {target!r}")

    def lower_if(self, stmt: ast.IfStmt) -> None:
        cond = self.lower_expr(stmt.cond)
        then_block = self.func.new_block("then")
        join_block_label = self.func.fresh_label("join")
        if stmt.else_body:
            else_block = self.func.new_block("else")
            self.builder.branch(cond, then_block.label, else_block.label)
        else:
            self.builder.branch(cond, then_block.label, join_block_label)
        self.builder.set_block(then_block)
        self.lower_body(stmt.then_body)
        then_end = self.builder.block
        if stmt.else_body:
            self.builder.set_block(else_block)
            self.lower_body(stmt.else_body)
            else_end = self.builder.block
        join = self.func.add_block(BasicBlock(join_block_label))
        if not then_end.is_terminated:
            self.builder.set_block(then_end)
            self.builder.jump(join.label)
        if stmt.else_body and not else_end.is_terminated:
            self.builder.set_block(else_end)
            self.builder.jump(join.label)
        self.builder.set_block(join)

    def lower_while(self, stmt: ast.WhileStmt) -> None:
        header = self.func.new_block("loop")
        body = self.func.new_block("body")
        exit_label = self.func.fresh_label("exit")
        self.builder.jump(header.label)
        self.builder.set_block(header)
        cond = self.lower_expr(stmt.cond)
        self.builder.branch(cond, body.label, exit_label)
        self.builder.set_block(body)
        self.lower_body(stmt.body)
        if not self.builder.block.is_terminated:
            self.builder.jump(header.label)
        exit_block = self.func.add_block(BasicBlock(exit_label))
        self.builder.set_block(exit_block)

    def lower_for(self, stmt: ast.ForStmt) -> None:
        self.push_scope()
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        header = self.func.new_block("loop")
        body = self.func.new_block("body")
        exit_label = self.func.fresh_label("exit")
        self.builder.jump(header.label)
        self.builder.set_block(header)
        if stmt.cond is not None:
            cond = self.lower_expr(stmt.cond)
            self.builder.branch(cond, body.label, exit_label)
        else:
            self.builder.jump(body.label)
        self.builder.set_block(body)
        self.lower_body(stmt.body)
        if not self.builder.block.is_terminated:
            if stmt.step is not None:
                self.lower_stmt(stmt.step)
            self.builder.jump(header.label)
        exit_block = self.func.add_block(BasicBlock(exit_label))
        self.builder.set_block(exit_block)
        self.pop_scope()

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def coerce(self, value: Value, target: Type) -> Value:
        if value.type == target:
            return value
        if target is Type.FLOAT and value.type is Type.INT:
            if isinstance(value, Const):
                return Const(float(value.value), Type.FLOAT)
            return self.builder.unop("itof", value, Type.FLOAT)
        if target is Type.INT and value.type is Type.FLOAT:
            if isinstance(value, Const):
                return Const(int(value.value), Type.INT)
            return self.builder.unop("ftoi", value, Type.INT)
        raise TypeError(f"cannot coerce {value.type} to {target}")

    def lower_array_address(self, ref: ast.ArrayRef):
        base = self.builder.addr(ref.name)
        index = self.lower_expr(ref.index)
        if isinstance(index, Const):
            return base, Const(index.value * WORD_SIZE, Type.INT)
        offset = self.builder.binop(
            "mul", index, Const(WORD_SIZE, Type.INT), Type.INT
        )
        return base, offset

    def lower_expr(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.IntLit):
            return Const(expr.value, Type.INT)
        if isinstance(expr, ast.FloatLit):
            return Const(expr.value, Type.FLOAT)
        if isinstance(expr, ast.VarRef):
            local = self.lookup(expr.name)
            if local is not None:
                return local
            g = self.module.globals[expr.name]
            base = self.builder.addr(expr.name)
            return self.builder.load(base, Const(0, Type.INT), g.type)
        if isinstance(expr, ast.ArrayRef):
            g = self.module.globals[expr.name]
            base, offset = self.lower_array_address(expr)
            return self.builder.load(base, offset, g.type)
        if isinstance(expr, ast.Unary):
            operand = self.lower_expr(expr.operand)
            if expr.op == "-":
                op = "fneg" if operand.type is Type.FLOAT else "neg"
                return self.builder.unop(op, operand, operand.type)
            # '!' -> operand == 0
            return self.builder.cmp("eq", operand, Const(0, Type.INT))
        if isinstance(expr, ast.Cast):
            operand = self.lower_expr(expr.operand)
            return self.coerce(operand, expr.target)
        if isinstance(expr, ast.Binary):
            return self.lower_binary(expr)
        if isinstance(expr, ast.CallExpr):
            callee = self.module.functions[expr.name]
            args = []
            for arg_expr, param in zip(expr.args, callee.params):
                arg = self.lower_expr(arg_expr)
                args.append(self.coerce(arg, param.type))
            return self.builder.call(expr.name, args, callee.return_type)
        raise TypeError(f"unknown expression {expr!r}")

    _CMP_MAP = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
    _INT_OP_MAP = {
        "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
        "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
    }
    _FLOAT_OP_MAP = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}

    def lower_binary(self, expr: ast.Binary) -> Value:
        if expr.op in ("&&", "||"):
            return self.lower_short_circuit(expr)
        left = self.lower_expr(expr.left)
        right = self.lower_expr(expr.right)
        if expr.op in self._CMP_MAP:
            common = (
                Type.FLOAT
                if Type.FLOAT in (left.type, right.type)
                else Type.INT
            )
            left = self.coerce(left, common)
            right = self.coerce(right, common)
            return self.builder.cmp(self._CMP_MAP[expr.op], left, right)
        if expr.type is Type.FLOAT:
            left = self.coerce(left, Type.FLOAT)
            right = self.coerce(right, Type.FLOAT)
            return self.builder.binop(
                self._FLOAT_OP_MAP[expr.op], left, right, Type.FLOAT
            )
        return self.builder.binop(
            self._INT_OP_MAP[expr.op], left, right, Type.INT
        )

    def lower_short_circuit(self, expr: ast.Binary) -> Value:
        """Lower && / || with control flow producing a 0/1 temp."""
        result = self.func.new_temp(Type.INT, hint="sc")
        rhs_block = self.func.new_block("sc_rhs")
        done_label = self.func.fresh_label("sc_done")
        left = self.lower_expr(expr.left)
        left_bool = self.builder.cmp("ne", left, Const(0, Type.INT))
        self.builder.copy_to(result, left_bool)
        if expr.op == "&&":
            self.builder.branch(left_bool, rhs_block.label, done_label)
        else:
            self.builder.branch(left_bool, done_label, rhs_block.label)
        self.builder.set_block(rhs_block)
        right = self.lower_expr(expr.right)
        right_bool = self.builder.cmp("ne", right, Const(0, Type.INT))
        self.builder.copy_to(result, right_bool)
        self.builder.jump(done_label)
        done = self.func.add_block(BasicBlock(done_label))
        self.builder.set_block(done)
        return result


def lower_to_ir(program: ast.Program, name: str = "module") -> Module:
    """Lower an analyzed program to an IR module."""
    module = Module(name)
    for g in program.globals:
        init = None
        if g.init is not None:
            init = [g.init]
        module.add_global(
            GlobalVar(g.name, g.var_type, g.array_size or 1, init)
        )
    # Declare all functions first so calls can be resolved in any order.
    lowerers = [_FunctionLowerer(module, f) for f in program.functions]
    for lw in lowerers:
        module.add_function(lw.func)
    for lw in lowerers:
        lw.run()
    return module

"""Named counters and histograms for pipeline-wide bookkeeping.

Unlike spans, metrics are *always on*: an increment is a lock plus an
integer add, cheap enough for every cache lookup and SMARTS unit.  The
registry is process-global; call-sites typically cache the metric object
at import time (``_HITS = counter("measure.trace_cache.hits")``) so the
hot path skips the registry lookup.

The CLI persists counter *deltas* into ``<cache_dir>/metrics.json``
after each command (see :meth:`MetricsRegistry.persist`), which is what
``repro stats`` reads -- so cache hit/miss and compilation/simulation
counts accumulate across processes alongside the measurement cache.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Union


class Counter:
    """A monotonically increasing named integer."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0


class Histogram:
    """A named distribution; reports count/mean/p50/p95/max on demand.

    Raw observations are kept (these are low-rate series: one value per
    pass, per build iteration, per GA generation), so percentiles are
    exact.
    """

    __slots__ = ("name", "_values", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._values: List[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def values(self) -> List[float]:
        with self._lock:
            return list(self._values)

    def percentile(self, p: float) -> float:
        """Exact percentile by the nearest-rank method (p in [0, 100])."""
        with self._lock:
            if not self._values:
                return math.nan
            ordered = sorted(self._values)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def summary(self) -> Dict[str, float]:
        with self._lock:
            values = list(self._values)
        if not values:
            return {"count": 0}
        return {
            "count": len(values),
            "mean": sum(values) / len(values),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": max(values),
        }

    def _reset(self) -> None:
        with self._lock:
            self._values.clear()


Metric = Union[Counter, Histogram]


class MetricsRegistry:
    """Process-global store of named metrics.

    ``reset()`` zeroes metrics *in place* so objects cached by
    instrumentation call-sites stay valid.
    """

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()
        #: Counter values as of the last ``persist()``; persistence
        #: writes only the delta so repeated calls never double-count.
        self._persisted: Dict[str, int] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = Counter(name)
            elif not isinstance(metric, Counter):
                raise TypeError(f"{name!r} is already a {type(metric).__name__}")
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = Histogram(name)
            elif not isinstance(metric, Histogram):
                raise TypeError(f"{name!r} is already a {type(metric).__name__}")
            return metric

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """``{"counters": {name: int}, "histograms": {name: summary}}``."""
        with self._lock:
            metrics = list(self._metrics.values())
        counters: Dict[str, int] = {}
        histograms: Dict[str, Dict[str, float]] = {}
        for metric in metrics:
            if isinstance(metric, Counter):
                counters[metric.name] = metric.value
            else:
                histograms[metric.name] = metric.summary()
        return {"counters": counters, "histograms": histograms}

    def reset(self) -> None:
        with self._lock:
            metrics = list(self._metrics.values())
            self._persisted.clear()
        for metric in metrics:
            metric._reset()

    # -- persistence ---------------------------------------------------
    def persist(self, path: Union[str, Path]) -> None:
        """Merge counter deltas (and current histogram summaries) into
        the JSON file at ``path``, atomically."""
        snap = self.snapshot()
        deltas = {
            name: value - self._persisted.get(name, 0)
            for name, value in snap["counters"].items()
        }
        deltas = {name: d for name, d in deltas.items() if d}
        histograms = {
            name: s for name, s in snap["histograms"].items() if s.get("count")
        }
        if not deltas and not histograms:
            return
        path = Path(path)
        stored: Dict[str, Any] = {"counters": {}, "histograms": {}}
        if path.exists():
            try:
                raw = json.loads(path.read_text())
                if isinstance(raw, dict):
                    stored["counters"] = dict(raw.get("counters", {}))
                    stored["histograms"] = dict(raw.get("histograms", {}))
            except (json.JSONDecodeError, OSError):
                pass
        for name, delta in deltas.items():
            stored["counters"][name] = stored["counters"].get(name, 0) + delta
        # Exact cross-process percentile merging is impossible from
        # summaries; keep the latest process's distribution summary.
        stored["histograms"].update(histograms)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(stored, f, indent=1)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self._persisted.update(snap["counters"])

    @staticmethod
    def load_persisted(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
        """Read a persisted metrics file; None if missing/corrupt."""
        path = Path(path)
        if not path.exists():
            return None
        try:
            raw = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            return None
        if not isinstance(raw, dict):
            return None
        return {
            "counters": dict(raw.get("counters", {})),
            "histograms": dict(raw.get("histograms", {})),
        }


def format_report(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """Human-readable rendering of a :meth:`MetricsRegistry.snapshot`."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        lines.append("counters")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")
    if histograms:
        if lines:
            lines.append("")
        lines.append("histograms (count / mean / p50 / p95 / max)")
        width = max(len(n) for n in histograms)
        for name in sorted(histograms):
            s = histograms[name]
            if not s.get("count"):
                lines.append(f"  {name:<{width}}  (empty)")
                continue
            lines.append(
                f"  {name:<{width}}  {s['count']:d} / {s['mean']:.3g} / "
                f"{s['p50']:.3g} / {s['p95']:.3g} / {s['max']:.3g}"
            )
    if not lines:
        return "(no metrics recorded)"
    return "\n".join(lines)


#: The process-wide registry used by all instrumentation call-sites.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def histogram(name: str) -> Histogram:
    return _REGISTRY.histogram(name)

"""Named counters and histograms for pipeline-wide bookkeeping.

Unlike spans, metrics are *always on*: an increment is a lock plus an
integer add, cheap enough for every cache lookup and SMARTS unit.  The
registry is process-global; call-sites typically cache the metric object
at import time (``_HITS = counter("measure.trace_cache.hits")``) so the
hot path skips the registry lookup.

The CLI persists counter *deltas* into ``<cache_dir>/metrics.json``
after each command (see :meth:`MetricsRegistry.persist`), which is what
``repro stats`` reads -- so cache hit/miss and compilation/simulation
counts accumulate across processes alongside the measurement cache.
"""

from __future__ import annotations

import json
import math
import os
import random
import tempfile
import threading
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Union


class Counter:
    """A monotonically increasing named integer."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0


#: Reservoir capacity: percentiles are exact up to this many
#: observations, reservoir-sampled (uniform, Algorithm R) beyond it, so
#: high-rate series (``serve.predict_ms`` under sustained load) hold
#: O(1) memory however long the process lives.
HISTOGRAM_MAX_SAMPLES = 4096

#: Per-histogram sample size kept in the persisted ``metrics.json``.
PERSISTED_SAMPLE_SIZE = 512


class Histogram:
    """A named distribution; reports count/mean/p50/p95/p99/max.

    Count, sum, min and max are exact for the full observation stream.
    Percentiles come from a bounded uniform reservoir: exact while the
    stream fits in :data:`HISTOGRAM_MAX_SAMPLES`, an unbiased sample
    estimate beyond that.  The reservoir RNG is seeded from the metric
    name, so a replayed observation stream reproduces the same sample.
    """

    __slots__ = (
        "name",
        "max_samples",
        "_sample",
        "_seen",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_rng",
        "_lock",
    )

    def __init__(self, name: str, max_samples: int = HISTOGRAM_MAX_SAMPLES):
        self.name = name
        self.max_samples = max(1, int(max_samples))
        self._sample: List[float] = []
        #: Observations fed through the reservoir (drives Algorithm R).
        self._seen = 0
        #: Logical observation count (includes merged remote counts).
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._rng = random.Random(zlib.crc32(name.encode()))
        self._lock = threading.Lock()

    # -- internal ------------------------------------------------------
    def _insert(self, value: float) -> None:
        """Reservoir-insert one value (caller holds the lock)."""
        self._seen += 1
        if len(self._sample) < self.max_samples:
            self._sample.append(value)
        else:
            j = self._rng.randrange(self._seen)
            if j < self.max_samples:
                self._sample[j] = value

    # -- public --------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._insert(value)
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def values(self) -> List[float]:
        """A copy of the current reservoir sample (the full stream while
        it fits; a uniform subsample beyond the cap)."""
        with self._lock:
            return list(self._sample)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the reservoir (p in [0, 100]);
        exact below the reservoir cap."""
        with self._lock:
            sample = list(self._sample)
        return _rank_percentile(sorted(sample), p)

    def summary(self) -> Dict[str, float]:
        # One lock hold to copy, one sort for all three quantiles: a
        # /metrics scrape must not stall concurrent observe() calls on
        # the serving hot path while it sorts the reservoir.
        with self._lock:
            if not self._count:
                return {"count": 0}
            count, total, vmax = self._count, self._sum, self._max
            sample = list(self._sample)
        ordered = sorted(sample)
        return {
            "count": count,
            "mean": total / count,
            "p50": _rank_percentile(ordered, 50),
            "p95": _rank_percentile(ordered, 95),
            "p99": _rank_percentile(ordered, 99),
            "max": vmax,
        }

    def export_state(self) -> Dict[str, Any]:
        """Mergeable snapshot: exact moments plus the reservoir sample
        (what pool workers ship back, see :mod:`repro.obs.context`)."""
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "values": list(self._sample),
            }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`export_state` into this one.

        Count/sum/min/max merge exactly; the shipped sample feeds the
        reservoir, so percentiles stay representative of the combined
        stream (and stay exact while the combined stream fits).
        """
        count = int(state.get("count", 0))
        if count <= 0:
            return
        values = state.get("values") or []
        with self._lock:
            for v in values:
                self._insert(float(v))
            self._count += count
            self._sum += float(state.get("sum", 0.0))
            vmin, vmax = state.get("min"), state.get("max")
            if vmin is not None and float(vmin) < self._min:
                self._min = float(vmin)
            if vmax is not None and float(vmax) > self._max:
                self._max = float(vmax)

    def _reset(self) -> None:
        with self._lock:
            self._sample.clear()
            self._seen = 0
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf


Metric = Union[Counter, Histogram]


class MetricsRegistry:
    """Process-global store of named metrics.

    ``reset()`` zeroes metrics *in place* so objects cached by
    instrumentation call-sites stay valid.
    """

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()
        #: Counter values as of the last ``persist()``; persistence
        #: writes only the delta so repeated calls never double-count.
        self._persisted: Dict[str, int] = {}
        #: (count, sum) per histogram as of the last ``persist()``.
        self._persisted_hist: Dict[str, tuple] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = Counter(name)
            elif not isinstance(metric, Counter):
                raise TypeError(f"{name!r} is already a {type(metric).__name__}")
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = Histogram(name)
            elif not isinstance(metric, Histogram):
                raise TypeError(f"{name!r} is already a {type(metric).__name__}")
            return metric

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """``{"counters": {name: int}, "histograms": {name: summary}}``."""
        with self._lock:
            metrics = list(self._metrics.values())
        counters: Dict[str, int] = {}
        histograms: Dict[str, Dict[str, float]] = {}
        for metric in metrics:
            if isinstance(metric, Counter):
                counters[metric.name] = metric.value
            else:
                histograms[metric.name] = metric.summary()
        return {"counters": counters, "histograms": histograms}

    def reset(self) -> None:
        with self._lock:
            metrics = list(self._metrics.values())
            self._persisted.clear()
            self._persisted_hist.clear()
        for metric in metrics:
            metric._reset()

    # -- cross-process merge -------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        """Everything another process needs to merge this registry's
        observations into its own: nonzero counter values plus full
        histogram states (exact moments + reservoir samples)."""
        with self._lock:
            metrics = list(self._metrics.values())
        counters: Dict[str, int] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for metric in metrics:
            if isinstance(metric, Counter):
                if metric.value:
                    counters[metric.name] = metric.value
            elif metric.count:
                histograms[metric.name] = metric.export_state()
        return {"counters": counters, "histograms": histograms}

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold an :meth:`export_state` payload (typically shipped back
        from a pool worker) into this registry's live metrics."""
        for name, value in (state.get("counters") or {}).items():
            self.counter(name).inc(int(value))
        for name, hist_state in (state.get("histograms") or {}).items():
            self.histogram(name).merge_state(hist_state)

    # -- persistence ---------------------------------------------------
    def persist(self, path: Union[str, Path]) -> None:
        """Merge counter *and histogram* deltas into the JSON file at
        ``path``, atomically.

        Counters accumulate exactly (only the delta since the last
        ``persist`` is added).  Histograms accumulate their exact
        moments (count/sum/min/max) the same way, plus a bounded value
        sample (:data:`PERSISTED_SAMPLE_SIZE`) merged by count-weighted
        subsampling -- so ``repro stats`` can show latency distributions
        *across* invocations, at the cost of percentiles being sample
        estimates once a series outgrows the stored sample.
        """
        snap_counters: Dict[str, int] = {}
        hists: List[Histogram] = []
        with self._lock:
            for metric in self._metrics.values():
                if isinstance(metric, Counter):
                    snap_counters[metric.name] = metric.value
                else:
                    hists.append(metric)
        deltas = {
            name: value - self._persisted.get(name, 0)
            for name, value in snap_counters.items()
        }
        deltas = {name: d for name, d in deltas.items() if d}
        hist_deltas: Dict[str, Dict[str, Any]] = {}
        hist_marks: Dict[str, tuple] = {}
        for h in hists:
            state = h.export_state()
            done_count, done_sum = self._persisted_hist.get(h.name, (0, 0.0))
            if state["count"] <= done_count:
                continue
            state["count"] -= done_count
            state["sum"] -= done_sum
            hist_deltas[h.name] = state
            hist_marks[h.name] = (state["count"] + done_count,
                                  state["sum"] + done_sum)
        if not deltas and not hist_deltas:
            return
        path = Path(path)
        stored: Dict[str, Any] = {"counters": {}, "histograms": {}}
        if path.exists():
            try:
                raw = json.loads(path.read_text())
                if isinstance(raw, dict):
                    stored["counters"] = dict(raw.get("counters", {}))
                    stored["histograms"] = dict(raw.get("histograms", {}))
            except (json.JSONDecodeError, OSError):
                pass
        for name, delta in deltas.items():
            stored["counters"][name] = stored["counters"].get(name, 0) + delta
        for name, state in hist_deltas.items():
            stored["histograms"][name] = _merge_stored_histogram(
                stored["histograms"].get(name), state
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(stored, f, indent=1)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self._persisted.update(snap_counters)
        self._persisted_hist.update(hist_marks)

    @staticmethod
    def load_persisted(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
        """Read a persisted metrics file; None if missing/corrupt."""
        path = Path(path)
        if not path.exists():
            return None
        try:
            raw = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            return None
        if not isinstance(raw, dict):
            return None
        return {
            "counters": dict(raw.get("counters", {})),
            "histograms": dict(raw.get("histograms", {})),
        }


def _rank_percentile(ordered: List[float], p: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not ordered:
        return math.nan
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def _sample_percentile(sample: List[float], p: float) -> float:
    return _rank_percentile(sorted(sample), p)


def _merge_stored_histogram(
    stored: Optional[Dict[str, Any]], delta: Dict[str, Any]
) -> Dict[str, Any]:
    """Merge one invocation's histogram delta into its stored entry.

    Moments (count/sum/min/max) merge exactly.  The value sample is a
    count-weighted subsample of (stored sample + fresh reservoir),
    capped at :data:`PERSISTED_SAMPLE_SIZE`.  Legacy summary-only
    entries (pre-sample format) carry no mergeable values and are
    replaced by the fresh state.
    """
    if not stored or "sample" not in stored:
        stored = {"count": 0, "sum": 0.0, "min": None, "max": None, "sample": []}
    new_count = stored["count"] + delta["count"]
    new_sum = stored["sum"] + delta["sum"]
    bounds = [
        v for v in (stored.get("min"), delta.get("min")) if v is not None
    ]
    new_min = min(bounds) if bounds else None
    bounds = [
        v for v in (stored.get("max"), delta.get("max")) if v is not None
    ]
    new_max = max(bounds) if bounds else None
    old_sample = list(stored.get("sample") or [])
    fresh = list(delta.get("values") or [])
    cap = PERSISTED_SAMPLE_SIZE
    if len(old_sample) + len(fresh) <= cap:
        sample = old_sample + fresh
    else:
        # Deterministic count-weighted subsample: the RNG seed folds in
        # the cumulative count so successive persists don't reuse the
        # same shuffle.
        rng = random.Random(new_count)
        k_fresh = min(
            len(fresh),
            max(1, round(cap * delta["count"] / max(1, new_count))),
        )
        k_old = min(len(old_sample), cap - k_fresh)
        sample = rng.sample(old_sample, k_old) + rng.sample(fresh, k_fresh)
    return {
        "count": new_count,
        "sum": new_sum,
        "min": new_min,
        "max": new_max,
        "sample": sample,
    }


def summarize_histogram_entry(entry: Dict[str, Any]) -> Dict[str, float]:
    """Normalize a histogram entry -- either a live ``summary()`` dict
    or a persisted sample entry -- into count/mean/p50/p95/p99/max."""
    count = int(entry.get("count", 0))
    if not count:
        return {"count": 0}
    if "sample" in entry:
        sample = list(entry.get("sample") or [])
        return {
            "count": count,
            "mean": float(entry.get("sum", 0.0)) / count,
            "p50": _sample_percentile(sample, 50),
            "p95": _sample_percentile(sample, 95),
            "p99": _sample_percentile(sample, 99),
            "max": entry.get("max", math.nan),
        }
    out = {"count": count}
    for key in ("mean", "p50", "p95", "p99", "max"):
        out[key] = float(entry.get(key, math.nan))
    return out


def format_report(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """Human-readable rendering of a :meth:`MetricsRegistry.snapshot`
    or of a persisted metrics file (histogram sample entries included)."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        lines.append("counters")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")
    if histograms:
        if lines:
            lines.append("")
        lines.append("histograms (count / mean / p50 / p95 / p99 / max)")
        width = max(len(n) for n in histograms)
        for name in sorted(histograms):
            s = summarize_histogram_entry(histograms[name])
            if not s.get("count"):
                lines.append(f"  {name:<{width}}  (empty)")
                continue
            vmax = s["max"]
            vmax = float(vmax) if vmax is not None else math.nan
            lines.append(
                f"  {name:<{width}}  {s['count']:d} / {s['mean']:.3g} / "
                f"{s['p50']:.3g} / {s['p95']:.3g} / {s['p99']:.3g} / "
                f"{vmax:.3g}"
            )
    if not lines:
        return "(no metrics recorded)"
    return "\n".join(lines)


#: The process-wide registry used by all instrumentation call-sites.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def histogram(name: str) -> Histogram:
    return _REGISTRY.histogram(name)

"""Cross-process telemetry propagation for pool workers.

The measurement pool (:mod:`repro.harness.measure`) runs design points
in ``ProcessPoolExecutor`` workers.  Without propagation, everything the
obs layer records inside a worker -- spans around compile/simulate, the
cache and simulation counters, per-pass histograms -- dies with the
worker, so ``repro trace`` shows a single opaque ``measure.batch`` box
and ``repro stats`` under-reports exactly when the pool is used.  This
module closes that gap with three small pieces:

``TelemetryContext`` / :func:`capture_context`
    A picklable snapshot of the parent's telemetry state: whether
    tracing is on, the trace id, the span that is dispatching work (so
    worker spans nest under it), and a wall-clock anchor that maps the
    worker's monotonic clock onto the parent's.
:func:`install_context` + :func:`begin_task` / :func:`collect_task`
    Worker-side: ``install_context`` runs in the pool initializer and
    configures the worker's tracer; ``begin_task``/``collect_task``
    bracket each task, resetting the worker's (fork-inherited) metrics
    and returning a :class:`WorkerTelemetry` payload of spans, counter
    deltas and histogram states produced *by that task*.
:func:`merge_worker_telemetry`
    Parent-side: folds a shipped payload back into the global tracer
    (fresh span ids, re-parented under the dispatching span, timestamps
    shifted onto the parent clock) and the global metrics registry.

Metrics always flow back -- counters merged this way are bit-identical
to a serial run of the same points.  Spans flow back only when the
parent had tracing enabled at dispatch time.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.metrics import get_registry
from repro.obs.trace import SpanRecord, get_tracer


def _wall_anchor() -> float:
    """This process's (wall clock - monotonic clock) offset.

    Two processes on one machine share the wall clock, so the
    difference of their anchors converts span timestamps between their
    monotonic clocks (on Linux ``perf_counter`` is already system-wide,
    making the correction ~0; the anchor keeps merged timelines honest
    on platforms with per-process monotonic epochs).
    """
    return time.time() - time.perf_counter()


@dataclass
class TelemetryContext:
    """Parent-side telemetry state shipped to pool workers."""

    trace_enabled: bool
    trace_id: str
    #: Span open in the parent when the pool was created (the batch
    #: span); worker task roots are re-parented under it on merge.
    parent_span_id: Optional[int]
    #: Parent's :func:`_wall_anchor`.
    epoch: float
    #: Pid of the capturing process (attrs / debugging only).
    parent_pid: int = 0


@dataclass
class WorkerTelemetry:
    """One task's telemetry, shipped from a worker back to the parent."""

    pid: int
    #: Worker's :func:`_wall_anchor`, for timestamp alignment.
    epoch: float
    #: Spans recorded during the task (empty when tracing is off).
    spans: List[SpanRecord] = field(default_factory=list)
    #: ``MetricsRegistry.export_state()`` of the task's deltas.
    metrics: Dict[str, Any] = field(default_factory=dict)


def capture_context() -> TelemetryContext:
    """Snapshot the calling (parent) process's telemetry state."""
    tracer = get_tracer()
    return TelemetryContext(
        trace_enabled=tracer.enabled,
        trace_id=tracer.trace_id,
        parent_span_id=tracer.current_span_id(),
        epoch=_wall_anchor(),
        parent_pid=os.getpid(),
    )


#: The context installed in this worker process (None in the parent).
_WORKER_CONTEXT: Optional[TelemetryContext] = None


def install_context(ctx: Optional[TelemetryContext]) -> None:
    """Adopt a parent's telemetry context (pool-initializer side).

    Resets the worker's tracer -- under a ``fork`` start method it
    inherits the parent's already-recorded spans, which must not be
    shipped back a second time -- and aligns its enabled flag and trace
    id with the parent's.
    """
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = ctx
    tracer = get_tracer()
    tracer.reset()
    if ctx is not None:
        tracer.enabled = ctx.trace_enabled
        tracer.trace_id = ctx.trace_id


def current_context() -> Optional[TelemetryContext]:
    return _WORKER_CONTEXT


def begin_task() -> None:
    """Start a task-local telemetry window (worker side).

    Zeroes the worker's metrics registry and span buffer so that
    :func:`collect_task` captures exactly this task's production.
    Counters under ``fork`` start with the parent's values baked in;
    resetting them (in place -- cached metric objects stay valid) is
    what makes the shipped values true deltas.
    """
    get_registry().reset()
    tracer = get_tracer()
    if tracer.enabled:
        tracer.reset()


def collect_task() -> WorkerTelemetry:
    """Collect the telemetry window opened by :func:`begin_task`."""
    tracer = get_tracer()
    return WorkerTelemetry(
        pid=os.getpid(),
        epoch=_wall_anchor(),
        spans=tracer.spans if tracer.enabled else [],
        metrics=get_registry().export_state(),
    )


def merge_worker_telemetry(
    telemetry: Optional[WorkerTelemetry],
    ctx: Optional[TelemetryContext] = None,
) -> None:
    """Fold a worker task's telemetry into this process (parent side).

    Metric deltas merge unconditionally (counters add, histogram
    reservoirs absorb the shipped samples with exact moment merging).
    Spans -- present only when tracing was on -- get fresh span ids,
    timestamps shifted onto this process's monotonic clock, and their
    roots parented under ``ctx.parent_span_id``.
    """
    if telemetry is None:
        return
    get_registry().merge_state(telemetry.metrics)
    if telemetry.spans:
        get_tracer().merge_remote(
            telemetry.spans,
            parent_id=ctx.parent_span_id if ctx is not None else None,
            time_shift=telemetry.epoch - _wall_anchor(),
        )

"""In-process tracing: nested spans with monotonic timestamps.

A *span* measures one named region of wall-clock time.  Spans nest: the
span opened most recently on the current thread becomes the parent of
the next one, so a dump reconstructs the full call tree (compile ->
opt passes -> isel/regalloc/sched, simulate -> sampled units, ...).

Tracing is off by default and the disabled path is deliberately cheap:
``span()`` performs one attribute check and returns a shared no-op
handle, so instrumentation can stay in hot-ish code (per SMARTS unit,
per optimization pass) without a measurable tax -- the regression test
in ``tests/test_obs.py`` holds it under 5% of a small ``build_model``
run.

Enable with the ``REPRO_TRACE`` environment variable (any value other
than ``0/off/false/no/none``), programmatically via
:func:`enable_tracing`, or through the CLI wrapper ``repro trace <cmd>``.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


def _env_truthy(value: Optional[str]) -> bool:
    if value is None:
        return False
    return value.strip().lower() not in ("", "0", "off", "false", "no", "none")


@dataclass
class SpanRecord:
    """One finished span, as stored by the tracer and the exporters."""

    name: str
    span_id: int
    parent_id: Optional[int]
    thread_id: int
    #: Seconds on the tracer's monotonic clock (``time.perf_counter``).
    start: float
    #: Wall-clock duration in seconds.
    duration: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: OS process id the span was recorded in.  Spans merged from pool
    #: workers keep their worker pid, which is how the Chrome-trace
    #: exporter lays one timeline out per process.
    pid: int = 0


class _NullSpan:
    """Shared no-op span handle returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set_attr(self, name: str, value: Any) -> None:
        pass

    def set_attrs(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """A live span; records itself on the tracer when the block exits."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self._start = 0.0

    def set_attr(self, name: str, value: Any) -> None:
        self.attrs[name] = value

    def set_attrs(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        stack = tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.span_id = next(tracer._ids)
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        duration = time.perf_counter() - self._start
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # unbalanced exit (generator abandoned, ...): best effort
            try:
                stack.remove(self)
            except ValueError:
                pass
        self._tracer._record(
            SpanRecord(
                name=self.name,
                span_id=self.span_id,
                parent_id=self.parent_id,
                thread_id=threading.get_ident(),
                start=self._start,
                duration=duration,
                attrs=self.attrs,
                pid=os.getpid(),
            )
        )
        return False


class Tracer:
    """Thread-safe collector of finished :class:`SpanRecord` objects.

    Each thread keeps its own span stack (parenting never crosses
    threads); the finished-span list is shared under a lock.
    """

    def __init__(self, enabled: Optional[bool] = None):
        if enabled is None:
            enabled = _env_truthy(os.environ.get("REPRO_TRACE"))
        self.enabled = enabled
        #: Identifies one logical trace across every process that
        #: contributes spans to it; pool workers adopt the parent's id.
        self.trace_id = uuid.uuid4().hex[:16]
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._spans: List[SpanRecord] = []

    # -- internal ------------------------------------------------------
    def _stack(self) -> List[_ActiveSpan]:
        try:
            return self._local.stack
        except AttributeError:
            stack: List[_ActiveSpan] = []
            self._local.stack = stack
            return stack

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._spans.append(record)

    # -- public --------------------------------------------------------
    def span(self, name: str, **attrs: Any):
        """Open a span; use as ``with tracer.span("name", k=v) as sp:``."""
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, attrs)

    @property
    def spans(self) -> List[SpanRecord]:
        """A snapshot copy of all finished spans."""
        with self._lock:
            return list(self._spans)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop collected spans (and this thread's open-span stack)."""
        with self._lock:
            self._spans.clear()
        self._local.stack = []

    def current_span_id(self) -> Optional[int]:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def merge_remote(
        self,
        records: Sequence[SpanRecord],
        parent_id: Optional[int] = None,
        time_shift: float = 0.0,
    ) -> List[SpanRecord]:
        """Adopt spans recorded by another process into this tracer.

        Worker span ids were allocated by the worker's own counter, so
        they are remapped onto fresh ids from this tracer (collisions
        with local spans are otherwise guaranteed -- both counters start
        at 1).  Parent/child links *within* the batch are preserved;
        worker-root spans (and spans whose parent was not shipped) are
        re-parented under ``parent_id``, typically the span that was
        open when the worker task was dispatched.  ``time_shift`` is
        added to every start timestamp to place the spans on this
        process's monotonic clock (see
        :func:`repro.obs.context.merge_worker_telemetry`).

        Returns the adopted records (with their new ids).
        """
        records = list(records)
        if not records:
            return []
        with self._lock:
            mapping = {r.span_id: next(self._ids) for r in records}
        adopted = [
            SpanRecord(
                name=r.name,
                span_id=mapping[r.span_id],
                parent_id=(
                    mapping.get(r.parent_id, parent_id)
                    if r.parent_id is not None
                    else parent_id
                ),
                thread_id=r.thread_id,
                start=r.start + time_shift,
                duration=r.duration,
                attrs=r.attrs,
                pid=r.pid,
            )
            for r in records
        ]
        with self._lock:
            self._spans.extend(adopted)
        return adopted


#: The process-wide tracer used by all instrumentation call-sites.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def span(name: str, **attrs: Any):
    """Open a span on the global tracer (no-op unless tracing is on)."""
    if not _TRACER.enabled:  # the entire disabled fast path
        return _NULL_SPAN
    return _ActiveSpan(_TRACER, name, attrs)


def enable_tracing() -> None:
    _TRACER.enable()


def disable_tracing() -> None:
    _TRACER.disable()


def reset_tracing() -> None:
    _TRACER.reset()


def tracing_enabled() -> bool:
    return _TRACER.enabled

"""Append-only provenance ledger: every run leaves a verifiable trail.

The paper's empirical models are only trustworthy if a served prediction
can be traced back to the measurements that produced it.  The ledger
makes that chain durable: each measurement batch, model fit, registry
publish, serve session, and fired alert appends one schema-versioned
JSON line to ``ledger.jsonl``, linked by a per-process *run id* and by
explicit references (measurement result keys, config digests, model
content digests, registry names).

``repro lineage <model-ref>`` walks the chain backwards from a registry
model: which fit produced it, which measurement batches fed that fit
(down to the simulator result keys and compiler/microarch config
digests), and which serve sessions have since exposed it.

Writes reuse the measurement cache's concurrency discipline: an ``flock``
on a sibling ``.lock`` file serializes appenders, and each event is a
single ``O_APPEND`` write of one line, so concurrent processes (pool
workers, a serving tier, CI legs sharing a cache directory) interleave
whole events and never corrupt each other.  The file is append-only;
the only rewrite is an explicit :meth:`Ledger.compact`, which applies
the same retention policy as ``repro trace --gc`` and records itself as
a ``compact`` event.

Enable/disable and placement follow the metrics persistence rules:
events land in ``$REPRO_LEDGER_PATH`` when set, otherwise in
``<$REPRO_CACHE_DIR>/ledger.jsonl`` (default ``.repro_cache``);
``REPRO_LEDGER=off`` disables recording entirely, as does a disabled
cache directory (``REPRO_CACHE_DIR=off``) without an explicit path.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

#: Bump on any incompatible change to the event layout.
LEDGER_SCHEMA_VERSION = 1

#: Event kinds written by the built-in instrumentation.  ``append`` also
#: accepts arbitrary kinds so downstream layers (active learning, CI)
#: can extend the vocabulary without touching this module.
KNOWN_KINDS = (
    "measure_batch",
    "model_fit",
    "registry_publish",
    "serve_session",
    "alert",
    "compact",
)

#: Result-key lists on ``measure_batch`` events are capped at this many
#: entries (the full count is always recorded as ``n_points``); lineage
#: stays exact for model-building batch sizes while a million-point
#: sweep cannot bloat the ledger.
MAX_RESULT_KEYS_PER_EVENT = 256

#: One id per process: every event it appends carries this, which is
#: what lets lineage correlate a fit with the measurement batches that
#: fed it without plumbing identifiers through every call chain.
RUN_ID = uuid.uuid4().hex[:12]


@dataclass
class LedgerEvent:
    """One parsed ledger line."""

    kind: str
    ts: float
    run: str
    event_id: str
    pid: int
    attrs: Dict[str, Any] = field(default_factory=dict)
    refs: Dict[str, Any] = field(default_factory=dict)
    schema: int = LEDGER_SCHEMA_VERSION

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": self.schema,
                "id": self.event_id,
                "run": self.run,
                "kind": self.kind,
                "ts": self.ts,
                "pid": self.pid,
                "attrs": self.attrs,
                "refs": self.refs,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, raw: Union[str, bytes]) -> "LedgerEvent":
        obj = json.loads(raw)
        if not isinstance(obj, dict):
            raise ValueError("ledger event must be a JSON object")
        return cls(
            kind=str(obj["kind"]),
            ts=float(obj["ts"]),
            run=str(obj.get("run", "")),
            event_id=str(obj.get("id", "")),
            pid=int(obj.get("pid", 0)),
            attrs=dict(obj.get("attrs") or {}),
            refs=dict(obj.get("refs") or {}),
            schema=int(obj.get("schema", 0)),
        )


@dataclass
class VerifyReport:
    """Outcome of :meth:`Ledger.verify`."""

    n_events: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    issues: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def summary(self) -> str:
        lines = [f"{self.n_events} event(s)"]
        for kind in sorted(self.by_kind):
            lines.append(f"  {kind:<18} {self.by_kind[kind]}")
        if self.issues:
            lines.append(f"{len(self.issues)} issue(s):")
            lines.extend(f"  {i}" for i in self.issues)
        else:
            lines.append("ledger verified: no issues")
        return "\n".join(lines)


@dataclass
class Lineage:
    """The reconstructed provenance chain of one registry model."""

    ref: str
    #: Content digest the ref resolved to (None if unresolvable).
    model_id: Optional[str]
    publishes: List[LedgerEvent] = field(default_factory=list)
    fits: List[LedgerEvent] = field(default_factory=list)
    batches: List[LedgerEvent] = field(default_factory=list)
    serves: List[LedgerEvent] = field(default_factory=list)
    alerts: List[LedgerEvent] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when the full publish->fit->measurements chain exists."""
        return bool(self.publishes and self.fits and self.batches)

    def result_keys(self) -> List[str]:
        """Every measurement result key feeding this model, deduplicated
        in first-seen order."""
        seen: Dict[str, None] = {}
        for e in self.batches:
            for key in e.refs.get("result_keys") or []:
                seen.setdefault(key, None)
        return list(seen)

    def to_dict(self) -> Dict[str, Any]:
        def dump(events: List[LedgerEvent]) -> List[Dict[str, Any]]:
            return [json.loads(e.to_json()) for e in events]

        return {
            "ref": self.ref,
            "model_id": self.model_id,
            "complete": self.complete,
            "publishes": dump(self.publishes),
            "fits": dump(self.fits),
            "measure_batches": dump(self.batches),
            "serve_sessions": dump(self.serves),
            "alerts": dump(self.alerts),
            "result_keys": self.result_keys(),
        }

    def describe(self) -> str:
        """Human-readable chain, newest publish first."""
        lines = [f"lineage of {self.ref!r} (object {self.model_id or '?'})"]
        if not self.publishes:
            lines.append("  no registry_publish event recorded")
        for pub in self.publishes:
            a = pub.attrs
            lines.append(
                f"  published {_when(pub.ts)} as {a.get('name')!r} "
                f"(family {a.get('family')}, run {pub.run})"
            )
        for fit in self.fits:
            a = fit.attrs
            lines.append(
                f"  fitted    {_when(fit.ts)}: {a.get('family', '?')} on "
                f"{a.get('workload', '?')}/{a.get('input', '?')}, "
                f"{a.get('n_samples', '?')} samples, "
                f"test error {_fmt(a.get('test_error_pct'))}%"
            )
        keys = self.result_keys()
        if self.batches:
            n_points = sum(int(e.attrs.get("n_points", 0)) for e in self.batches)
            n_misses = sum(int(e.attrs.get("n_misses", 0)) for e in self.batches)
            lines.append(
                f"  measured  {len(self.batches)} batch(es): {n_points} "
                f"point(s), {n_misses} simulator run(s), "
                f"{len(keys)} unique result key(s)"
            )
            for e in self.batches:
                lines.append(
                    f"    {_when(e.ts)}  {e.attrs.get('workload', '?')}"
                    f"/{e.attrs.get('input', '?')}  "
                    f"{e.attrs.get('n_points', '?')} pts  "
                    f"config digest {e.refs.get('config_digest', '?')}"
                )
        else:
            lines.append("  no measure_batch events recorded")
        if self.serves:
            for e in self.serves:
                a = e.attrs
                phase = a.get("phase", "?")
                extra = ""
                if phase == "end":
                    extra = (
                        f", {a.get('requests', 0)} request(s), "
                        f"error rate {_fmt(a.get('error_rate'))}"
                    )
                lines.append(
                    f"  served    {_when(e.ts)} [{phase}] "
                    f"on {a.get('address', '?')}{extra}"
                )
        else:
            lines.append("  no serve sessions recorded")
        for e in self.alerts:
            lines.append(
                f"  ALERT     {_when(e.ts)}  {e.attrs.get('rule')}: "
                f"{e.attrs.get('message')}"
            )
        lines.append(f"  chain {'COMPLETE' if self.complete else 'INCOMPLETE'}")
        return "\n".join(lines)


def _when(ts: float) -> str:
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(ts))


def _fmt(value: Any) -> str:
    try:
        return f"{float(value):.3g}"
    except (TypeError, ValueError):
        return "?"


class Ledger:
    """Append-only JSONL event log with flock-serialized writers.

    Parameters
    ----------
    path:
        The ``ledger.jsonl`` file; parent directories are created on
        first append.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def _file_lock(self) -> Iterator[None]:
        """Cross-process append serialization (same pattern as the
        measurement cache: POSIX flock on a sibling lock file; elsewhere
        O_APPEND alone keeps whole-line writes from interleaving)."""
        try:
            import fcntl
        except ImportError:
            yield
            return
        lock_path = self.path.with_suffix(".lock")
        with open(lock_path, "w") as lk:
            fcntl.flock(lk, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lk, fcntl.LOCK_UN)

    def append(
        self,
        kind: str,
        attrs: Optional[Dict[str, Any]] = None,
        refs: Optional[Dict[str, Any]] = None,
    ) -> LedgerEvent:
        """Record one event; returns it (with its generated id)."""
        event = LedgerEvent(
            kind=kind,
            ts=time.time(),
            run=RUN_ID,
            event_id=uuid.uuid4().hex[:16],
            pid=os.getpid(),
            attrs=dict(attrs or {}),
            refs=dict(refs or {}),
        )
        line = (event.to_json() + "\n").encode()
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._file_lock():
                fd = os.open(
                    self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
                try:
                    os.write(fd, line)
                finally:
                    os.close(fd)
        return event

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def events(
        self,
        kind: Optional[str] = None,
        run: Optional[str] = None,
        since: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[LedgerEvent]:
        """Parse the ledger, oldest first; corrupt lines are skipped
        (use :meth:`verify` to surface them)."""
        out: List[LedgerEvent] = []
        for _lineno, event, _err in self._scan():
            if event is None:
                continue
            if kind is not None and event.kind != kind:
                continue
            if run is not None and event.run != run:
                continue
            if since is not None and event.ts < since:
                continue
            out.append(event)
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def _scan(self):
        """Yield (lineno, event-or-None, error-or-None) per line."""
        if not self.path.exists():
            return
        try:
            raw_lines = self.path.read_bytes().splitlines()
        except OSError:
            return
        for lineno, raw in enumerate(raw_lines, 1):
            if not raw.strip():
                continue
            try:
                yield lineno, LedgerEvent.from_json(raw), None
            except (ValueError, KeyError, TypeError) as e:
                yield lineno, None, f"line {lineno}: {e}"

    def verify(self) -> VerifyReport:
        """Check every line parses, schema versions match, and event ids
        are unique; returns the per-kind census plus any issues."""
        report = VerifyReport()
        seen_ids: Dict[str, int] = {}
        last_ts_by_run: Dict[str, float] = {}
        for lineno, event, err in self._scan():
            if err is not None:
                report.issues.append(f"unparseable {err}")
                continue
            report.n_events += 1
            report.by_kind[event.kind] = report.by_kind.get(event.kind, 0) + 1
            if event.schema != LEDGER_SCHEMA_VERSION:
                report.issues.append(
                    f"line {lineno}: schema {event.schema} != "
                    f"{LEDGER_SCHEMA_VERSION}"
                )
            if not event.event_id:
                report.issues.append(f"line {lineno}: missing event id")
            elif event.event_id in seen_ids:
                report.issues.append(
                    f"line {lineno}: duplicate event id {event.event_id} "
                    f"(first at line {seen_ids[event.event_id]})"
                )
            else:
                seen_ids[event.event_id] = lineno
            # Within one run (process) timestamps must not go backwards;
            # across runs the interleaving is arbitrary.
            prev = last_ts_by_run.get(event.run)
            if prev is not None and event.ts < prev - 1.0:
                report.issues.append(
                    f"line {lineno}: run {event.run} time went backwards "
                    f"({event.ts:.3f} < {prev:.3f})"
                )
            last_ts_by_run[event.run] = max(
                event.ts, last_ts_by_run.get(event.run, event.ts)
            )
        return report

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def compact(
        self,
        max_age_s: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> Dict[str, int]:
        """Drop events older than ``max_age_s`` and/or beyond the newest
        ``max_events``, atomically rewriting the file under the append
        lock.  ``alert`` events are always kept (they are the record an
        operator audits after the fact).  Appends a ``compact`` event
        describing what was dropped; returns ``{"kept": n, "dropped": m}``.
        """
        with self._lock, self._file_lock():
            events = [e for _, e, _ in self._scan() if e is not None]
            cutoff = time.time() - max_age_s if max_age_s is not None else None
            keep: List[LedgerEvent] = []
            dropped = 0
            for e in events:
                if e.kind != "alert" and cutoff is not None and e.ts < cutoff:
                    dropped += 1
                    continue
                keep.append(e)
            if max_events is not None and max_events >= 0:
                droppable = [i for i, e in enumerate(keep) if e.kind != "alert"]
                excess = len(keep) - max_events
                if excess > 0:
                    to_drop = set(droppable[:excess])
                    dropped += len(to_drop)
                    keep = [e for i, e in enumerate(keep) if i not in to_drop]
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as f:
                    for e in keep:
                        f.write(e.to_json() + "\n")
                os.replace(tmp, self.path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        if dropped:
            self.append(
                "compact", attrs={"dropped": dropped, "kept": len(keep)}
            )
        return {"kept": len(keep), "dropped": dropped}

    # ------------------------------------------------------------------
    # Lineage
    # ------------------------------------------------------------------
    def lineage(self, ref: str, registry=None) -> Lineage:
        """Reconstruct the provenance chain of a registry model.

        ``ref`` is a registry name or content digest; when ``registry``
        (a :class:`repro.serve.registry.ModelRegistry`) is given the ref
        is resolved through it, otherwise resolution falls back to the
        ledger's own ``registry_publish`` events.
        """
        model_id: Optional[str] = None
        if registry is not None:
            try:
                model_id = registry.resolve(ref)
            except Exception:  # noqa: BLE001 - registry may be elsewhere
                model_id = None
        events = self.events()
        publishes = [
            e
            for e in events
            if e.kind == "registry_publish"
            and (
                e.refs.get("model_id") == model_id
                or e.refs.get("model_id") == ref
                or e.attrs.get("name") == ref
            )
        ]
        if model_id is None and publishes:
            # Newest publish under this name defines the digest, exactly
            # like the registry's own name pointer.
            model_id = publishes[-1].refs.get("model_id")
            publishes = [
                e for e in publishes if e.refs.get("model_id") == model_id
            ]
        runs = {e.run for e in publishes}
        fits = [e for e in events if e.kind == "model_fit" and e.run in runs]
        fit_workloads = {
            (e.attrs.get("workload"), e.attrs.get("input")) for e in fits
        }
        batches = [
            e
            for e in events
            if e.kind == "measure_batch"
            and e.run in runs
            and (
                not fit_workloads
                or (e.attrs.get("workload"), e.attrs.get("input"))
                in fit_workloads
            )
        ]
        serves = [
            e
            for e in events
            if e.kind == "serve_session"
            and (
                model_id in (e.refs.get("model_ids") or [])
                or ref in (e.refs.get("model_names") or [])
            )
        ]
        alerts = [
            e
            for e in events
            if e.kind == "alert"
            and (
                e.refs.get("model_id") == model_id
                or e.run in runs
                or e.run in {s.run for s in serves}
            )
        ]
        return Lineage(
            ref=ref,
            model_id=model_id,
            publishes=publishes,
            fits=fits,
            batches=batches,
            serves=serves,
            alerts=alerts,
        )


# ----------------------------------------------------------------------
# Process-wide default ledger (mirrors the metrics persistence rules)
# ----------------------------------------------------------------------
_DEFAULT: Optional[Ledger] = None
_DEFAULT_RESOLVED = False
_DEFAULT_LOCK = threading.Lock()


def default_ledger_path() -> Optional[Path]:
    """Where events go by default; None when recording is disabled."""
    if os.environ.get("REPRO_LEDGER", "").strip().lower() in (
        "0",
        "off",
        "false",
        "no",
        "none",
    ):
        return None
    explicit = os.environ.get("REPRO_LEDGER_PATH", "").strip()
    if explicit:
        return Path(explicit)
    cache_dir = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    if cache_dir.lower() in ("0", "off", "none", ""):
        return None
    return Path(cache_dir) / "ledger.jsonl"


def default_ledger() -> Optional[Ledger]:
    """The process-wide ledger, or None when recording is disabled."""
    global _DEFAULT, _DEFAULT_RESOLVED
    with _DEFAULT_LOCK:
        if not _DEFAULT_RESOLVED:
            path = default_ledger_path()
            _DEFAULT = Ledger(path) if path is not None else None
            _DEFAULT_RESOLVED = True
        return _DEFAULT


def set_default_ledger(ledger: Optional[Ledger]) -> None:
    """Override (or with None, disable) the process-wide ledger --
    primarily for tests and embedding applications."""
    global _DEFAULT, _DEFAULT_RESOLVED
    with _DEFAULT_LOCK:
        _DEFAULT = ledger
        _DEFAULT_RESOLVED = True


def reset_default_ledger() -> None:
    """Forget any override; the next :func:`default_ledger` re-reads the
    environment."""
    global _DEFAULT, _DEFAULT_RESOLVED
    with _DEFAULT_LOCK:
        _DEFAULT = None
        _DEFAULT_RESOLVED = False


def record_event(
    kind: str,
    attrs: Optional[Dict[str, Any]] = None,
    refs: Optional[Dict[str, Any]] = None,
) -> Optional[LedgerEvent]:
    """Append to the default ledger; silently a no-op when recording is
    disabled or the filesystem refuses -- provenance must never break
    the measurement it describes."""
    ledger = default_ledger()
    if ledger is None:
        return None
    try:
        return ledger.append(kind, attrs=attrs, refs=refs)
    except OSError:
        return None


def cap_result_keys(keys: Sequence[str]) -> List[str]:
    """Bound a result-key list for embedding in one event."""
    return list(keys[:MAX_RESULT_KEYS_PER_EVENT])

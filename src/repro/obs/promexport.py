"""Prometheus text-format exposition for the metrics registry.

Zero-dependency ``/metrics``: counters and histograms from
:mod:`repro.obs.metrics` rendered in the Prometheus text exposition
format (version 0.0.4) and served by a stdlib ``ThreadingHTTPServer``.
Attach it to a long-running process with ``repro serve --metrics-port``
or ``repro measure --metrics-port`` and point a Prometheus scraper (or
``repro top`` / ``repro monitor --scrape``) at it.

Name mapping
------------
Registry names are dotted (``serve.server.requests``); Prometheus names
must match ``[a-zA-Z_:][a-zA-Z0-9_:]*``.  Dots map to underscores, a
``repro_`` prefix namespaces everything, and counters get the
conventional ``_total`` suffix.  Each family's ``# HELP`` line carries
the original dotted name, which is how :func:`snapshot_from_prometheus`
maps a scrape *back* into registry naming -- the monitor and dashboard
therefore speak one series vocabulary regardless of the transport.

Histograms are exposed as Prometheus *summaries*: ``{quantile="0.5"}``
/ ``0.95`` / ``0.99`` sample series plus ``_sum`` and ``_count``, which
is the honest mapping for reservoir-sampled percentiles (no fixed
buckets exist to expose as a native histogram).
"""

from __future__ import annotations

import http.server
import math
import re
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    summarize_histogram_entry,
)

#: Extra metric families contributed by the embedding process (e.g. the
#: prediction server's RED gauges): a callable returning
#: ``{dotted_name: (type, value_or_quantiles)}`` -- see
#: :func:`render_prometheus`.
Collector = Callable[[], Dict[str, Tuple[str, Any]]]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"  # metric name
    r"(?:\{([^}]*)\})?"  # optional labels
    r"\s+(-?(?:[0-9.eE+-]+|[Nn]a[Nn]|[+-]?[Ii]nf))$"  # value
)
_LABEL = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')

_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def sanitize_metric_name(name: str) -> str:
    """Dotted registry name -> valid Prometheus metric name."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not re.match(r"[a-zA-Z_:]", out[0]):
        out = "_" + out
    return f"repro_{out}"


def _fmt_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def render_prometheus(
    snapshot: Optional[Dict[str, Dict[str, Any]]] = None,
    collectors: Tuple[Collector, ...] = (),
) -> str:
    """Render a metrics snapshot (default: the live global registry) as
    Prometheus text-format exposition.

    ``collectors`` contribute additional families; each returns
    ``{dotted_name: ("gauge"|"counter", float)}`` or, for summaries,
    ``{dotted_name: ("summary", {"p50": ..., "p95": ..., "p99": ...,
    "count": ..., "sum": ...})}``.
    """
    if snapshot is None:
        snapshot = get_registry().snapshot()
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        prom = sanitize_metric_name(name) + "_total"
        lines.append(f"# HELP {prom} repro counter {name}")
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_fmt_value(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        entry = summarize_histogram_entry(snapshot["histograms"][name])
        prom = sanitize_metric_name(name)
        lines.append(f"# HELP {prom} repro histogram {name}")
        lines.append(f"# TYPE {prom} summary")
        count = int(entry.get("count", 0))
        mean = float(entry.get("mean", 0.0)) if count else 0.0
        for q, key in _QUANTILES:
            value = entry.get(key, math.nan) if count else math.nan
            lines.append(f'{prom}{{quantile="{q}"}} {_fmt_value(value)}')
        lines.append(f"{prom}_sum {_fmt_value(mean * count)}")
        lines.append(f"{prom}_count {count}")
    for collect in collectors:
        for name, (kind, value) in sorted(collect().items()):
            prom = sanitize_metric_name(name)
            if kind == "counter":
                prom += "_total"
            lines.append(f"# HELP {prom} repro {kind} {name}")
            if kind == "summary":
                lines.append(f"# TYPE {prom} summary")
                for q, key in _QUANTILES:
                    lines.append(
                        f'{prom}{{quantile="{q}"}} '
                        f"{_fmt_value(value.get(key, math.nan))}"
                    )
                lines.append(f"{prom}_sum {_fmt_value(value.get('sum', 0.0))}")
                lines.append(f"{prom}_count {int(value.get('count', 0))}")
            else:
                lines.append(f"# TYPE {prom} {kind}")
                lines.append(f"{prom} {_fmt_value(value)}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Validation + parsing (used by tests, CI smoke scrapes, monitor, top)
# ----------------------------------------------------------------------
def validate_prometheus_text(text: str) -> List[str]:
    """Check ``text`` against the exposition-format grammar; returns a
    list of problems (empty = valid)."""
    problems: List[str] = []
    typed: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "summary",
                "histogram",
                "untyped",
            ):
                problems.append(f"line {lineno}: malformed TYPE line")
            elif not _NAME_OK.match(parts[2]):
                problems.append(f"line {lineno}: bad metric name {parts[2]!r}")
            elif parts[2] in typed:
                problems.append(f"line {lineno}: duplicate TYPE for {parts[2]}")
            else:
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            if not line.startswith("# HELP ") and not line.startswith("# TYPE"):
                problems.append(f"line {lineno}: unknown comment form")
            continue
        m = _SAMPLE_LINE.match(line)
        if not m:
            problems.append(f"line {lineno}: malformed sample {line!r}")
            continue
        name, labels, _value = m.groups()
        base = re.sub(r"_(sum|count|total|bucket)$", "", name)
        if name not in typed and base not in typed:
            problems.append(f"line {lineno}: sample {name!r} has no TYPE")
        if labels:
            for pair in labels.split(","):
                if pair and not _LABEL.match(pair.strip()):
                    problems.append(
                        f"line {lineno}: malformed label pair {pair!r}"
                    )
    if not typed:
        problems.append("no metric families found")
    return problems


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse exposition text into
    ``{prom_name: {"type": ..., "help": ..., "samples": {label_key: value}}}``
    where ``label_key`` is ``""`` for unlabelled samples or e.g.
    ``quantile=0.95``; ``_sum``/``_count`` land under their family."""
    families: Dict[str, Dict[str, Any]] = {}

    def family(name: str) -> Dict[str, Any]:
        return families.setdefault(
            name, {"type": "untyped", "help": "", "samples": {}}
        )

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) == 4:
                family(parts[2])["help"] = parts[3]
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) == 4:
                family(parts[2])["type"] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE_LINE.match(line)
        if not m:
            continue
        name, labels, value = m.groups()
        suffix = ""
        base = name
        for s in ("_sum", "_count"):
            if name.endswith(s) and name[: -len(s)] in families:
                base, suffix = name[: -len(s)], s
                break
        key = suffix.lstrip("_")
        if labels:
            key = ",".join(
                sorted(p.strip().replace('"', "") for p in labels.split(","))
            )
        family(base)["samples"][key] = float(value)
    return families


def snapshot_from_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Invert a scrape back into registry-shaped naming.

    Families whose HELP line carries the original dotted name (the ones
    this module rendered) come back under that name; counters land in
    ``"counters"``, summaries in ``"histograms"`` with
    count/mean/p50/p95/p99 entries, gauges in ``"gauges"``.
    """
    snapshot: Dict[str, Dict[str, Any]] = {
        "counters": {},
        "histograms": {},
        "gauges": {},
    }
    for prom_name, fam in parse_prometheus(text).items():
        help_text = fam.get("help", "")
        m = re.match(r"^repro (?:counter|histogram|gauge|summary) (\S+)$", help_text)
        dotted = m.group(1) if m else prom_name
        samples = fam["samples"]
        if fam["type"] == "counter":
            snapshot["counters"][dotted] = samples.get("", 0.0)
        elif fam["type"] == "summary":
            count = int(samples.get("count", 0))
            total = float(samples.get("sum", 0.0))
            entry = {
                "count": count,
                "mean": total / count if count else 0.0,
                "p50": samples.get("quantile=0.5", math.nan),
                "p95": samples.get("quantile=0.95", math.nan),
                "p99": samples.get("quantile=0.99", math.nan),
                "max": math.nan,
            }
            snapshot["histograms"][dotted] = entry
        else:
            snapshot["gauges"][dotted] = samples.get("", 0.0)
    return snapshot


# ----------------------------------------------------------------------
# HTTP endpoint
# ----------------------------------------------------------------------
class _MetricsHandler(http.server.BaseHTTPRequestHandler):
    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = self.server.exporter.render().encode()
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path == "/healthz":
            body = b"ok\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_error(404, "try /metrics or /healthz")

    def log_message(self, *args: Any) -> None:
        pass  # scrapes every few seconds must not spam the console


class _MetricsHTTPD(http.server.ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    exporter: "MetricsHTTPServer"


class MetricsHTTPServer:
    """Serve ``/metrics`` (and ``/healthz``) from a daemon thread.

    Parameters
    ----------
    port / host:
        Bind address; port 0 picks an ephemeral port (see ``address``).
    registry:
        Metrics source (default: the process-global registry).
    collectors:
        Extra :data:`Collector` callables merged into every scrape.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[MetricsRegistry] = None,
        collectors: Tuple[Collector, ...] = (),
    ):
        self.registry = registry or get_registry()
        self.collectors = tuple(collectors)
        self._httpd = _MetricsHTTPD((host, port), _MetricsHandler)
        self._httpd.exporter = self
        self._thread: Optional[threading.Thread] = None
        self.scrapes = 0
        self._scrape_lock = threading.Lock()

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}/metrics"

    def render(self) -> str:
        with self._scrape_lock:
            self.scrapes += 1
        return render_prometheus(
            self.registry.snapshot(), collectors=self.collectors
        )

    def start(self) -> "MetricsHTTPServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


def start_metrics_server(
    port: int,
    host: str = "127.0.0.1",
    collectors: Tuple[Collector, ...] = (),
) -> MetricsHTTPServer:
    """Convenience: construct + start a :class:`MetricsHTTPServer`."""
    return MetricsHTTPServer(port=port, host=host, collectors=collectors).start()


def scrape(url: str, timeout: float = 5.0) -> str:
    """Fetch one exposition document (stdlib urllib; http(s) only)."""
    from urllib.request import urlopen

    if not url.startswith(("http://", "https://")):
        raise ValueError(f"refusing non-http metrics url {url!r}")
    with urlopen(url, timeout=timeout) as resp:  # noqa: S310 - checked above
        return resp.read().decode()

"""Machine-readable benchmark harness with a regression gate.

``repro bench`` runs the scenarios published by ``benchmarks/bench_*.py``
and writes one schema-versioned ``BENCH_<name>.json`` per scenario at
the repo root -- environment metadata, wall-clock, and the scenario's
own metrics (throughput, latency, speedup...).  Committing those files
turns the perf trajectory into reviewable diffs: every PR's bench run
compares against the previous JSON and the gate fails on metrics that
moved more than the scenario's threshold in the bad direction.

A benchmark module opts in by defining a module-level ``BENCH_SCENARIO``
(a :class:`BenchScenario`); its ``run(quick)`` callable returns a flat
``{metric_name: float}`` dict.  ``gates`` names the metrics the
regression gate watches and which direction is good::

    BENCH_SCENARIO = BenchScenario(
        name="serve_throughput",
        description="predictions/s through the serve tier",
        run=_bench,                      # (quick: bool) -> {"warm_preds_per_s": ...}
        gates={"warm_preds_per_s": "higher"},
        threshold_pct=50.0,
    )

Ungated metrics are recorded for trend-watching but never fail the run.
Thresholds are deliberately generous by default -- CI machines vary a
lot; the gate exists to catch *catastrophic* regressions (an accidental
O(n^2), a lost cache), not 5% noise.
"""

from __future__ import annotations

import importlib.util
import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

PathLike = Union[str, Path]

#: Bump when the BENCH_*.json layout changes incompatibly.
SCHEMA_VERSION = 1

#: Gate directions: which way is *good* for a metric.
_DIRECTIONS = ("lower", "higher")


@dataclass
class BenchScenario:
    """One runnable benchmark scenario.

    ``run(quick)`` must return a flat ``{metric: float}`` dict.  The
    ``quick`` flag asks for a CI-sized variant (smaller workload, fewer
    repeats); results from quick and full runs are still written to the
    same file, distinguished by the ``"quick"`` field.
    """

    name: str
    description: str
    run: Callable[[bool], Dict[str, float]]
    #: ``{metric: "lower"|"higher"}`` -- which direction is good.
    gates: Dict[str, str] = field(default_factory=dict)
    #: Regression threshold: gate fails when a gated metric worsens by
    #: more than this percentage versus the baseline.
    threshold_pct: float = 50.0

    def __post_init__(self) -> None:
        for metric, direction in self.gates.items():
            if direction not in _DIRECTIONS:
                raise ValueError(
                    f"gate {metric!r}: direction must be one of "
                    f"{_DIRECTIONS}, got {direction!r}"
                )


@dataclass
class GateFinding:
    """One gated-metric comparison against a baseline."""

    scenario: str
    metric: str
    direction: str
    baseline: float
    current: float
    #: Percent change in the *bad* direction (negative = improvement).
    change_pct: float
    threshold_pct: float
    regressed: bool

    def describe(self) -> str:
        verb = "REGRESSED" if self.regressed else "ok"
        return (
            f"[{verb}] {self.scenario}.{self.metric} "
            f"({self.direction} is better): "
            f"{self.baseline:.4g} -> {self.current:.4g} "
            f"({self.change_pct:+.1f}% vs threshold {self.threshold_pct:.0f}%)"
        )


def bench_environment() -> Dict[str, object]:
    """Host/environment metadata recorded alongside each result."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "pid": os.getpid(),
        "argv": list(sys.argv),
    }


def bench_json_path(out_dir: PathLike, name: str) -> Path:
    return Path(out_dir) / f"BENCH_{name}.json"


def write_bench_json(
    out_dir: PathLike,
    scenario: BenchScenario,
    metrics: Dict[str, float],
    *,
    quick: bool,
    elapsed_s: float,
) -> Path:
    """Write (atomically) the schema-versioned result file for one run."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "name": scenario.name,
        "description": scenario.description,
        "quick": quick,
        "created_unix": time.time(),
        "elapsed_s": elapsed_s,
        "env": bench_environment(),
        "metrics": {k: float(v) for k, v in metrics.items()},
        "gates": dict(scenario.gates),
        "threshold_pct": scenario.threshold_pct,
    }
    path = bench_json_path(out_dir, scenario.name)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def load_bench_json(path: PathLike) -> Optional[Dict[str, object]]:
    """Load a result file; None when absent/corrupt/incompatible."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("schema_version") != SCHEMA_VERSION:
        return None
    return payload


def compare_against_baseline(
    scenario: BenchScenario,
    metrics: Dict[str, float],
    baseline: Optional[Dict[str, object]],
    threshold_pct: Optional[float] = None,
) -> List[GateFinding]:
    """Evaluate every gated metric against a baseline payload.

    Metrics missing on either side are skipped (a new metric cannot
    regress; a deleted one no longer gates).  ``change_pct`` is
    normalized so positive always means *worse*, regardless of the
    gate direction.
    """
    if baseline is None:
        return []
    base_metrics = baseline.get("metrics", {})
    if not isinstance(base_metrics, dict):
        return []
    threshold = (
        scenario.threshold_pct if threshold_pct is None else threshold_pct
    )
    findings = []
    for metric, direction in scenario.gates.items():
        if metric not in metrics or metric not in base_metrics:
            continue
        base = float(base_metrics[metric])
        cur = float(metrics[metric])
        if base == 0.0:
            continue  # no meaningful relative change
        raw_pct = (cur - base) / abs(base) * 100.0
        change_pct = raw_pct if direction == "lower" else -raw_pct
        findings.append(
            GateFinding(
                scenario=scenario.name,
                metric=metric,
                direction=direction,
                baseline=base,
                current=cur,
                change_pct=change_pct,
                threshold_pct=threshold,
                regressed=change_pct > threshold,
            )
        )
    return findings


def discover_scenarios(bench_dir: PathLike) -> List[BenchScenario]:
    """Import ``bench_*.py`` files and collect their ``BENCH_SCENARIO``.

    Files without the attribute (plain pytest benches) are skipped.
    Modules are loaded under ``repro_bench_<stem>`` to avoid colliding
    with anything importable as ``benchmarks.*``.
    """
    bench_dir = Path(bench_dir)
    scenarios = []
    for path in sorted(bench_dir.glob("bench_*.py")):
        mod_name = f"repro_bench_{path.stem}"
        spec = importlib.util.spec_from_file_location(mod_name, path)
        if spec is None or spec.loader is None:
            continue
        module = importlib.util.module_from_spec(spec)
        # Registered so dataclasses/pickling inside the module resolve.
        sys.modules[mod_name] = module
        spec.loader.exec_module(module)
        scenario = getattr(module, "BENCH_SCENARIO", None)
        if isinstance(scenario, BenchScenario):
            scenarios.append(scenario)
    return scenarios


def run_scenarios(
    scenarios: Sequence[BenchScenario],
    out_dir: PathLike,
    *,
    quick: bool = False,
    baseline_dir: Optional[PathLike] = None,
    threshold_pct: Optional[float] = None,
    gate: bool = True,
    log: Callable[[str], None] = print,
) -> Tuple[List[Path], List[GateFinding]]:
    """Run scenarios, write their JSON, and apply the regression gate.

    Baselines are read from ``baseline_dir`` (default: ``out_dir``,
    i.e. the previous committed result) *before* the new file
    overwrites them.  Returns the written paths and the regressed
    findings (empty = gate passed).  With ``gate=False`` comparisons
    are still reported but nothing counts as failing.
    """
    baseline_dir = Path(baseline_dir) if baseline_dir is not None else Path(out_dir)
    written: List[Path] = []
    regressions: List[GateFinding] = []
    for scenario in scenarios:
        log(f"bench {scenario.name}: {scenario.description}")
        baseline = load_bench_json(bench_json_path(baseline_dir, scenario.name))
        t0 = time.perf_counter()
        metrics = scenario.run(quick)
        elapsed = time.perf_counter() - t0
        for key in sorted(metrics):
            log(f"  {key} = {metrics[key]:.6g}")
        findings = compare_against_baseline(
            scenario, metrics, baseline, threshold_pct=threshold_pct
        )
        for finding in findings:
            log("  " + finding.describe())
            if gate and finding.regressed:
                regressions.append(finding)
        written.append(
            write_bench_json(
                out_dir, scenario, metrics, quick=quick, elapsed_s=elapsed
            )
        )
        log(f"  wrote {written[-1]} ({elapsed:.2f}s)")
    return written, regressions

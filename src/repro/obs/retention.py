"""Retention/GC for telemetry artifacts.

Long sessions accumulate trace dumps, profiles, and ledger events
without bound; this module implements the shared retention policy:
``repro trace --gc`` prunes the trace directory by age and/or count,
and :meth:`repro.obs.ledger.Ledger.compact` applies the same
``--max-age`` / ``--max-files``-shaped limits to ledger events.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union

#: File name patterns the trace-directory GC considers its own.  The GC
#: refuses to touch anything else, so a mistyped ``--out`` pointing at a
#: source tree cannot delete work.
TELEMETRY_PATTERNS = (
    "trace*.jsonl",
    "*.chrome.json",
    "report*.txt",
    "profile*.collapsed",
    "*.tmp",
)


@dataclass
class GcReport:
    """What one GC sweep did."""

    removed: List[Path] = field(default_factory=list)
    kept: int = 0
    freed_bytes: int = 0

    def summary(self) -> str:
        return (
            f"removed {len(self.removed)} file(s) "
            f"({self.freed_bytes / 1024:.1f} KiB), kept {self.kept}"
        )


def gc_directory(
    directory: Union[str, Path],
    max_age_s: Optional[float] = None,
    max_files: Optional[int] = None,
    patterns: Sequence[str] = TELEMETRY_PATTERNS,
    dry_run: bool = False,
) -> GcReport:
    """Delete telemetry files older than ``max_age_s`` and/or beyond the
    newest ``max_files`` (by mtime).  Only files matching ``patterns``
    are candidates; everything else in the directory is ignored.
    """
    directory = Path(directory)
    report = GcReport()
    if not directory.is_dir():
        return report
    candidates = []
    for pattern in patterns:
        candidates.extend(p for p in directory.glob(pattern) if p.is_file())
    candidates = sorted(set(candidates), key=lambda p: p.stat().st_mtime)
    doomed = set()
    if max_age_s is not None:
        cutoff = time.time() - max_age_s
        doomed.update(p for p in candidates if p.stat().st_mtime < cutoff)
    if max_files is not None and max_files >= 0:
        survivors = [p for p in candidates if p not in doomed]
        excess = len(survivors) - max_files
        if excess > 0:
            doomed.update(survivors[:excess])  # oldest first
    for path in candidates:
        if path not in doomed:
            continue
        try:
            size = path.stat().st_size
            if not dry_run:
                os.unlink(path)
            report.removed.append(path)
            report.freed_bytes += size
        except OSError:
            pass  # raced with another GC / already gone
    report.kept = len(candidates) - len(report.removed)
    return report

"""Zero-dependency observability: tracing spans, metrics, exporters.

The pipeline's cost lives inside the compile+simulate oracle; this
package makes that cost visible.  Three pieces:

:mod:`repro.obs.trace`
    Nested wall-clock spans (``with span("measure.compile", ...)``)
    collected by a thread-safe in-process :class:`Tracer`.  Disabled by
    default; the disabled fast path is a single attribute check.  Enable
    with ``REPRO_TRACE=1`` or :func:`enable_tracing`.
:mod:`repro.obs.metrics`
    Always-on named counters and histograms (cache hits/misses,
    compilations, simulations, SMARTS sampled/skipped units, per-pass IR
    deltas, GA generations/evaluations).
:mod:`repro.obs.export`
    JSONL dumps, Chrome ``trace_event`` JSON (open in ``chrome://tracing``
    or Perfetto), and a hierarchical self-timing text report.
:mod:`repro.obs.context`
    Cross-process propagation: pool workers inherit the parent's trace
    context and ship spans + metric deltas back for merging, so traces
    and ``repro stats`` stay complete under ``--jobs``.
:mod:`repro.obs.profile`
    A thread-based sampling profiler and collapsed-stack exporters
    (flamegraph.pl / speedscope) for hotspot attribution inside the
    simulator loops.
:mod:`repro.obs.bench`
    The ``repro bench`` harness: schema-versioned ``BENCH_*.json``
    results plus a regression gate against committed baselines.
:mod:`repro.obs.ledger`
    Append-only provenance ledger: measurement batches, model fits,
    registry publishes, serve sessions, and alerts as linked JSONL
    events (``repro ledger`` / ``repro lineage``).
:mod:`repro.obs.promexport`
    Prometheus text-format rendering and a stdlib ``/metrics`` HTTP
    endpoint (``repro serve --metrics-port``).
:mod:`repro.obs.monitor`
    Threshold + EWMA-drift alert rules over metric snapshots
    (``repro monitor``), with alerts recorded to the ledger.
:mod:`repro.obs.retention`
    Telemetry-directory garbage collection (``repro trace --gc``).

See ``docs/OBSERVABILITY.md`` for the span taxonomy and usage.
"""

from repro.obs.trace import (
    SpanRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    reset_tracing,
    span,
    tracing_enabled,
)
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    counter,
    get_registry,
    histogram,
)
from repro.obs.export import (
    from_jsonl,
    self_timing_report,
    to_chrome_trace,
    to_jsonl,
)
from repro.obs.context import (
    TelemetryContext,
    WorkerTelemetry,
    begin_task,
    capture_context,
    collect_task,
    install_context,
    merge_worker_telemetry,
)
from repro.obs.profile import (
    SamplingProfiler,
    spans_to_collapsed,
    write_spans_collapsed,
)
from repro.obs.bench import (
    BenchScenario,
    GateFinding,
    discover_scenarios,
    run_scenarios,
)
from repro.obs.ledger import (
    Ledger,
    LedgerEvent,
    Lineage,
    default_ledger,
    default_ledger_path,
    record_event,
)
from repro.obs.promexport import (
    MetricsHTTPServer,
    parse_prometheus,
    render_prometheus,
    scrape,
    snapshot_from_prometheus,
    start_metrics_server,
    validate_prometheus_text,
)
from repro.obs.monitor import (
    Alert,
    EwmaDriftRule,
    Monitor,
    ThresholdRule,
    default_rules,
    flatten_snapshot,
    load_rules,
)
from repro.obs.retention import GcReport, gc_directory

__all__ = [
    "SpanRecord",
    "Tracer",
    "span",
    "get_tracer",
    "enable_tracing",
    "disable_tracing",
    "reset_tracing",
    "tracing_enabled",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "histogram",
    "get_registry",
    "to_jsonl",
    "from_jsonl",
    "to_chrome_trace",
    "self_timing_report",
    "TelemetryContext",
    "WorkerTelemetry",
    "capture_context",
    "install_context",
    "begin_task",
    "collect_task",
    "merge_worker_telemetry",
    "SamplingProfiler",
    "spans_to_collapsed",
    "write_spans_collapsed",
    "BenchScenario",
    "GateFinding",
    "discover_scenarios",
    "run_scenarios",
    "Ledger",
    "LedgerEvent",
    "Lineage",
    "default_ledger",
    "default_ledger_path",
    "record_event",
    "MetricsHTTPServer",
    "start_metrics_server",
    "render_prometheus",
    "validate_prometheus_text",
    "parse_prometheus",
    "snapshot_from_prometheus",
    "scrape",
    "Alert",
    "Monitor",
    "ThresholdRule",
    "EwmaDriftRule",
    "default_rules",
    "load_rules",
    "flatten_snapshot",
    "GcReport",
    "gc_directory",
]

"""Trace exporters: JSONL, Chrome ``trace_event``, self-timing report.

All three consume a list of :class:`~repro.obs.trace.SpanRecord` (from
``get_tracer().spans``):

* :func:`to_jsonl` / :func:`from_jsonl` -- one JSON object per line,
  lossless round-trip; the raw format downstream tooling should parse.
* :func:`to_chrome_trace` -- the Trace Event Format (``"ph": "X"``
  complete events, microsecond timestamps), loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev.
* :func:`self_timing_report` -- a hierarchical text "flamegraph": spans
  aggregated by call path with inclusive/exclusive time and call counts,
  children sorted by inclusive time.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.trace import SpanRecord

PathLike = Union[str, Path]


def to_jsonl(spans: Sequence[SpanRecord], path: PathLike) -> None:
    """Write one JSON object per span, in completion order."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as f:
        for s in spans:
            f.write(
                json.dumps(
                    {
                        "name": s.name,
                        "span_id": s.span_id,
                        "parent_id": s.parent_id,
                        "thread_id": s.thread_id,
                        "start": s.start,
                        "duration": s.duration,
                        "attrs": s.attrs,
                        "pid": s.pid,
                    },
                    default=str,
                )
            )
            f.write("\n")


def from_jsonl(path: PathLike) -> List[SpanRecord]:
    """Parse a :func:`to_jsonl` dump back into span records."""
    records = []
    with Path(path).open() as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            records.append(
                SpanRecord(
                    name=obj["name"],
                    span_id=obj["span_id"],
                    parent_id=obj["parent_id"],
                    thread_id=obj["thread_id"],
                    start=obj["start"],
                    duration=obj["duration"],
                    attrs=obj.get("attrs", {}),
                    pid=obj.get("pid", 0),
                )
            )
    return records


def to_chrome_trace(
    spans: Sequence[SpanRecord], path: PathLike, pid: int = 1
) -> None:
    """Write a Chrome Trace Event Format file (complete "X" events).

    Timestamps are microseconds relative to the earliest span, so the
    viewer's timeline starts at zero.  Each span's own ``pid`` selects
    its process lane (spans merged from pool workers keep the worker
    pid, so a multi-process run renders one lane per process); ``pid``
    is the fallback lane for legacy records with no pid.  One ``"M"``
    ``process_name`` metadata event labels each lane.
    """
    t0 = min((s.start for s in spans), default=0.0)
    events: List[dict] = [
        {
            "name": s.name,
            "ph": "X",
            "ts": (s.start - t0) * 1e6,
            "dur": s.duration * 1e6,
            "pid": s.pid or pid,
            "tid": s.thread_id,
            "args": {k: _jsonable(v) for k, v in s.attrs.items()},
        }
        for s in spans
    ]
    own = os.getpid()
    for lane in sorted({e["pid"] for e in events}):
        label = f"pid {lane}" + (" (parent)" if lane == own else " (worker)")
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": lane,
                "tid": 0,
                "args": {"name": label},
            }
        )
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload))


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class _Node:
    """One call-path aggregate in the self-timing tree."""

    __slots__ = ("name", "calls", "inclusive", "child_time", "children")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.inclusive = 0.0
        self.child_time = 0.0
        self.children: Dict[str, "_Node"] = {}

    @property
    def exclusive(self) -> float:
        return max(0.0, self.inclusive - self.child_time)


def _build_tree(spans: Sequence[SpanRecord]) -> _Node:
    """Aggregate spans by name-path under a synthetic root."""
    by_id = {s.span_id: s for s in spans}

    def path_of(s: SpanRecord) -> Tuple[str, ...]:
        names: List[str] = []
        cur: Optional[SpanRecord] = s
        while cur is not None:
            names.append(cur.name)
            cur = by_id.get(cur.parent_id) if cur.parent_id else None
        return tuple(reversed(names))

    root = _Node("total")
    for s in spans:
        node = root
        for name in path_of(s):
            child = node.children.get(name)
            if child is None:
                child = node.children[name] = _Node(name)
            node = child
        node.calls += 1
        node.inclusive += s.duration
        parent_rec = by_id.get(s.parent_id) if s.parent_id else None
        if parent_rec is None:
            root.inclusive += s.duration  # top-level span
    # Propagate child time for exclusive-time computation.
    def fill(node: _Node) -> None:
        node.child_time = sum(c.inclusive for c in node.children.values())
        for c in node.children.values():
            fill(c)

    fill(root)
    root.calls = sum(c.calls for c in root.children.values())
    return root


def self_timing_report(spans: Sequence[SpanRecord]) -> str:
    """Render the hierarchical inclusive/exclusive timing report."""
    if not spans:
        return "(no spans recorded)"
    root = _build_tree(spans)
    total = root.inclusive or 1e-12
    header = (
        f"{'incl ms':>10} {'excl ms':>10} {'% tot':>6} {'calls':>7}  span"
    )
    lines = [header, "-" * len(header)]

    def emit(node: _Node, depth: int) -> None:
        pct = 100.0 * node.inclusive / total
        lines.append(
            f"{node.inclusive * 1e3:10.2f} {node.exclusive * 1e3:10.2f} "
            f"{pct:6.1f} {node.calls:7d}  {'  ' * depth}{node.name}"
        )
        for child in sorted(
            node.children.values(), key=lambda c: -c.inclusive
        ):
            emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)

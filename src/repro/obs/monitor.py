"""Rule-based anomaly monitor over metrics snapshots.

``repro monitor`` watches the same series the rest of the telemetry
stack produces -- counters, counter rates, histogram quantiles, derived
ratios -- and fires *alerts* when a rule trips: a threshold crossed, or
a value drifting away from its own exponentially-weighted moving
average.  Alerts are appended to the provenance ledger as ``alert``
events and set a nonzero exit code, which is what lets CI (and, per the
roadmap, the active-learning loop) treat "the surrogate is drifting" as
a first-class failure instead of a number somebody has to eyeball.

Series vocabulary (one flat namespace, fed by any snapshot source --
the live registry, a persisted ``metrics.json``, a fixture JSONL, or a
``/metrics`` scrape round-tripped through
:func:`repro.obs.promexport.snapshot_from_prometheus`):

* ``<counter>`` -- cumulative counter value;
* ``<counter>.rate`` -- per-second rate between consecutive
  observations (needs >= 2 snapshots);
* ``<histogram>.count/.mean/.p50/.p95/.p99/.max`` -- summary fields;
* derived ratios: ``serve.server.error_rate`` (errors/requests),
  ``measure.result_cache.hit_rate`` and ``measure.trace_cache.hit_rate``
  (hits/(hits+misses)), ``sim.cycles_per_point`` where both sides exist.

Rule syntax (JSON list, see ``docs/OBSERVABILITY.md``)::

    [{"type": "threshold", "name": "serve-error-rate",
      "series": "serve.server.error_rate", "op": ">", "value": 0.05},
     {"type": "ewma_drift", "name": "surrogate-drift",
      "series": "serve.surrogate.elite_abs_err_pct.p95",
      "alpha": 0.3, "factor": 2.0, "min_samples": 3}]
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.obs.ledger import Ledger
from repro.obs.metrics import summarize_histogram_entry

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}

#: Histogram summary fields exposed as series suffixes.
_HIST_FIELDS = ("count", "mean", "p50", "p95", "p99", "max")


def flatten_snapshot(snapshot: Mapping[str, Any]) -> Dict[str, float]:
    """One metrics snapshot -> the flat ``{series: value}`` namespace."""
    flat: Dict[str, float] = {}
    for name, value in (snapshot.get("counters") or {}).items():
        flat[name] = float(value)
    for name, value in (snapshot.get("gauges") or {}).items():
        flat[name] = float(value)
    for name, entry in (snapshot.get("histograms") or {}).items():
        summary = summarize_histogram_entry(dict(entry))
        for fld in _HIST_FIELDS:
            if fld in summary:
                flat[f"{name}.{fld}"] = float(summary[fld])
    # Derived ratios -- the series operators actually alert on.
    requests = flat.get("serve.server.requests", 0.0)
    if requests:
        flat["serve.server.error_rate"] = (
            flat.get("serve.server.errors", 0.0) / requests
        )
    for cache in ("result_cache", "trace_cache"):
        hits = flat.get(f"measure.{cache}.hits", 0.0)
        misses = flat.get(f"measure.{cache}.misses", 0.0)
        if hits + misses:
            flat[f"measure.{cache}.hit_rate"] = hits / (hits + misses)
    sims = flat.get("measure.simulations", 0.0)
    cycles = flat.get("sim.ooo.instructions", 0.0)
    if sims and cycles:
        flat["sim.instructions_per_point"] = cycles / sims
    return flat


@dataclass
class Alert:
    """One fired rule."""

    rule: str
    series: str
    value: float
    message: str
    ts: float = field(default_factory=time.time)

    def describe(self) -> str:
        return f"ALERT [{self.rule}] {self.series}={self.value:.6g}: {self.message}"


class RuleError(ValueError):
    """A rule specification is malformed."""


@dataclass
class ThresholdRule:
    """Fires when a series crosses a fixed bound."""

    name: str
    series: str
    op: str
    value: float
    #: Observations of the series required before the rule arms (guards
    #: against alerting on an all-zero cold start).
    min_count: int = 1

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise RuleError(f"rule {self.name!r}: bad op {self.op!r}")
        self._seen = 0

    def check(self, series: Mapping[str, float]) -> Optional[Alert]:
        if self.series not in series:
            return None
        self._seen += 1
        if self._seen < self.min_count:
            return None
        current = series[self.series]
        if math.isnan(current):
            return None
        if _OPS[self.op](current, self.value):
            return Alert(
                rule=self.name,
                series=self.series,
                value=current,
                message=f"{self.series} {self.op} {self.value:.6g}",
            )
        return None


@dataclass
class EwmaDriftRule:
    """Fires when a series drifts away from its own EWMA.

    After ``min_samples`` warmup observations, an observation more than
    ``factor`` x the EWMA (for direction ``"up"``; below EWMA/``factor``
    for ``"down"``) fires.  ``min_delta`` suppresses drift alerts on
    absolute moves too small to matter (noise around zero).
    """

    name: str
    series: str
    alpha: float = 0.3
    factor: float = 2.0
    min_samples: int = 3
    direction: str = "up"
    min_delta: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise RuleError(f"rule {self.name!r}: alpha must be in (0, 1]")
        if self.factor <= 1.0:
            raise RuleError(f"rule {self.name!r}: factor must exceed 1")
        if self.direction not in ("up", "down"):
            raise RuleError(
                f"rule {self.name!r}: direction must be 'up' or 'down'"
            )
        self._ewma: Optional[float] = None
        self._n = 0

    def check(self, series: Mapping[str, float]) -> Optional[Alert]:
        if self.series not in series:
            return None
        current = series[self.series]
        if math.isnan(current):
            return None
        alert = None
        if self._n >= self.min_samples and self._ewma is not None:
            baseline = self._ewma
            if self.direction == "up":
                drifted = (
                    current > baseline * self.factor
                    and current - baseline > self.min_delta
                )
            else:
                drifted = (
                    baseline != 0.0
                    and current < baseline / self.factor
                    and baseline - current > self.min_delta
                )
            if drifted:
                alert = Alert(
                    rule=self.name,
                    series=self.series,
                    value=current,
                    message=(
                        f"{self.series}={current:.6g} drifted {self.direction} "
                        f"from EWMA {baseline:.6g} (factor {self.factor:g})"
                    ),
                )
        if self._ewma is None:
            self._ewma = current
        else:
            self._ewma += self.alpha * (current - self._ewma)
        self._n += 1
        return alert


Rule = Union[ThresholdRule, EwmaDriftRule]

_RULE_TYPES = {"threshold": ThresholdRule, "ewma_drift": EwmaDriftRule}


def rule_from_spec(spec: Mapping[str, Any]) -> Rule:
    """Instantiate one rule from its JSON spec dict."""
    spec = dict(spec)
    kind = spec.pop("type", None)
    cls = _RULE_TYPES.get(kind)
    if cls is None:
        raise RuleError(
            f"unknown rule type {kind!r} (expected one of "
            f"{', '.join(sorted(_RULE_TYPES))})"
        )
    try:
        return cls(**spec)
    except TypeError as e:
        raise RuleError(f"bad {kind} rule {spec.get('name', '?')!r}: {e}") from e


def load_rules(path: Union[str, Path]) -> List[Rule]:
    """Load a JSON rule file (a list of rule spec objects)."""
    try:
        raw = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        raise RuleError(f"cannot read rule file {path}: {e}") from e
    if not isinstance(raw, list):
        raise RuleError(f"rule file {path} must hold a JSON list")
    return [rule_from_spec(spec) for spec in raw]


def default_rules() -> List[Rule]:
    """The built-in operational rules (used when no file is given)."""
    return [
        ThresholdRule(
            name="serve-error-rate",
            series="serve.server.error_rate",
            op=">",
            value=0.05,
        ),
        EwmaDriftRule(
            name="surrogate-elite-error-drift",
            series="serve.surrogate.elite_abs_err_pct.p95",
            alpha=0.3,
            factor=2.0,
            min_samples=3,
            min_delta=1.0,
        ),
        ThresholdRule(
            name="measurement-cache-collapse",
            series="measure.result_cache.hit_rate",
            op="<",
            value=0.01,
            min_count=3,
        ),
        EwmaDriftRule(
            name="serve-latency-drift",
            series="serve.server.request_ms.p99",
            alpha=0.3,
            factor=3.0,
            min_samples=3,
            min_delta=1.0,
        ),
    ]


class Monitor:
    """Feed metrics snapshots through a rule set, collecting alerts.

    Parameters
    ----------
    rules:
        Rule instances (see :func:`load_rules` / :func:`default_rules`).
    ledger:
        Where fired alerts are recorded as ``alert`` events (None
        disables recording).
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        ledger: Optional[Ledger] = None,
    ):
        self.rules = list(rules)
        self.ledger = ledger
        self.alerts: List[Alert] = []
        self.observations = 0
        self._prev_flat: Optional[Dict[str, float]] = None
        self._prev_ts: Optional[float] = None

    @property
    def fired(self) -> bool:
        return bool(self.alerts)

    def observe(
        self, snapshot: Mapping[str, Any], ts: Optional[float] = None
    ) -> List[Alert]:
        """Evaluate every rule against one snapshot; returns the alerts
        fired by *this* observation (also accumulated on ``alerts``)."""
        ts = time.time() if ts is None else float(ts)
        flat = flatten_snapshot(snapshot)
        if self._prev_flat is not None and self._prev_ts is not None:
            dt = ts - self._prev_ts
            if dt > 0:
                for name, value in list(flat.items()):
                    prev = self._prev_flat.get(name)
                    # Rates only make sense for cumulative series:
                    # summary quantiles and derived ratios are levels,
                    # not monotone totals.
                    if prev is None or name.endswith(
                        (".p50", ".p95", ".p99", ".mean", ".max", "_rate")
                    ):
                        continue
                    delta = value - prev
                    if delta >= 0:
                        flat[f"{name}.rate"] = delta / dt
        fired: List[Alert] = []
        for rule in self.rules:
            alert = rule.check(flat)
            if alert is not None:
                alert.ts = ts
                fired.append(alert)
        self.alerts.extend(fired)
        if self.ledger is not None:
            for alert in fired:
                try:
                    self.ledger.append(
                        "alert",
                        attrs={
                            "rule": alert.rule,
                            "series": alert.series,
                            "value": alert.value,
                            "message": alert.message,
                        },
                    )
                except OSError:
                    pass  # alerting must not crash the monitored process
        self._prev_flat = flat
        self._prev_ts = ts
        self.observations += 1
        return fired

    def observe_series(
        self, snapshots: Sequence[Mapping[str, Any]]
    ) -> List[Alert]:
        """Evaluate a pre-recorded sequence of snapshots (each may carry
        its own ``"ts"``); returns all alerts fired."""
        before = len(self.alerts)
        for snap in snapshots:
            self.observe(snap, ts=snap.get("ts"))
        return self.alerts[before:]

    def summary(self) -> str:
        lines = [
            f"{self.observations} observation(s), {len(self.rules)} rule(s), "
            f"{len(self.alerts)} alert(s)"
        ]
        lines.extend("  " + a.describe() for a in self.alerts)
        if not self.alerts:
            lines.append("  all quiet")
        return "\n".join(lines)


def load_snapshot_series(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a JSONL file of metrics snapshots (one JSON object per
    line, each optionally carrying ``"ts"``) -- the fixture format the
    CI drift gate injects."""
    series: List[Dict[str, Any]] = []
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), 1):
        if not raw.strip():
            continue
        try:
            obj = json.loads(raw)
        except json.JSONDecodeError as e:
            raise RuleError(f"{path}:{lineno}: bad snapshot line: {e}") from e
        if not isinstance(obj, dict):
            raise RuleError(f"{path}:{lineno}: snapshot must be an object")
        series.append(obj)
    return series

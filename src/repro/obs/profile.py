"""Zero-dependency sampling profiler + collapsed-stack export.

Spans answer "which stage is slow"; this module answers "which *code*
inside the stage is slow" without adding a single instruction to the hot
loops.  A daemon thread wakes every ``interval`` seconds, snapshots the
interpreter's frame stacks (``sys._current_frames``) and counts each
observed call stack.  The result exports in the *collapsed stack*
format --

    repro.sim.smarts:smarts_simulate;repro.sim.ooo:simulate_window 412

-- one line per unique stack, root first, sample count last, which both
``flamegraph.pl`` and https://www.speedscope.app consume directly.  The
intended targets are the per-event simulation loops
(:mod:`repro.sim.ooo`, :mod:`repro.sim.cache`, :mod:`repro.sim.bpred`),
where span instrumentation would cost more than it reveals.

Sampling bias to keep in mind: the sampler thread needs the GIL to run,
so samples land at bytecode boundaries of pure-Python code -- exactly
the code this project needs profiled.  Time spent inside C extensions
that release the GIL is attributed to the line that called them.

:func:`spans_to_collapsed` renders an already-collected span list in the
same format (one "sample" per microsecond of exclusive span time), so
`repro trace` output feeds the same flamegraph tooling.
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.trace import SpanRecord

PathLike = Union[str, Path]


def _frame_label(frame) -> str:
    """``package.module:function`` for one frame."""
    code = frame.f_code
    module = frame.f_globals.get("__name__")
    if not module:
        module = Path(code.co_filename).stem
    return f"{module}:{code.co_name}"


class SamplingProfiler:
    """Thread-based statistical profiler with collapsed-stack output.

    Parameters
    ----------
    interval:
        Seconds between samples (default 5 ms; ~200 samples/s).
    target_thread_ids:
        Thread idents to sample; default is every thread except the
        sampler itself.

    Usage::

        with SamplingProfiler() as prof:
            expensive_work()
        prof.write_collapsed("profile.collapsed")
        print(prof.report(top=15))
    """

    def __init__(
        self,
        interval: float = 0.005,
        target_thread_ids: Optional[Sequence[int]] = None,
    ):
        self.interval = float(interval)
        self._targets = set(target_thread_ids) if target_thread_ids else None
        self._stacks: Dict[Tuple[str, ...], int] = {}
        self._samples = 0
        self._wall = 0.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0

    # ------------------------------------------------------------------
    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval):
            frames = sys._current_frames()
            for tid, frame in frames.items():
                if tid == own:
                    continue
                if self._targets is not None and tid not in self._targets:
                    continue
                stack: List[str] = []
                f = frame
                while f is not None:
                    stack.append(_frame_label(f))
                    f = f.f_back
                if not stack:
                    continue
                key = tuple(reversed(stack))  # root first
                self._stacks[key] = self._stacks.get(key, 0) + 1
                self._samples += 1

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._started_at = time.perf_counter()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join()
        self._thread = None
        self._wall += time.perf_counter() - self._started_at
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    @property
    def samples(self) -> int:
        return self._samples

    @property
    def wall_seconds(self) -> float:
        return self._wall

    def collapsed(self) -> List[str]:
        """Collapsed-stack lines (``frame;frame;... count``), counts
        descending."""
        return [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(
                self._stacks.items(), key=lambda kv: -kv[1]
            )
        ]

    def write_collapsed(self, path: PathLike) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(self.collapsed()) + "\n")
        return path

    def self_times(self) -> Dict[str, int]:
        """Samples per *leaf* frame (statistical self time)."""
        leaves: Dict[str, int] = {}
        for stack, count in self._stacks.items():
            leaves[stack[-1]] = leaves.get(stack[-1], 0) + count
        return leaves

    def report(self, top: int = 20) -> str:
        """Text summary: hottest frames by statistical self time."""
        if not self._samples:
            return "(no samples collected; workload too short for the interval?)"
        per_sample_ms = (
            self._wall / self._samples * 1e3 if self._wall else float("nan")
        )
        lines = [
            f"{self._samples} samples over {self._wall * 1e3:.0f} ms "
            f"(~{per_sample_ms:.2f} ms/sample)",
            f"{'self%':>7} {'samples':>8}  frame",
        ]
        total = self._samples
        ranked = sorted(self.self_times().items(), key=lambda kv: -kv[1])
        for label, count in ranked[:top]:
            lines.append(f"{100.0 * count / total:7.1f} {count:8d}  {label}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Span-tree -> collapsed stacks (per-span self time)
# ----------------------------------------------------------------------
def spans_to_collapsed(spans: Sequence[SpanRecord]) -> List[str]:
    """Render spans as collapsed stacks weighted by exclusive time.

    Each line is a span *name path* (root span first) whose count is the
    path's aggregate self time in integer microseconds, so the resulting
    flamegraph widths are wall-clock-proportional.  Paths with zero
    aggregate self time are dropped.
    """
    from repro.obs.export import _build_tree

    if not spans:
        return []
    root = _build_tree(spans)
    lines: List[Tuple[str, int]] = []

    def walk(node, path: Tuple[str, ...]) -> None:
        for child in node.children.values():
            child_path = path + (child.name,)
            usec = round(child.exclusive * 1e6)
            if usec > 0:
                lines.append((";".join(child_path), usec))
            walk(child, child_path)

    walk(root, ())
    lines.sort(key=lambda kv: -kv[1])
    return [f"{path} {usec}" for path, usec in lines]


def write_spans_collapsed(
    spans: Sequence[SpanRecord], path: PathLike
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(spans_to_collapsed(spans)) + "\n")
    return path

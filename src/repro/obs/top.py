"""``repro top``: a live terminal dashboard over ``/metrics``.

No curses, no dependencies: each refresh scrapes a Prometheus endpoint
(:mod:`repro.obs.promexport`), optionally asks a running ``repro serve``
for its RED/SLO ``stats``, computes per-interval rates, and redraws one
plain-text frame (ANSI home+clear when attached to a TTY, plain append
otherwise -- so piping ``repro top --once`` into a file or a test stays
readable).
"""

from __future__ import annotations

import math
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.monitor import flatten_snapshot
from repro.obs.promexport import scrape, snapshot_from_prometheus

#: Series whose rates get a dedicated headline row, in display order.
_HEADLINE_RATES = (
    ("serve.server.requests", "req/s"),
    ("serve.predictions", "pred/s"),
    ("measure.simulations", "sims/s"),
    ("measure.compilations", "compiles/s"),
)

#: Histogram series surfaced in the latency table when present.
_LATENCY_SERIES = (
    "serve.server.request_ms",
    "serve.predict_ms",
    "serve.surrogate.elite_abs_err_pct",
    "measure.batch.worker_ms",
)


@dataclass
class TopFrame:
    """One sampled dashboard state."""

    ts: float
    flat: Dict[str, float]
    histograms: Dict[str, Dict[str, float]]
    stats: Optional[Dict[str, Any]] = None
    rates: Dict[str, float] = field(default_factory=dict)


def sample_endpoint(
    url: str,
    serve_addr: Optional[Tuple[str, int]] = None,
    timeout: float = 5.0,
) -> TopFrame:
    """Scrape one frame: ``/metrics`` plus (optionally) serve stats."""
    snapshot = snapshot_from_prometheus(scrape(url, timeout=timeout))
    stats = None
    if serve_addr is not None:
        from repro.serve import PredictionClient  # deferred: obs <- serve

        with PredictionClient(*serve_addr, timeout=timeout) as client:
            stats = client.stats()
    return TopFrame(
        ts=time.time(),
        flat=flatten_snapshot(snapshot),
        histograms=dict(snapshot.get("histograms") or {}),
        stats=stats,
    )


def compute_rates(prev: Optional[TopFrame], cur: TopFrame) -> None:
    """Fill ``cur.rates`` from the counter deltas since ``prev``."""
    if prev is None:
        return
    dt = cur.ts - prev.ts
    if dt <= 0:
        return
    for name, value in cur.flat.items():
        if name.endswith((".p50", ".p95", ".p99", ".mean", ".max", "_rate")):
            continue
        before = prev.flat.get(name)
        if before is None:
            continue
        delta = value - before
        if delta >= 0:
            cur.rates[name] = delta / dt


def _fmt(value: Optional[float], unit: str = "") -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    if abs(value) >= 1e6:
        return f"{value / 1e6:.2f}M{unit}"
    if abs(value) >= 1e3:
        return f"{value / 1e3:.1f}k{unit}"
    return f"{value:.4g}{unit}"


def render_frame(frame: TopFrame, width: int = 78) -> str:
    """One dashboard frame as plain text."""
    bar = "=" * width
    when = time.strftime("%H:%M:%S", time.localtime(frame.ts))
    lines = [bar, f"repro top  {when}", bar]

    headline = []
    for series, label in _HEADLINE_RATES:
        rate = frame.rates.get(series)
        total = frame.flat.get(series)
        if total is None:
            continue
        headline.append(f"{label} {_fmt(rate)} (total {_fmt(total)})")
    if headline:
        lines.append("  ".join(headline))

    if frame.stats:
        s = frame.stats
        lines.append(
            f"serve: up {s.get('uptime_s', 0):.0f}s  "
            f"requests {s.get('requests', 0)}  "
            f"errors {s.get('errors', 0)}  "
            f"error rate {s.get('error_rate', 0.0):.4f}  "
            f"loaded [{', '.join(s.get('loaded', []))}]"
        )
        ops = s.get("ops") or {}
        if ops:
            lines.append(
                f"  {'op':<16} {'count':>8} {'errs':>6} "
                f"{'p50ms':>9} {'p95ms':>9} {'p99ms':>9}"
            )
            for op, row in sorted(ops.items()):
                lines.append(
                    f"  {op:<16} {row.get('count', 0):>8} "
                    f"{row.get('errors', 0):>6} "
                    f"{row.get('p50_ms', 0.0):>9.3f} "
                    f"{row.get('p95_ms', 0.0):>9.3f} "
                    f"{row.get('p99_ms', 0.0):>9.3f}"
                )

    shown = [
        (name, frame.histograms[name])
        for name in _LATENCY_SERIES
        if frame.histograms.get(name, {}).get("count")
    ]
    if shown:
        lines.append(
            f"{'histogram':<38} {'count':>8} {'mean':>9} {'p95':>9} {'p99':>9}"
        )
        for name, entry in shown:
            lines.append(
                f"{name:<38} {int(entry.get('count', 0)):>8} "
                f"{_fmt(entry.get('mean')):>9} {_fmt(entry.get('p95')):>9} "
                f"{_fmt(entry.get('p99')):>9}"
            )

    counters = {
        n: v
        for n, v in frame.flat.items()
        if "." in n
        and not n.endswith(
            (".p50", ".p95", ".p99", ".mean", ".max", ".count", "_rate")
        )
        and n not in frame.histograms
    }
    if counters:
        lines.append("counters (top by value):")
        top = sorted(counters.items(), key=lambda kv: -kv[1])[:12]
        half = (len(top) + 1) // 2
        left, right = top[:half], top[half:]
        for i in range(half):
            cell = f"  {left[i][0]:<32} {_fmt(left[i][1]):>10}"
            if i < len(right):
                cell += f"    {right[i][0]:<32} {_fmt(right[i][1]):>10}"
            lines.append(cell)
    lines.append(bar)
    return "\n".join(lines)


def run_top(
    url: str,
    serve_addr: Optional[Tuple[str, int]] = None,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    out=None,
    clear: Optional[bool] = None,
) -> int:
    """Poll-and-redraw loop; ``iterations=None`` runs until Ctrl-C.

    Returns 0 (or 1 if the very first scrape fails -- a dead endpoint
    should be visible to scripts).
    """
    out = out or sys.stdout
    if clear is None:
        clear = bool(getattr(out, "isatty", lambda: False)())
    prev: Optional[TopFrame] = None
    done = 0
    while True:
        try:
            frame = sample_endpoint(url, serve_addr=serve_addr)
        except OSError as e:
            if prev is None:
                print(f"repro top: cannot scrape {url}: {e}", file=out)
                return 1
            print(f"(scrape failed: {e}; retrying)", file=out)
            time.sleep(interval)
            continue
        compute_rates(prev, frame)
        if clear:
            out.write("\x1b[H\x1b[2J")
        out.write(render_frame(frame) + "\n")
        out.flush()
        prev = frame
        done += 1
        if iterations is not None and done >= iterations:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0

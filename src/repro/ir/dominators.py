"""Dominator computation (Cooper-Harvey-Kennedy iterative algorithm)."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.cfg import predecessors, reverse_postorder
from repro.ir.function import Function


def immediate_dominators(func: Function) -> Dict[str, Optional[str]]:
    """Block label -> immediate dominator label (entry maps to None)."""
    rpo = reverse_postorder(func)
    index = {label: i for i, label in enumerate(rpo)}
    preds = predecessors(func)
    entry = func.entry.label

    idom: Dict[str, Optional[str]] = {entry: entry}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for label in rpo:
            if label == entry:
                continue
            candidates = [p for p in preds[label] if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom.get(label) != new_idom:
                idom[label] = new_idom
                changed = True
    idom[entry] = None
    return idom


def dominator_tree(func: Function) -> Dict[str, List[str]]:
    """Immediate-dominator tree: label -> children labels."""
    idom = immediate_dominators(func)
    tree: Dict[str, List[str]] = {label: [] for label in idom}
    for label, parent in idom.items():
        if parent is not None:
            tree[parent].append(label)
    return tree


def dominates(func: Function, a: str, b: str) -> bool:
    """True iff block ``a`` dominates block ``b``."""
    idom = immediate_dominators(func)
    node: Optional[str] = b
    while node is not None:
        if node == a:
            return True
        node = idom[node]
    return False

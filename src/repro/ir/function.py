"""Basic blocks, functions, globals and modules."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.ir.instructions import Instr, Jump, Return, Terminator
from repro.ir.types import Type, WORD_SIZE
from repro.ir.values import Temp


class BasicBlock:
    """A label, straight-line instructions, and one terminator."""

    def __init__(self, label: str):
        self.label = label
        self.instrs: List[Instr] = []
        self.terminator: Optional[Terminator] = None

    def append(self, instr: Instr) -> None:
        if isinstance(instr, Terminator):
            raise TypeError("use set_terminator for terminators")
        self.instrs.append(instr)

    def set_terminator(self, term: Terminator) -> None:
        self.terminator = term

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def all_instrs(self) -> List[Instr]:
        """Instructions including the terminator (if set)."""
        if self.terminator is None:
            return list(self.instrs)
        return self.instrs + [self.terminator]

    def __repr__(self) -> str:
        return f"BasicBlock({self.label}, {len(self.instrs)} instrs)"


class Function:
    """A function: parameters, blocks in layout order, temp factory."""

    def __init__(self, name: str, params: Sequence[Temp], return_type: Type):
        self.name = name
        self.params: List[Temp] = list(params)
        self.return_type = return_type
        self.blocks: List[BasicBlock] = []
        self._block_index: Dict[str, BasicBlock] = {}
        self._temp_counter = itertools.count()
        self._label_counter = itertools.count()

    # ------------------------------------------------------------------
    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def new_block(self, hint: str = "bb") -> BasicBlock:
        label = f"{hint}{next(self._label_counter)}"
        while label in self._block_index:
            label = f"{hint}{next(self._label_counter)}"
        block = BasicBlock(label)
        self.blocks.append(block)
        self._block_index[label] = block
        return block

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.label in self._block_index:
            raise ValueError(f"duplicate block label {block.label}")
        self.blocks.append(block)
        self._block_index[block.label] = block
        return block

    def block(self, label: str) -> BasicBlock:
        return self._block_index[label]

    def has_block(self, label: str) -> bool:
        return label in self._block_index

    def remove_block(self, label: str) -> None:
        block = self._block_index.pop(label)
        self.blocks.remove(block)

    def fresh_label(self, hint: str = "bb") -> str:
        label = f"{hint}{next(self._label_counter)}"
        while label in self._block_index:
            label = f"{hint}{next(self._label_counter)}"
        return label

    def new_temp(self, type_: Type, hint: str = "t") -> Temp:
        return Temp(f"{hint}{next(self._temp_counter)}", type_)

    # ------------------------------------------------------------------
    def instruction_count(self) -> int:
        """Static instruction count (the inliner/unroller size metric)."""
        return sum(len(b.instrs) + (1 if b.terminator else 0) for b in self.blocks)

    def reindex(self) -> None:
        """Rebuild the label index after external block-list surgery."""
        self._block_index = {b.label: b for b in self.blocks}

    def __repr__(self) -> str:
        return f"Function({self.name}, {len(self.blocks)} blocks)"


@dataclass
class GlobalVar:
    """A global scalar or array.

    ``count`` is the element count (1 for scalars); every element is one
    machine word.  ``init`` optionally provides initial element values.
    """

    name: str
    type: Type
    count: int = 1
    init: Optional[List[Union[int, float]]] = None

    @property
    def size_bytes(self) -> int:
        return self.count * WORD_SIZE

    @property
    def is_array(self) -> bool:
        return self.count > 1


class Module:
    """A compilation unit: globals plus functions."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.globals: Dict[str, GlobalVar] = {}
        self.functions: Dict[str, Function] = {}

    def add_global(self, var: GlobalVar) -> GlobalVar:
        if var.name in self.globals or var.name in self.functions:
            raise ValueError(f"duplicate global {var.name}")
        self.globals[var.name] = var
        return var

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions or func.name in self.globals:
            raise ValueError(f"duplicate function {func.name}")
        self.functions[func.name] = func
        return func

    def function(self, name: str) -> Function:
        return self.functions[name]

    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.functions.values())

    def __repr__(self) -> str:
        return (
            f"Module({self.name}, {len(self.functions)} functions, "
            f"{len(self.globals)} globals)"
        )

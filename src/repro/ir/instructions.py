"""IR instructions.

Straight-line instructions produce at most one :class:`Temp` result;
terminators end a basic block.  All instruction classes expose uniform
``uses()`` / ``defs()`` accessors and ``replace_uses`` so the dataflow
framework and the optimizers can treat them generically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.ir.types import Type
from repro.ir.values import Const, Temp, Value

#: Integer binary opcodes.
INT_BIN_OPS = (
    "add", "sub", "mul", "div", "mod",
    "and", "or", "xor", "shl", "shr",
)
#: Float binary opcodes.
FLOAT_BIN_OPS = ("fadd", "fsub", "fmul", "fdiv")
#: Comparison opcodes (operate on both types; result is an INT 0/1).
CMP_OPS = ("eq", "ne", "lt", "le", "gt", "ge")
#: Unary opcodes.
UN_OPS = ("neg", "fneg", "not", "itof", "ftoi")

#: Opcodes whose result depends only on operands (candidates for CSE/LICM).
PURE_BIN_OPS = set(INT_BIN_OPS) | set(FLOAT_BIN_OPS)
#: Commutative binary opcodes.
COMMUTATIVE_OPS = {"add", "mul", "and", "or", "xor", "fadd", "fmul"}


class Instr:
    """Base class for straight-line instructions."""

    def uses(self) -> List[Value]:
        return []

    def defs(self) -> Optional[Temp]:
        return None

    def replace_uses(self, mapping: Dict[Temp, Value]) -> "Instr":
        """A copy of this instruction with operands substituted."""
        return self

    @property
    def has_side_effects(self) -> bool:
        return False


def _subst(value: Value, mapping: Dict[Temp, Value]) -> Value:
    if isinstance(value, Temp) and value in mapping:
        return mapping[value]
    return value


@dataclass
class BinOp(Instr):
    dst: Temp
    op: str
    a: Value
    b: Value

    def uses(self):
        return [self.a, self.b]

    def defs(self):
        return self.dst

    def replace_uses(self, mapping):
        return BinOp(self.dst, self.op, _subst(self.a, mapping), _subst(self.b, mapping))

    def __repr__(self):
        return f"{self.dst!r} = {self.op} {self.a!r}, {self.b!r}"


@dataclass
class UnOp(Instr):
    dst: Temp
    op: str
    a: Value

    def uses(self):
        return [self.a]

    def defs(self):
        return self.dst

    def replace_uses(self, mapping):
        return UnOp(self.dst, self.op, _subst(self.a, mapping))

    def __repr__(self):
        return f"{self.dst!r} = {self.op} {self.a!r}"


@dataclass
class Cmp(Instr):
    dst: Temp
    op: str
    a: Value
    b: Value

    def uses(self):
        return [self.a, self.b]

    def defs(self):
        return self.dst

    def replace_uses(self, mapping):
        return Cmp(self.dst, self.op, _subst(self.a, mapping), _subst(self.b, mapping))

    def __repr__(self):
        return f"{self.dst!r} = cmp.{self.op} {self.a!r}, {self.b!r}"


@dataclass
class Copy(Instr):
    dst: Temp
    src: Value

    def uses(self):
        return [self.src]

    def defs(self):
        return self.dst

    def replace_uses(self, mapping):
        return Copy(self.dst, _subst(self.src, mapping))

    def __repr__(self):
        return f"{self.dst!r} = {self.src!r}"


@dataclass
class Addr(Instr):
    """dst = address of global ``symbol``."""

    dst: Temp
    symbol: str

    def defs(self):
        return self.dst

    def __repr__(self):
        return f"{self.dst!r} = &{self.symbol}"


@dataclass
class Load(Instr):
    """dst = memory[base + offset] (byte addressing)."""

    dst: Temp
    base: Value
    offset: Value

    def uses(self):
        return [self.base, self.offset]

    def defs(self):
        return self.dst

    def replace_uses(self, mapping):
        return Load(self.dst, _subst(self.base, mapping), _subst(self.offset, mapping))

    def __repr__(self):
        return f"{self.dst!r} = load [{self.base!r} + {self.offset!r}]"


@dataclass
class Store(Instr):
    """memory[base + offset] = src."""

    base: Value
    offset: Value
    src: Value

    def uses(self):
        return [self.base, self.offset, self.src]

    def replace_uses(self, mapping):
        return Store(
            _subst(self.base, mapping),
            _subst(self.offset, mapping),
            _subst(self.src, mapping),
        )

    @property
    def has_side_effects(self):
        return True

    def __repr__(self):
        return f"store [{self.base!r} + {self.offset!r}] = {self.src!r}"


@dataclass
class Prefetch(Instr):
    """Non-binding data prefetch of memory[base + offset]."""

    base: Value
    offset: Value

    def uses(self):
        return [self.base, self.offset]

    def replace_uses(self, mapping):
        return Prefetch(_subst(self.base, mapping), _subst(self.offset, mapping))

    @property
    def has_side_effects(self):
        # Never removed by DCE, but safe to hoist/duplicate.
        return True

    def __repr__(self):
        return f"prefetch [{self.base!r} + {self.offset!r}]"


@dataclass
class Call(Instr):
    """dst = callee(args); dst is None for void calls."""

    dst: Optional[Temp]
    callee: str
    args: List[Value]

    def uses(self):
        return list(self.args)

    def defs(self):
        return self.dst

    def replace_uses(self, mapping):
        return Call(self.dst, self.callee, [_subst(a, mapping) for a in self.args])

    @property
    def has_side_effects(self):
        return True

    def __repr__(self):
        args = ", ".join(repr(a) for a in self.args)
        if self.dst is None:
            return f"call {self.callee}({args})"
        return f"{self.dst!r} = call {self.callee}({args})"


# ----------------------------------------------------------------------
# Terminators
# ----------------------------------------------------------------------
class Terminator(Instr):
    """Base class for block terminators."""

    def targets(self) -> List[str]:
        return []

    def retarget(self, mapping: Dict[str, str]) -> "Terminator":
        """A copy with branch targets renamed through ``mapping``."""
        return self


@dataclass
class Jump(Terminator):
    target: str

    def targets(self):
        return [self.target]

    def retarget(self, mapping):
        return Jump(mapping.get(self.target, self.target))

    def __repr__(self):
        return f"jump {self.target}"


@dataclass
class Branch(Terminator):
    """Conditional branch: if cond != 0 goto then_target else else_target."""

    cond: Value
    then_target: str
    else_target: str

    def uses(self):
        return [self.cond]

    def replace_uses(self, mapping):
        return Branch(_subst(self.cond, mapping), self.then_target, self.else_target)

    def targets(self):
        return [self.then_target, self.else_target]

    def retarget(self, mapping):
        return Branch(
            self.cond,
            mapping.get(self.then_target, self.then_target),
            mapping.get(self.else_target, self.else_target),
        )

    def __repr__(self):
        return f"branch {self.cond!r} ? {self.then_target} : {self.else_target}"


@dataclass
class Return(Terminator):
    value: Optional[Value] = None

    def uses(self):
        return [self.value] if self.value is not None else []

    def replace_uses(self, mapping):
        if self.value is None:
            return self
        return Return(_subst(self.value, mapping))

    def __repr__(self):
        return f"return {self.value!r}" if self.value is not None else "return"

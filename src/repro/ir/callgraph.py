"""Call graph construction."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.ir.function import Function, Module
from repro.ir.instructions import Call


@dataclass
class CallGraph:
    """Static call graph with call-site counts."""

    #: caller -> {callee: number of call sites}
    edges: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def callees(self, name: str) -> Dict[str, int]:
        return self.edges.get(name, {})

    def callers(self, name: str) -> List[str]:
        return [c for c, kids in self.edges.items() if name in kids]

    def is_recursive(self, name: str) -> bool:
        """Whether ``name`` participates in a call cycle."""
        visited: Set[str] = set()
        stack = [name]
        while stack:
            node = stack.pop()
            for callee in self.edges.get(node, {}):
                if callee == name:
                    return True
                if callee not in visited:
                    visited.add(callee)
                    stack.append(callee)
        return False

    def topo_order(self) -> List[str]:
        """Callees-before-callers order (cycles broken arbitrarily)."""
        names = set(self.edges)
        for kids in self.edges.values():
            names.update(kids)
        visited: Set[str] = set()
        order: List[str] = []

        def dfs(node: str, path: Set[str]) -> None:
            visited.add(node)
            for callee in self.edges.get(node, {}):
                if callee not in visited and callee not in path:
                    dfs(callee, path | {node})
            order.append(node)

        for name in sorted(names):
            if name not in visited:
                dfs(name, set())
        return order


def build_callgraph(module: Module) -> CallGraph:
    graph = CallGraph()
    for func in module.functions.values():
        counts: Dict[str, int] = {}
        for block in func.blocks:
            for instr in block.instrs:
                if isinstance(instr, Call):
                    counts[instr.callee] = counts.get(instr.callee, 0) + 1
        graph.edges[func.name] = counts
    return graph

"""Convenience builder for constructing IR imperatively.

Used by the MiniC lowering pass and by tests that construct IR directly.
The builder tracks a current insertion block and allocates fresh temps.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Addr,
    BinOp,
    Branch,
    Call,
    Cmp,
    Copy,
    Jump,
    Load,
    Prefetch,
    Return,
    Store,
    UnOp,
)
from repro.ir.types import Type
from repro.ir.values import Const, Temp, Value


class IRBuilder:
    """Appends instructions to a current block of a function."""

    def __init__(self, func: Function):
        self.func = func
        self.block: Optional[BasicBlock] = None

    # ------------------------------------------------------------------
    def set_block(self, block: BasicBlock) -> None:
        self.block = block

    def new_block(self, hint: str = "bb") -> BasicBlock:
        return self.func.new_block(hint)

    def _emit(self, instr) -> None:
        if self.block is None:
            raise RuntimeError("no insertion block set")
        if self.block.is_terminated:
            raise RuntimeError(
                f"block {self.block.label} already terminated"
            )
        self.block.append(instr)

    # ------------------------------------------------------------------
    def binop(self, op: str, a: Value, b: Value, type_: Type) -> Temp:
        dst = self.func.new_temp(type_)
        self._emit(BinOp(dst, op, a, b))
        return dst

    def unop(self, op: str, a: Value, type_: Type) -> Temp:
        dst = self.func.new_temp(type_)
        self._emit(UnOp(dst, op, a))
        return dst

    def cmp(self, op: str, a: Value, b: Value) -> Temp:
        dst = self.func.new_temp(Type.INT)
        self._emit(Cmp(dst, op, a, b))
        return dst

    def copy(self, src: Value, type_: Optional[Type] = None) -> Temp:
        dst = self.func.new_temp(type_ or src.type)
        self._emit(Copy(dst, src))
        return dst

    def copy_to(self, dst: Temp, src: Value) -> None:
        self._emit(Copy(dst, src))

    def addr(self, symbol: str) -> Temp:
        dst = self.func.new_temp(Type.INT, hint="addr")
        self._emit(Addr(dst, symbol))
        return dst

    def load(self, base: Value, offset: Value, type_: Type) -> Temp:
        dst = self.func.new_temp(type_)
        self._emit(Load(dst, base, offset))
        return dst

    def store(self, base: Value, offset: Value, src: Value) -> None:
        self._emit(Store(base, offset, src))

    def prefetch(self, base: Value, offset: Value) -> None:
        self._emit(Prefetch(base, offset))

    def call(
        self, callee: str, args: List[Value], return_type: Type
    ) -> Optional[Temp]:
        if return_type is Type.VOID:
            self._emit(Call(None, callee, args))
            return None
        dst = self.func.new_temp(return_type)
        self._emit(Call(dst, callee, args))
        return dst

    # ------------------------------------------------------------------
    def jump(self, target: str) -> None:
        if self.block.is_terminated:
            raise RuntimeError(f"block {self.block.label} already terminated")
        self.block.set_terminator(Jump(target))

    def branch(self, cond: Value, then_target: str, else_target: str) -> None:
        if self.block.is_terminated:
            raise RuntimeError(f"block {self.block.label} already terminated")
        self.block.set_terminator(Branch(cond, then_target, else_target))

    def ret(self, value: Optional[Value] = None) -> None:
        if self.block.is_terminated:
            raise RuntimeError(f"block {self.block.label} already terminated")
        self.block.set_terminator(Return(value))

"""Natural-loop detection and preheader insertion.

A back edge is an edge ``t -> h`` where ``h`` dominates ``t``; the natural
loop of the back edge is ``h`` plus every block that can reach ``t``
without passing through ``h``.  Loops sharing a header are merged.  The
unroller, LICM, strength reduction and the prefetcher all operate on these
loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.ir.cfg import predecessors, successors
from repro.ir.dominators import immediate_dominators
from repro.ir.function import Function
from repro.ir.instructions import Jump


@dataclass
class Loop:
    """One natural loop."""

    header: str
    #: All block labels in the loop, including the header.
    body: Set[str]
    #: Sources of back edges into the header.
    latches: List[str]
    #: The unique preheader label, if one exists / has been created.
    preheader: Optional[str] = None
    #: Loops strictly nested inside this one.
    children: List["Loop"] = field(default_factory=list)
    parent: Optional["Loop"] = None

    @property
    def depth(self) -> int:
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def body_in_layout_order(self, func: Function) -> List[str]:
        """Loop-body labels in the function's block layout order.

        ``body`` is a set of strings, so iterating it directly follows
        string-hash order — which varies with ``PYTHONHASHSEED`` across
        processes.  Any pass whose *emitted code order* depends on the
        visit order must use this instead, or the same point measures
        differently in different processes (breaking the batch backend's
        serial/parallel bit-identity and the cross-process cache).
        """
        return [b.label for b in func.blocks if b.label in self.body]

    def exits(self, func: Function) -> List[str]:
        """Labels of blocks outside the loop targeted from inside."""
        succ = successors(func)
        out: List[str] = []
        for label in self.body_in_layout_order(func):
            for s in succ[label]:
                if s not in self.body and s not in out:
                    out.append(s)
        return out


def _loop_body(header: str, latch: str, preds: Dict[str, List[str]]) -> Set[str]:
    body = {header, latch}
    stack = [latch]
    while stack:
        label = stack.pop()
        if label == header:
            continue
        for p in preds[label]:
            if p not in body:
                body.add(p)
                stack.append(p)
    return body


def natural_loops(func: Function) -> List[Loop]:
    """All natural loops, with the nesting forest populated.

    Returned in outermost-first order.
    """
    idom = immediate_dominators(func)
    preds = predecessors(func)
    succ = successors(func)

    def dominates(a: str, b: str) -> bool:
        if b not in idom:
            return False  # unreachable block: no dominance facts
        node: Optional[str] = b
        while node is not None:
            if node == a:
                return True
            node = idom.get(node)
        return False

    by_header: Dict[str, Loop] = {}
    for block in func.blocks:
        if block.label not in idom:
            continue  # unreachable code cannot form loops we care about
        for target in succ[block.label]:
            if dominates(target, block.label):
                body = _loop_body(target, block.label, preds)
                if target in by_header:
                    by_header[target].body |= body
                    by_header[target].latches.append(block.label)
                else:
                    by_header[target] = Loop(
                        header=target, body=body, latches=[block.label]
                    )

    loops = list(by_header.values())
    # Establish nesting: loop A is inside B iff A's header is in B's body
    # and A != B; parent is the smallest enclosing loop.
    for loop in loops:
        enclosing = [
            other
            for other in loops
            if other is not loop and loop.header in other.body
        ]
        if enclosing:
            loop.parent = min(enclosing, key=lambda l: len(l.body))
            loop.parent.children.append(loop)
    loops.sort(key=lambda l: l.depth)
    return loops


def ensure_preheader(func: Function, loop: Loop) -> str:
    """Guarantee the loop has a dedicated preheader block; return its label.

    A preheader is the unique out-of-loop predecessor of the header and
    falls through to it.  If the header has multiple outside predecessors
    (or the predecessor has other successors), a fresh block is inserted
    and all outside edges are redirected to it.
    """
    preds = predecessors(func)
    outside = [p for p in preds[loop.header] if p not in loop.body]
    if len(outside) == 1:
        candidate = func.block(outside[0])
        if candidate.terminator.targets() == [loop.header]:
            loop.preheader = candidate.label
            return candidate.label

    pre = func.new_block("pre")
    pre.set_terminator(Jump(loop.header))
    for label in outside:
        block = func.block(label)
        block.set_terminator(
            block.terminator.retarget({loop.header: pre.label})
        )
    # Keep layout sensible: place the preheader right before the header.
    func.blocks.remove(pre)
    header_pos = func.blocks.index(func.block(loop.header))
    func.blocks.insert(header_pos, pre)
    loop.preheader = pre.label
    return pre.label

"""IR interpreter: reference execution of a module before code generation.

Two uses:

* **differential testing** -- the IR interpreter and the machine-code
  simulator must agree on every program's checksum, which brackets the
  backend (selection, allocation, frames, scheduling, linking) between
  two independent executors;
* **profiling** -- it counts basic-block executions and CFG edge
  traversals, giving the block-reordering pass real profiles
  (profile-guided layout, the setting of the paper's Table 7).

Operator semantics come from :mod:`repro.ir.semantics`, the same module
the constant folder and the machine simulator use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.ir.function import Function, Module
from repro.ir.instructions import (
    Addr,
    BinOp,
    Branch,
    Call,
    Cmp,
    Copy,
    Jump,
    Load,
    Prefetch,
    Return,
    Store,
    UnOp,
)
from repro.ir.semantics import (
    eval_cmp,
    eval_float_binop,
    eval_int_binop,
    eval_unop,
)
from repro.ir.types import Type, WORD_SIZE
from repro.ir.values import Const, Temp, Value


class IRInterpreterError(Exception):
    pass


@dataclass
class EdgeProfile:
    """Execution counts collected by a profiling run."""

    #: (function, block label) -> times the block was entered.
    block_counts: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: (function, from label, to label) -> edge traversal count.
    edge_counts: Dict[Tuple[str, str, str], int] = field(default_factory=dict)

    def block_count(self, function: str, label: str) -> int:
        return self.block_counts.get((function, label), 0)

    def edge_count(self, function: str, src: str, dst: str) -> int:
        return self.edge_counts.get((function, src, dst), 0)

    def taken_probability(
        self, function: str, src: str, dst: str
    ) -> float:
        total = self.block_count(function, src)
        if total == 0:
            return 0.0
        return self.edge_count(function, src, dst) / total


@dataclass
class IRRunResult:
    return_value: Union[int, float, None]
    instructions_executed: int
    profile: EdgeProfile


class _Frame:
    __slots__ = ("env",)

    def __init__(self):
        self.env: Dict[Temp, Union[int, float]] = {}


class IRInterpreter:
    """Executes a module's IR starting at ``main``."""

    def __init__(self, module: Module, max_steps: int = 50_000_000):
        self.module = module
        self.max_steps = max_steps
        self.memory: Dict[int, Union[int, float]] = {}
        self.addresses: Dict[str, int] = {}
        self.steps = 0
        self.profile = EdgeProfile()
        self._layout_globals()

    def _layout_globals(self) -> None:
        addr = 0x10000
        for g in self.module.globals.values():
            self.addresses[g.name] = addr
            if g.init:
                for i, value in enumerate(g.init):
                    self.memory[addr + i * WORD_SIZE] = value
            addr += g.count * WORD_SIZE

    # ------------------------------------------------------------------
    def run(self, entry: str = "main") -> IRRunResult:
        value = self._call(entry, [])
        return IRRunResult(
            return_value=value,
            instructions_executed=self.steps,
            profile=self.profile,
        )

    def _value(self, frame: _Frame, v: Value) -> Union[int, float]:
        if isinstance(v, Const):
            return v.value
        try:
            return frame.env[v]
        except KeyError:
            raise IRInterpreterError(f"read of undefined temp {v!r}")

    def _call(self, name: str, args) -> Union[int, float, None]:
        func = self.module.functions.get(name)
        if func is None:
            raise IRInterpreterError(f"call to unknown function {name!r}")
        if len(args) != len(func.params):
            raise IRInterpreterError(f"arity mismatch calling {name!r}")
        frame = _Frame()
        for param, value in zip(func.params, args):
            frame.env[param] = value

        block = func.entry
        prev_label: Optional[str] = None
        while True:
            key = (name, block.label)
            self.profile.block_counts[key] = (
                self.profile.block_counts.get(key, 0) + 1
            )
            if prev_label is not None:
                ekey = (name, prev_label, block.label)
                self.profile.edge_counts[ekey] = (
                    self.profile.edge_counts.get(ekey, 0) + 1
                )

            for instr in block.instrs:
                self.steps += 1
                if self.steps > self.max_steps:
                    raise IRInterpreterError("step budget exceeded")
                self._execute(frame, instr)

            term = block.terminator
            self.steps += 1
            if self.steps > self.max_steps:
                # Must be checked here too: a loop of empty blocks never
                # enters the instruction loop above.
                raise IRInterpreterError("step budget exceeded")
            if isinstance(term, Return):
                if term.value is None:
                    return None
                return self._value(frame, term.value)
            if isinstance(term, Jump):
                prev_label = block.label
                block = func.block(term.target)
            elif isinstance(term, Branch):
                cond = self._value(frame, term.cond)
                prev_label = block.label
                target = term.then_target if cond != 0 else term.else_target
                block = func.block(target)
            else:
                raise IRInterpreterError(f"unknown terminator {term!r}")

    def _execute(self, frame: _Frame, instr) -> None:
        if isinstance(instr, BinOp):
            a = self._value(frame, instr.a)
            b = self._value(frame, instr.b)
            if instr.dst.type is Type.FLOAT:
                frame.env[instr.dst] = eval_float_binop(instr.op, a, b)
            else:
                frame.env[instr.dst] = eval_int_binop(instr.op, a, b)
        elif isinstance(instr, Copy):
            frame.env[instr.dst] = self._value(frame, instr.src)
        elif isinstance(instr, Cmp):
            frame.env[instr.dst] = eval_cmp(
                instr.op,
                self._value(frame, instr.a),
                self._value(frame, instr.b),
            )
        elif isinstance(instr, UnOp):
            frame.env[instr.dst] = eval_unop(
                instr.op, self._value(frame, instr.a)
            )
        elif isinstance(instr, Addr):
            frame.env[instr.dst] = self.addresses[instr.symbol]
        elif isinstance(instr, Load):
            addr = self._value(frame, instr.base) + self._value(
                frame, instr.offset
            )
            default: Union[int, float] = (
                0.0 if instr.dst.type is Type.FLOAT else 0
            )
            value = self.memory.get(addr, default)
            if instr.dst.type is Type.FLOAT and isinstance(value, int):
                value = float(value)
            frame.env[instr.dst] = value
        elif isinstance(instr, Store):
            addr = self._value(frame, instr.base) + self._value(
                frame, instr.offset
            )
            self.memory[addr] = self._value(frame, instr.src)
        elif isinstance(instr, Prefetch):
            pass
        elif isinstance(instr, Call):
            args = [self._value(frame, a) for a in instr.args]
            result = self._call(instr.callee, args)
            if instr.dst is not None:
                frame.env[instr.dst] = result
        else:
            raise IRInterpreterError(f"cannot interpret {instr!r}")


def interpret(module: Module, max_steps: int = 50_000_000) -> IRRunResult:
    """Execute a module's IR from ``main`` and return its result."""
    return IRInterpreter(module, max_steps=max_steps).run()


def profile_module(module: Module) -> EdgeProfile:
    """Run the module once and return its block/edge profile."""
    return interpret(module).profile

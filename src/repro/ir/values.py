"""IR operand values: virtual registers and constants."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.ir.types import Type


@dataclass(frozen=True)
class Temp:
    """A virtual register.  Names are unique within a function."""

    name: str
    type: Type

    def __repr__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Const:
    """An immediate constant."""

    value: Union[int, float]
    type: Type

    def __post_init__(self):
        if self.type is Type.INT and not isinstance(self.value, int):
            raise TypeError(f"int const with non-int value {self.value!r}")
        if self.type is Type.FLOAT and not isinstance(self.value, float):
            raise TypeError(f"float const with non-float value {self.value!r}")

    def __repr__(self) -> str:
        return f"{self.value}"


Value = Union[Temp, Const]


def int_const(value: int) -> Const:
    return Const(int(value), Type.INT)


def float_const(value: float) -> Const:
    return Const(float(value), Type.FLOAT)

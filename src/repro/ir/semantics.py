"""Operational semantics of IR operators.

This module is the *single source of truth* for what every IR operator
computes: the constant folder, the GCSE/value-numbering pass and the
functional simulator all evaluate operators through these functions, so an
optimization can never disagree with the runtime about an edge case.

Integer semantics: 64-bit two's-complement with wrap-around; division
truncates toward zero; division/modulo by zero yields 0 (MiniC programs
are closed workloads, so a deterministic total semantics is preferable to
traps); shift counts are masked to 0..63.
"""

from __future__ import annotations

from typing import Union

_MASK = (1 << 64) - 1
_SIGN = 1 << 63


def wrap_int(value: int) -> int:
    """Wrap a Python int to signed 64-bit."""
    value &= _MASK
    if value & _SIGN:
        value -= 1 << 64
    return value


def eval_int_binop(op: str, a: int, b: int) -> int:
    if op == "add":
        return wrap_int(a + b)
    if op == "sub":
        return wrap_int(a - b)
    if op == "mul":
        return wrap_int(a * b)
    if op == "div":
        if b == 0:
            return 0
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return wrap_int(q)
    if op == "mod":
        if b == 0:
            return 0
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return wrap_int(a - q * b)
    if op == "and":
        return wrap_int(a & b)
    if op == "or":
        return wrap_int(a | b)
    if op == "xor":
        return wrap_int(a ^ b)
    if op == "shl":
        return wrap_int(a << (b & 63))
    if op == "shr":
        # Arithmetic shift right on the signed value.
        return wrap_int(a >> (b & 63))
    raise ValueError(f"unknown int binop {op!r}")


def eval_float_binop(op: str, a: float, b: float) -> float:
    if op == "fadd":
        return a + b
    if op == "fsub":
        return a - b
    if op == "fmul":
        return a * b
    if op == "fdiv":
        if b == 0.0:
            return 0.0
        return a / b
    raise ValueError(f"unknown float binop {op!r}")


def eval_cmp(op: str, a: Union[int, float], b: Union[int, float]) -> int:
    if op == "eq":
        return int(a == b)
    if op == "ne":
        return int(a != b)
    if op == "lt":
        return int(a < b)
    if op == "le":
        return int(a <= b)
    if op == "gt":
        return int(a > b)
    if op == "ge":
        return int(a >= b)
    raise ValueError(f"unknown comparison {op!r}")


def eval_unop(op: str, a: Union[int, float]) -> Union[int, float]:
    if op == "neg":
        return wrap_int(-a)
    if op == "fneg":
        return -a
    if op == "not":
        return int(a == 0)
    if op == "itof":
        return float(a)
    if op == "ftoi":
        return wrap_int(int(a))
    raise ValueError(f"unknown unop {op!r}")

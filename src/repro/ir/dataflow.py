"""Classic iterative dataflow analyses on the IR.

Provided: liveness (backward -- drives DCE, the register allocator's
intervals and the unroller's iteration-boundary analysis) and reaching
definitions (forward -- available for clients that need def-site
information; the simpler single-definition discipline covers most of the
optimizer's needs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.ir.cfg import predecessors, reverse_postorder, successors
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Instr
from repro.ir.values import Temp


@dataclass
class LivenessResult:
    """Live-in / live-out temp sets per block label."""

    live_in: Dict[str, Set[Temp]]
    live_out: Dict[str, Set[Temp]]


def _block_use_def(block: BasicBlock) -> Tuple[Set[Temp], Set[Temp]]:
    """(upward-exposed uses, defs) of a block."""
    uses: Set[Temp] = set()
    defs: Set[Temp] = set()
    for instr in block.all_instrs():
        for u in instr.uses():
            if isinstance(u, Temp) and u not in defs:
                uses.add(u)
        d = instr.defs()
        if d is not None:
            defs.add(d)
    return uses, defs


def liveness(func: Function) -> LivenessResult:
    """Backward may-analysis: which temps are live at block boundaries."""
    succ = successors(func)
    use: Dict[str, Set[Temp]] = {}
    define: Dict[str, Set[Temp]] = {}
    for block in func.blocks:
        use[block.label], define[block.label] = _block_use_def(block)

    live_in: Dict[str, Set[Temp]] = {b.label: set() for b in func.blocks}
    live_out: Dict[str, Set[Temp]] = {b.label: set() for b in func.blocks}

    order = list(reversed(reverse_postorder(func)))
    changed = True
    while changed:
        changed = False
        for label in order:
            out: Set[Temp] = set()
            for s in succ[label]:
                out |= live_in[s]
            inn = use[label] | (out - define[label])
            if out != live_out[label] or inn != live_in[label]:
                live_out[label] = out
                live_in[label] = inn
                changed = True
    return LivenessResult(live_in, live_out)


#: A definition site: (block label, instruction index within the block).
DefSite = Tuple[str, int]


@dataclass
class ReachingDefsResult:
    """Reaching definitions at block entry/exit.

    Maps block label to a dict temp -> set of definition sites reaching
    that program point.
    """

    reach_in: Dict[str, Dict[Temp, Set[DefSite]]]
    reach_out: Dict[str, Dict[Temp, Set[DefSite]]]


def reaching_definitions(func: Function) -> ReachingDefsResult:
    """Forward may-analysis over definition sites of temps."""
    preds = predecessors(func)

    # Per-block gen/kill in terms of (temp -> sites).
    gen: Dict[str, Dict[Temp, Set[DefSite]]] = {}
    for block in func.blocks:
        g: Dict[Temp, Set[DefSite]] = {}
        for i, instr in enumerate(block.all_instrs()):
            d = instr.defs()
            if d is not None:
                g[d] = {(block.label, i)}  # later defs kill earlier ones
        gen[block.label] = g

    reach_in: Dict[str, Dict[Temp, Set[DefSite]]] = {
        b.label: {} for b in func.blocks
    }
    reach_out: Dict[str, Dict[Temp, Set[DefSite]]] = {
        b.label: {} for b in func.blocks
    }

    # Function parameters reach the entry (site index -1).
    entry_defs: Dict[Temp, Set[DefSite]] = {
        p: {("<param>", -1)} for p in func.params
    }
    order = reverse_postorder(func)
    changed = True
    while changed:
        changed = False
        for label in order:
            if label == func.entry.label:
                inn = {t: set(s) for t, s in entry_defs.items()}
            else:
                inn = {}
            for p in preds[label]:
                for t, sites in reach_out[p].items():
                    inn.setdefault(t, set()).update(sites)
            out = {t: set(s) for t, s in inn.items()}
            for t, sites in gen[label].items():
                out[t] = set(sites)
            if inn != reach_in[label] or out != reach_out[label]:
                reach_in[label] = inn
                reach_out[label] = out
                changed = True
    return ReachingDefsResult(reach_in, reach_out)


def def_use_counts(func: Function) -> Tuple[Dict[Temp, int], Dict[Temp, int]]:
    """(number of defs, number of uses) per temp across the function."""
    defs: Dict[Temp, int] = {}
    uses: Dict[Temp, int] = {}
    for block in func.blocks:
        for instr in block.all_instrs():
            d = instr.defs()
            if d is not None:
                defs[d] = defs.get(d, 0) + 1
            for u in instr.uses():
                if isinstance(u, Temp):
                    uses[u] = uses.get(u, 0) + 1
    return defs, uses

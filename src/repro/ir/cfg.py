"""Control-flow graph utilities."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.function import BasicBlock, Function


def successors(func: Function) -> Dict[str, List[str]]:
    """Block label -> successor labels (in terminator order)."""
    succ: Dict[str, List[str]] = {}
    for block in func.blocks:
        if block.terminator is None:
            raise ValueError(
                f"block {block.label} in {func.name} has no terminator"
            )
        # Deduplicate (a Branch may name the same target twice).
        seen: List[str] = []
        for t in block.terminator.targets():
            if t not in seen:
                seen.append(t)
        succ[block.label] = seen
    return succ


def predecessors(func: Function) -> Dict[str, List[str]]:
    """Block label -> predecessor labels."""
    pred: Dict[str, List[str]] = {b.label: [] for b in func.blocks}
    for label, succs in successors(func).items():
        for s in succs:
            pred[s].append(label)
    return pred


def reverse_postorder(func: Function) -> List[str]:
    """Labels in reverse postorder from the entry block."""
    succ = successors(func)
    visited: Set[str] = set()
    order: List[str] = []

    def dfs(label: str) -> None:
        visited.add(label)
        for s in succ.get(label, []):
            if s not in visited:
                dfs(s)
        order.append(label)

    dfs(func.entry.label)
    order.reverse()
    return order


def reachable_blocks(func: Function) -> Set[str]:
    return set(reverse_postorder(func))


def remove_unreachable(func: Function) -> int:
    """Delete unreachable blocks; returns the number removed."""
    reachable = reachable_blocks(func)
    dead = [b.label for b in func.blocks if b.label not in reachable]
    for label in dead:
        func.remove_block(label)
    return len(dead)

"""Three-address intermediate representation for the MiniC compiler.

The IR is a conventional CFG-of-basic-blocks form: each
:class:`Function` holds an ordered list of :class:`BasicBlock` (the order
*is* the code layout, which the block-reordering pass permutes), each
block holds straight-line :class:`Instr` objects and one terminator.
Operands are virtual registers (:class:`Temp`) or constants
(:class:`Const`); memory is only touched through explicit ``Load`` /
``Store`` against global symbols or computed addresses.

Analyses: dominators, natural loops, liveness, reaching definitions,
and the call graph; plus a reference IR interpreter (:mod:`repro.ir.interp`).
"""

from repro.ir.types import Type
from repro.ir.values import Temp, Const, Value
from repro.ir.instructions import (
    Instr,
    BinOp,
    UnOp,
    Cmp,
    Copy,
    Load,
    Store,
    Addr,
    Call,
    Prefetch,
    Jump,
    Branch,
    Return,
    Terminator,
    INT_BIN_OPS,
    FLOAT_BIN_OPS,
    CMP_OPS,
)
from repro.ir.function import BasicBlock, Function, GlobalVar, Module
from repro.ir.builder import IRBuilder
from repro.ir.cfg import successors, predecessors, reverse_postorder
from repro.ir.dominators import dominator_tree, dominates, immediate_dominators
from repro.ir.loops import Loop, natural_loops, ensure_preheader
from repro.ir.dataflow import liveness, reaching_definitions
from repro.ir.callgraph import CallGraph, build_callgraph
from repro.ir.verify import verify_function, verify_module, IRVerificationError
from repro.ir.printer import format_function, format_module

__all__ = [
    "Type",
    "Temp",
    "Const",
    "Value",
    "Instr",
    "BinOp",
    "UnOp",
    "Cmp",
    "Copy",
    "Load",
    "Store",
    "Addr",
    "Call",
    "Prefetch",
    "Jump",
    "Branch",
    "Return",
    "Terminator",
    "INT_BIN_OPS",
    "FLOAT_BIN_OPS",
    "CMP_OPS",
    "BasicBlock",
    "Function",
    "GlobalVar",
    "Module",
    "IRBuilder",
    "successors",
    "predecessors",
    "reverse_postorder",
    "dominator_tree",
    "immediate_dominators",
    "dominates",
    "Loop",
    "natural_loops",
    "ensure_preheader",
    "liveness",
    "reaching_definitions",
    "CallGraph",
    "build_callgraph",
    "verify_function",
    "verify_module",
    "IRVerificationError",
    "format_function",
    "format_module",
]

"""IR value types.

MiniC has two scalar types; both occupy one 8-byte machine word, so array
indexing scales by a uniform element size.
"""

from __future__ import annotations

import enum


class Type(enum.Enum):
    INT = "int"
    FLOAT = "float"
    #: Functions with no return value.
    VOID = "void"

    @property
    def is_numeric(self) -> bool:
        return self in (Type.INT, Type.FLOAT)


#: Size in bytes of every scalar value and array element.
WORD_SIZE = 8

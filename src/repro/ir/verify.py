"""IR structural verifier.

Run after optimization to catch malformed output early: missing
terminators, dangling branch targets, type mismatches on copies, calls
that disagree with their callee's signature, and -- via a forward
definite-assignment dataflow analysis -- uses of temps that are not
defined along *every* CFG path reaching them.

The definite-assignment check subsumes the old "defined somewhere in the
function" scan, which walked blocks in layout order and therefore
accepted uses that precede their definition on every real execution
path (a block-reordering or hoisting bug could move a def below its use
without being noticed).  Blocks unreachable from the entry have no
execution paths; their uses are only checked against the set of all
definitions in the function (the deep verifier in
:mod:`repro.analysis.ir_verify` flags unreachable blocks themselves).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.ir.cfg import predecessors, reverse_postorder
from repro.ir.function import Function, Module
from repro.ir.instructions import Call, Copy, Return
from repro.ir.types import Type
from repro.ir.values import Temp

class IRVerificationError(Exception):
    """The IR violates a structural invariant."""

def definite_assignments(func: Function) -> Dict[str, Set[Temp]]:
    """Temps definitely assigned at entry to each reachable block.

    Forward must-analysis: a temp is in ``in[b]`` iff every CFG path
    from the entry to ``b`` passes a definition of it.  Parameters are
    assigned on entry.  Unreachable blocks are absent from the result.
    """
    order = reverse_postorder(func)
    reachable = set(order)
    preds = predecessors(func)

    block_defs: Dict[str, Set[Temp]] = {}
    for label in order:
        defs: Set[Temp] = set()
        for instr in func.block(label).all_instrs():
            d = instr.defs()
            if d is not None:
                defs.add(d)
        block_defs[label] = defs

    entry_label = func.entry.label
    assigned_in: Dict[str, Optional[Set[Temp]]] = {
        label: None for label in order  # None = TOP (everything)
    }
    assigned_in[entry_label] = set(func.params)
    changed = True
    while changed:
        changed = False
        for label in order:
            if label == entry_label:
                inn: Optional[Set[Temp]] = set(func.params)
            else:
                inn = None
                for p in preds[label]:
                    if p not in reachable:
                        continue
                    p_out = assigned_in[p]
                    if p_out is None:
                        continue  # TOP: no constraint yet
                    p_out = p_out | block_defs[p]
                    inn = set(p_out) if inn is None else inn & p_out
            if inn is not None and inn != assigned_in[label]:
                assigned_in[label] = inn
                changed = True
    return {
        label: state if state is not None else set()
        for label, state in assigned_in.items()
    }

def _check_call(func: Function, label: str, instr: Call, module: Module) -> None:
    if instr.callee not in module.functions:
        raise IRVerificationError(
            f"{func.name}/{label}: call to unknown function {instr.callee!r}"
        )
    callee = module.functions[instr.callee]
    if len(instr.args) != len(callee.params):
        raise IRVerificationError(
            f"{func.name}/{label}: call to {instr.callee} with "
            f"{len(instr.args)} args, expected {len(callee.params)}"
        )
    for arg, param in zip(instr.args, callee.params):
        if arg.type is not param.type:
            raise IRVerificationError(
                f"{func.name}/{label}: call to {instr.callee} passes "
                f"{arg.type.value} for {param.type.value} parameter "
                f"{param!r}"
            )
    if callee.return_type is Type.VOID:
        if instr.dst is not None:
            raise IRVerificationError(
                f"{func.name}/{label}: call to void function "
                f"{instr.callee} captures a result"
            )
    elif instr.dst is not None and instr.dst.type is not callee.return_type:
        raise IRVerificationError(
            f"{func.name}/{label}: call to {instr.callee} binds "
            f"{callee.return_type.value} result to {instr.dst!r}"
        )

def verify_function(func: Function, module: Optional[Module] = None) -> None:
    """Check structural invariants; raises :class:`IRVerificationError`.

    When ``module`` is provided, every ``Call`` is additionally checked
    against its callee's signature (existence, arity, argument types and
    result binding).
    """
    labels = {b.label for b in func.blocks}
    if not func.blocks:
        raise IRVerificationError(f"{func.name}: no blocks")

    all_defs: Set[Temp] = set(func.params)
    for block in func.blocks:
        if block.terminator is None:
            raise IRVerificationError(
                f"{func.name}/{block.label}: missing terminator"
            )
        for target in block.terminator.targets():
            if target not in labels:
                raise IRVerificationError(
                    f"{func.name}/{block.label}: dangling target {target!r}"
                )
        for instr in block.all_instrs():
            d = instr.defs()
            if d is not None:
                all_defs.add(d)
            if isinstance(instr, Copy):
                if instr.dst.type != instr.src.type:
                    raise IRVerificationError(
                        f"{func.name}/{block.label}: copy type mismatch "
                        f"{instr!r}"
                    )
            if isinstance(instr, Return):
                if func.return_type is Type.VOID and instr.value is not None:
                    raise IRVerificationError(
                        f"{func.name}: void function returns a value"
                    )
                if func.return_type is not Type.VOID and instr.value is None:
                    raise IRVerificationError(
                        f"{func.name}: non-void function returns nothing"
                    )
            if isinstance(instr, Call) and module is not None:
                _check_call(func, block.label, instr, module)

    # Def-before-use along every path: walk each reachable block from its
    # definitely-assigned in-state; a use outside the running set means
    # some path reaches it without a definition.
    assigned_in = definite_assignments(func)
    for block in func.blocks:
        state = assigned_in.get(block.label)
        if state is None:
            # Unreachable: no paths to analyse; fall back to the weak
            # "defined somewhere" check so dead hand-written IR still
            # gets dangling-temp diagnostics.
            for instr in block.all_instrs():
                for u in instr.uses():
                    if isinstance(u, Temp) and u not in all_defs:
                        raise IRVerificationError(
                            f"{func.name}/{block.label}: use of undefined "
                            f"temp {u!r} in {instr!r}"
                        )
            continue
        state = set(state)
        for instr in block.all_instrs():
            for u in instr.uses():
                if isinstance(u, Temp) and u not in state:
                    where = (
                        "never defined"
                        if u not in all_defs
                        else "not defined on all paths"
                    )
                    raise IRVerificationError(
                        f"{func.name}/{block.label}: use of temp {u!r} "
                        f"{where} in {instr!r}"
                    )
            d = instr.defs()
            if d is not None:
                state.add(d)

def verify_module(module: Module) -> None:
    for func in module.functions.values():
        verify_function(func, module)

"""IR structural verifier.

Run after every optimization pass in tests to catch malformed output
early: missing terminators, dangling branch targets, type mismatches on
copies, and uses of never-defined temps.
"""

from __future__ import annotations

from typing import Set

from repro.ir.function import Function, Module
from repro.ir.instructions import Branch, Call, Copy, Return
from repro.ir.types import Type
from repro.ir.values import Temp


class IRVerificationError(Exception):
    """The IR violates a structural invariant."""


def verify_function(func: Function, module: Module = None) -> None:
    labels = {b.label for b in func.blocks}
    if not func.blocks:
        raise IRVerificationError(f"{func.name}: no blocks")

    defined: Set[Temp] = set(func.params)
    for block in func.blocks:
        if block.terminator is None:
            raise IRVerificationError(
                f"{func.name}/{block.label}: missing terminator"
            )
        for target in block.terminator.targets():
            if target not in labels:
                raise IRVerificationError(
                    f"{func.name}/{block.label}: dangling target {target!r}"
                )
        for instr in block.all_instrs():
            d = instr.defs()
            if d is not None:
                defined.add(d)
            if isinstance(instr, Copy) and isinstance(instr.src, Temp):
                if instr.dst.type != instr.src.type:
                    raise IRVerificationError(
                        f"{func.name}/{block.label}: copy type mismatch "
                        f"{instr!r}"
                    )
            if isinstance(instr, Return):
                if func.return_type is Type.VOID and instr.value is not None:
                    raise IRVerificationError(
                        f"{func.name}: void function returns a value"
                    )
                if func.return_type is not Type.VOID and instr.value is None:
                    raise IRVerificationError(
                        f"{func.name}: non-void function returns nothing"
                    )

    # Every used temp must be defined somewhere in the function.  (A full
    # dominance check would be stricter; this catches pass bugs cheaply.)
    for block in func.blocks:
        for instr in block.all_instrs():
            for u in instr.uses():
                if isinstance(u, Temp) and u not in defined:
                    raise IRVerificationError(
                        f"{func.name}/{block.label}: use of undefined "
                        f"temp {u!r} in {instr!r}"
                    )


def verify_module(module: Module) -> None:
    for func in module.functions.values():
        verify_function(func, module)
        for block in func.blocks:
            for instr in block.instrs:
                if isinstance(instr, Call):
                    if instr.callee not in module.functions:
                        raise IRVerificationError(
                            f"{func.name}: call to unknown function "
                            f"{instr.callee!r}"
                        )
                    callee = module.functions[instr.callee]
                    if len(instr.args) != len(callee.params):
                        raise IRVerificationError(
                            f"{func.name}: call to {instr.callee} with "
                            f"{len(instr.args)} args, expected "
                            f"{len(callee.params)}"
                        )

"""Human-readable IR dumps (for debugging and golden tests)."""

from __future__ import annotations

from repro.ir.function import Function, Module


def format_function(func: Function) -> str:
    params = ", ".join(f"{p!r}: {p.type.value}" for p in func.params)
    lines = [f"func {func.name}({params}) -> {func.return_type.value} {{"]
    for block in func.blocks:
        lines.append(f"{block.label}:")
        for instr in block.instrs:
            lines.append(f"    {instr!r}")
        if block.terminator is not None:
            lines.append(f"    {block.terminator!r}")
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    parts = []
    for g in module.globals.values():
        if g.is_array:
            parts.append(f"global {g.type.value} {g.name}[{g.count}]")
        else:
            init = f" = {g.init[0]}" if g.init else ""
            parts.append(f"global {g.type.value} {g.name}{init}")
    for func in module.functions.values():
        parts.append(format_function(func))
    return "\n\n".join(parts)

"""Shared types of the static-analysis subsystem: verification levels,
violations and exception hierarchy.

The subsystem is an opt-in layer over the compile pipeline; everything
here is dependency-light so the hot path can resolve its level with one
environment lookup and no imports of the heavy verifier modules.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.ir.verify import IRVerificationError


class VerifyLevel(enum.Enum):
    """How much verification the compile pipeline performs.

    ``OFF``
        No checks at all; behaviour and output are bit-identical to a
        pipeline without the analysis subsystem.
    ``IR``
        One structural IR verification after the optimization pipeline
        (the historical default of :func:`repro.codegen.compile_module`).
    ``FULL``
        Deep IR verification after every optimization pass, machine-code
        verification after instruction selection, register allocation,
        frame lowering and scheduling (including dependence-order
        preservation), and linked-image checks.
    """

    OFF = "off"
    IR = "ir"
    FULL = "full"

    @property
    def at_least_ir(self) -> bool:
        return self in (VerifyLevel.IR, VerifyLevel.FULL)

    @property
    def is_full(self) -> bool:
        return self is VerifyLevel.FULL


def parse_verify_level(text: str) -> Optional[VerifyLevel]:
    """``"off"``/``"ir"``/``"full"`` -> level; None if unrecognized."""
    try:
        return VerifyLevel(text.strip().lower())
    except ValueError:
        return None


def resolve_verify_level(
    explicit: "VerifyLevel | str | None" = None,
    default: VerifyLevel = VerifyLevel.IR,
) -> VerifyLevel:
    """The effective verification level.

    Resolution order: an explicit argument (level or its string name)
    wins; otherwise the ``REPRO_VERIFY`` environment variable; otherwise
    ``default``.  Unparseable values fall back to ``default`` so a stray
    environment variable can never abort a measurement run.
    """
    if explicit is not None:
        if isinstance(explicit, VerifyLevel):
            return explicit
        parsed = parse_verify_level(explicit)
        if parsed is None:
            raise ValueError(
                f"bad verify level {explicit!r}; expected off/ir/full"
            )
        return parsed
    env = os.environ.get("REPRO_VERIFY")
    if env:
        parsed = parse_verify_level(env)
        if parsed is not None:
            return parsed
    return default


@dataclass(frozen=True)
class Violation:
    """One verifier finding.

    ``rule`` is a stable dotted identifier (``ir.use_undef``,
    ``mc.undef_reg``, ``sem.divergence``, ...); ``where`` locates it
    (function/block/pc); ``pass_name`` attributes it to the pipeline
    stage that produced the broken artifact, when known.
    """

    rule: str
    where: str
    message: str
    pass_name: Optional[str] = None

    def __str__(self) -> str:
        stage = f" [{self.pass_name}]" if self.pass_name else ""
        return f"{self.rule}{stage} at {self.where}: {self.message}"


class AnalysisError(Exception):
    """Base of all sanitizer/verifier failures raised by this package."""


class PassVerificationError(IRVerificationError):
    """Deep IR verification failed after a specific optimization pass.

    Subclasses :class:`repro.ir.IRVerificationError` so existing
    ``except IRVerificationError`` call sites keep working; additionally
    carries the guilty pass and the structured violation list.
    """

    def __init__(self, pass_name: str, violations: List[Violation]):
        self.pass_name = pass_name
        self.violations = list(violations)
        lines = "\n  ".join(str(v) for v in self.violations)
        super().__init__(
            f"IR verification failed after pass {pass_name!r}:\n  {lines}"
        )


class MachineVerificationError(AnalysisError):
    """Machine-code verification failed at a backend stage."""

    def __init__(self, stage: str, violations: List[Violation]):
        self.stage = stage
        self.violations = list(violations)
        lines = "\n  ".join(str(v) for v in self.violations)
        super().__init__(
            f"machine-code verification failed after {stage}:\n  {lines}"
        )


class MiscompileError(AnalysisError):
    """The semantic sanitizer observed diverging program outputs."""

    def __init__(self, message: str, report=None):
        self.report = report
        super().__init__(message)

"""Machine-code verification: isel, regalloc, frames, schedules, links.

Checks the backend's output at every stage of
:func:`repro.codegen.compile_module`:

``stage="isel"``
    Known opcodes, branch/jump targets that name blocks of the function,
    well-formed memory operands, calls into the module.
``stage="regalloc"``
    Everything above, plus: no virtual registers survive, spill
    placeholders stay within the function's slot count, nothing writes
    the hardwired zero register.
``stage="frame"``
    Everything above, plus: no spill placeholders remain, stack-slot
    addressing stays inside the frame (an sp-relative access below the
    stack pointer is clobbered by any callee), and a flow-sensitive
    must-analysis proves every physical register is written before it is
    read -- with calls killing the caller-saved set, so a value parked
    in a caller-saved register across a call is reported instead of
    silently reading the callee's leftovers.

:func:`schedule_preserves_deps` independently rebuilds the dependence
relation of each block (RAW/WAR/WAW over registers, store ordering over
memory, calls and control transfers as barriers) and confirms the list
scheduler emitted a permutation that respects it.  It deliberately does
NOT reuse the scheduler's own DAG builder: a shared bug would hide
itself.

:func:`verify_executable` checks the linked image: every control
transfer resolves to a pc inside the text segment, calls land on
function entries, globals resolve inside the data segment.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.codegen.isa import (
    ARG_REGS,
    CALLEE_SAVED_FP,
    CALLEE_SAVED_INT,
    CALLER_SAVED_FP,
    CALLER_SAVED_INT,
    FARG_REGS,
    FP_REG,
    FRV,
    MachineInstr,
    OPCODE_CLASS,
    OpClass,
    RA,
    RV,
    Reg,
    SCRATCH_FP,
    SCRATCH_INT,
    SP,
    ZERO,
    reg_name,
)
from repro.codegen.isel import FIRST_VREG, MachineFunction
from repro.codegen.linker import Executable
from repro.obs import counter, span

from repro.analysis.base import MachineVerificationError, Violation

_CHECKS = counter("analysis.mc_verify.checks")
_VIOLATIONS = counter("analysis.mc_verify.violations")

#: Registers a call may freely overwrite (callee scratch + argument and
#: return registers + assembler scratch used for the callee's spills).
_CALL_CLOBBERED: Set[Reg] = (
    set(CALLER_SAVED_INT)
    | set(CALLER_SAVED_FP)
    | set(ARG_REGS)
    | set(FARG_REGS)
    | set(SCRATCH_INT)
    | set(SCRATCH_FP)
    | {RV, FRV}
)

#: Registers holding a defined value on function entry: the hardwired
#: zero, stack/frame/return-address bookkeeping, incoming arguments, and
#: the callee-saved set (whose caller values the prologue must be able
#: to read in order to save them).
_ENTRY_DEFINED: Set[Reg] = (
    {ZERO, SP, RA, FP_REG}
    | set(ARG_REGS)
    | set(FARG_REGS)
    | set(CALLEE_SAVED_INT)
    | set(CALLEE_SAVED_FP)
)


def _is_vreg(reg: Reg) -> bool:
    return reg >= FIRST_VREG


def _fmt_loc(fname: str, label: str, index: int) -> str:
    return f"{fname}/{label}#{index}"


def _structural_checks(
    mf: MachineFunction,
    stage: str,
    known_functions: Optional[Iterable[str]],
    out: List[Violation],
) -> None:
    labels = {b.label for b in mf.blocks}
    known = set(known_functions) if known_functions is not None else None
    allow_vregs = stage == "isel"
    allow_spill_placeholders = stage in ("isel", "regalloc")

    for block in mf.blocks:
        for i, instr in enumerate(block.instrs):
            where = _fmt_loc(mf.name, block.label, i)
            if instr.op not in OPCODE_CLASS:
                out.append(
                    Violation("mc.opcode", where, f"unknown opcode {instr.op!r}")
                )
                continue
            cls = instr.op_class
            if cls in (OpClass.BRANCH, OpClass.JUMP):
                if instr.target is None or instr.target not in labels:
                    out.append(
                        Violation(
                            "mc.target",
                            where,
                            f"control transfer to unknown block "
                            f"{instr.target!r}",
                        )
                    )
            if cls is OpClass.CALL and known is not None:
                if instr.target not in known:
                    out.append(
                        Violation(
                            "mc.call_target",
                            where,
                            f"call to unknown function {instr.target!r}",
                        )
                    )
            if cls is OpClass.LOAD and (instr.dst is None or len(instr.srcs) != 1):
                out.append(
                    Violation("mc.operands", where, f"malformed load {instr!r}")
                )
            if cls is OpClass.STORE and len(instr.srcs) != 2:
                out.append(
                    Violation("mc.operands", where, f"malformed store {instr!r}")
                )
            if not allow_vregs:
                for r in instr.regs_read() + instr.regs_written():
                    if _is_vreg(r):
                        out.append(
                            Violation(
                                "mc.vreg",
                                where,
                                f"virtual register v{r} survived allocation",
                            )
                        )
            if instr.dst is not None and instr.dst == ZERO and not _is_vreg(instr.dst):
                out.append(
                    Violation("mc.zero_write", where, "write to hardwired r0")
                )
            if instr.target == "__spill__":
                if not allow_spill_placeholders:
                    out.append(
                        Violation(
                            "mc.spill_placeholder",
                            where,
                            "spill placeholder survived frame lowering",
                        )
                    )
                elif not (
                    isinstance(instr.imm, int)
                    and 0 <= instr.imm < mf.spill_slots
                ):
                    out.append(
                        Violation(
                            "mc.spill_slot",
                            where,
                            f"spill slot {instr.imm!r} outside "
                            f"[0, {mf.spill_slots})",
                        )
                    )


def _block_successors(mf: MachineFunction) -> Dict[str, List[Tuple[str, int]]]:
    """label -> [(target label, index of the transfer instruction)]."""
    labels = {b.label for b in mf.blocks}
    succs: Dict[str, List[Tuple[str, int]]] = {}
    for block in mf.blocks:
        edges: List[Tuple[str, int]] = []
        for i, instr in enumerate(block.instrs):
            if (
                instr.op_class in (OpClass.BRANCH, OpClass.JUMP)
                and instr.target in labels
            ):
                edges.append((instr.target, i))
        succs[block.label] = edges
    return succs


def _frame_size(mf: MachineFunction) -> int:
    """Frame bytes allocated by the prologue (0 for frameless leaves)."""
    if not mf.blocks or not mf.blocks[0].instrs:
        return 0
    for instr in mf.blocks[0].instrs:
        if (
            instr.op == "addi"
            and instr.dst == SP
            and instr.srcs == (SP,)
            and isinstance(instr.imm, int)
            and instr.imm < 0
        ):
            return -instr.imm
    return 0


def _fp_established(mf: MachineFunction, frame_size: int) -> bool:
    """True when the prologue establishes ``fp = sp + frame_size``.

    Under ``-fomit-frame-pointer`` r29 is an ordinary allocatable
    register holding arbitrary pointers, so fp-relative bounds checks
    only apply when the frame pointer is actually set up.
    """
    if not frame_size or not mf.blocks:
        return False
    return any(
        instr.op == "addi"
        and instr.dst == FP_REG
        and instr.srcs == (SP,)
        and instr.imm == frame_size
        for instr in mf.blocks[0].instrs
    )


def _stack_discipline_checks(mf: MachineFunction, out: List[Violation]) -> None:
    """Stack-slot addressing stays inside the established frame."""
    frame_size = _frame_size(mf)
    fp_is_frame_pointer = _fp_established(mf, frame_size)
    for block in mf.blocks:
        for i, instr in enumerate(block.instrs):
            if instr.op_class not in (OpClass.LOAD, OpClass.STORE):
                continue
            base = instr.srcs[0] if instr.srcs else None
            offset = instr.imm if isinstance(instr.imm, int) else 0
            where = _fmt_loc(mf.name, block.label, i)
            if base == SP:
                if offset < 0:
                    out.append(
                        Violation(
                            "mc.stack_clobber",
                            where,
                            f"access below sp (offset {offset}); any call "
                            "clobbers this slot",
                        )
                    )
                elif frame_size and offset >= frame_size and mf.makes_calls:
                    out.append(
                        Violation(
                            "mc.stack_bounds",
                            where,
                            f"sp+{offset} outside the {frame_size}-byte frame",
                        )
                    )
            elif base == FP_REG and fp_is_frame_pointer:
                if not (-frame_size <= offset < 0):
                    out.append(
                        Violation(
                            "mc.stack_bounds",
                            where,
                            f"fp{offset:+d} outside the {frame_size}-byte frame",
                        )
                    )


def _defined_before_use_checks(
    mf: MachineFunction, out: List[Violation]
) -> None:
    """Flow-sensitive must-analysis over physical registers.

    Propagates per *edge* (a mid-block branch exports the state at the
    branch, not at block end) and intersects at joins.  Calls kill the
    caller-saved set and define the return registers, so reads of
    call-clobbered values are reported even though the register was
    written earlier.
    """
    if not mf.blocks:
        return
    succs = _block_successors(mf)
    # in-state per block; None = TOP (not yet constrained).
    in_state: Dict[str, Optional[Set[Reg]]] = {b.label: None for b in mf.blocks}
    in_state[mf.blocks[0].label] = set(_ENTRY_DEFINED)
    block_by_label = {b.label: b for b in mf.blocks}

    def walk(block, state: Set[Reg], report: bool) -> Dict[str, Set[Reg]]:
        """Walk a block; returns the state exported along each edge."""
        exported: Dict[str, Set[Reg]] = {}
        for i, instr in enumerate(block.instrs):
            if report:
                for r in instr.regs_read():
                    if not _is_vreg(r) and r not in state:
                        out.append(
                            Violation(
                                "mc.undef_reg",
                                _fmt_loc(mf.name, block.label, i),
                                f"read of undefined/clobbered register "
                                f"{reg_name(r)}",
                            )
                        )
            cls = instr.op_class
            if (
                cls in (OpClass.BRANCH, OpClass.JUMP)
                and instr.target in block_by_label
            ):
                prev = exported.get(instr.target)
                exported[instr.target] = (
                    set(state) if prev is None else prev & state
                )
            if cls is OpClass.CALL:
                state -= _CALL_CLOBBERED
                state |= {RV, FRV, RA}
            for r in instr.regs_written():
                if not _is_vreg(r):
                    state.add(r)
        return exported

    changed = True
    while changed:
        changed = False
        for block in mf.blocks:
            state = in_state[block.label]
            if state is None:
                continue
            for target, exported in walk(block, set(state), report=False).items():
                current = in_state[target]
                merged = exported if current is None else current & exported
                if merged != current:
                    in_state[target] = merged
                    changed = True

    for block in mf.blocks:
        state = in_state[block.label]
        if state is None:
            continue  # unreachable at machine level; nothing executes it
        walk(block, set(state), report=True)


def verify_machine_function(
    mf: MachineFunction,
    stage: str,
    known_functions: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """All machine-verifier findings for one function at one stage."""
    _CHECKS.inc()
    with span("analysis.mc_verify", function=mf.name, stage=stage):
        out: List[Violation] = []
        _structural_checks(mf, stage, known_functions, out)
        if stage == "frame":
            _stack_discipline_checks(mf, out)
            _defined_before_use_checks(mf, out)
    if out:
        _VIOLATIONS.inc(len(out))
    return out


# ----------------------------------------------------------------------
# Schedule dependence preservation
# ----------------------------------------------------------------------
def _dependence_edges(
    instrs: Sequence[MachineInstr],
) -> List[Tuple[int, int]]:
    """Conservative dependence edges (i before j) over one block.

    Registers: RAW, WAR, WAW.  Memory: stores order against every other
    memory operation (loads/prefetches reorder among themselves).
    Control transfers and calls are barriers: nothing crosses them.
    """
    edges: List[Tuple[int, int]] = []
    last_write: Dict[Reg, int] = {}
    readers: Dict[Reg, List[int]] = {}
    last_store: Optional[int] = None
    loads_since_store: List[int] = []
    barrier: Optional[int] = None

    for i, instr in enumerate(instrs):
        cls = instr.op_class
        if barrier is not None:
            edges.append((barrier, i))
        for r in instr.regs_read():
            if r == ZERO:
                continue
            if r in last_write:
                edges.append((last_write[r], i))
            readers.setdefault(r, []).append(i)
        for r in instr.regs_written():
            if r == ZERO:
                continue
            if r in last_write:
                edges.append((last_write[r], i))
            for j in readers.get(r, []):
                if j != i:
                    edges.append((j, i))
            last_write[r] = i
            readers[r] = []
        if cls is OpClass.STORE:
            if last_store is not None:
                edges.append((last_store, i))
            for j in loads_since_store:
                edges.append((j, i))
            last_store = i
            loads_since_store = []
        elif cls in (OpClass.LOAD, OpClass.PREFETCH):
            if last_store is not None:
                edges.append((last_store, i))
            loads_since_store.append(i)
        if cls.is_control:
            # Everything before the transfer must stay before it, and
            # everything after must stay after: treat it as a fence in
            # both directions.
            for j in range(i):
                edges.append((j, i))
            barrier = i
    return edges


def schedule_preserves_deps(
    before: Sequence[MachineInstr],
    after: Sequence[MachineInstr],
    where: str,
) -> List[Violation]:
    """Check ``after`` is a dependence-respecting permutation of ``before``.

    Instruction identity is object identity: the list scheduler permutes
    the same :class:`MachineInstr` objects, so any insertion, deletion or
    duplication is reported as well.
    """
    out: List[Violation] = []
    pos = {id(instr): i for i, instr in enumerate(after)}
    if len(pos) != len(after) or len(before) != len(after) or any(
        id(instr) not in pos for instr in before
    ):
        out.append(
            Violation(
                "mc.sched_set",
                where,
                f"schedule is not a permutation "
                f"({len(before)} in, {len(after)} out)",
            )
        )
        return out
    for a, b in _dependence_edges(before):
        if pos[id(before[a])] > pos[id(before[b])]:
            out.append(
                Violation(
                    "mc.sched_order",
                    where,
                    f"dependence inverted: {before[a]!r} must precede "
                    f"{before[b]!r}",
                )
            )
    return out


def verify_schedule(
    snapshots: Sequence[Tuple[str, List[MachineInstr]]],
    mf: MachineFunction,
) -> List[Violation]:
    """Compare pre-scheduling block snapshots against ``mf``'s blocks."""
    _CHECKS.inc()
    out: List[Violation] = []
    after = {b.label: b.instrs for b in mf.blocks}
    for label, before in snapshots:
        if label not in after:
            out.append(
                Violation(
                    "mc.sched_block",
                    f"{mf.name}/{label}",
                    "block disappeared during scheduling",
                )
            )
            continue
        out.extend(
            schedule_preserves_deps(before, after[label], f"{mf.name}/{label}")
        )
    if out:
        _VIOLATIONS.inc(len(out))
    return out


def snapshot_blocks(mf: MachineFunction) -> List[Tuple[str, List[MachineInstr]]]:
    """Capture per-block instruction lists before a scheduling pass."""
    return [(b.label, list(b.instrs)) for b in mf.blocks]


# ----------------------------------------------------------------------
# Linked image
# ----------------------------------------------------------------------
def verify_executable(exe: Executable) -> List[Violation]:
    """Check every resolved target and symbol of a linked image."""
    _CHECKS.inc()
    with span("analysis.link_verify", n_instrs=len(exe.instrs)):
        out: List[Violation] = []
        n = len(exe.instrs)
        entries = set(exe.function_entries.values())
        data_end = exe.data_base + exe.data_size
        if not (0 <= exe.entry_pc < n):
            out.append(
                Violation(
                    "mc.link_entry", "entry", f"entry pc {exe.entry_pc} out of range"
                )
            )
        for pc, instr in enumerate(exe.instrs):
            where = f"pc:{pc}"
            cls = instr.op_class
            if instr.target == "__spill__":
                out.append(
                    Violation(
                        "mc.spill_placeholder",
                        where,
                        "spill placeholder reached the linker",
                    )
                )
            for r in instr.regs_read() + instr.regs_written():
                if _is_vreg(r):
                    out.append(
                        Violation(
                            "mc.vreg", where, f"virtual register v{r} in image"
                        )
                    )
            if cls in (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL):
                if instr.target_pc is None or not (0 <= instr.target_pc < n):
                    out.append(
                        Violation(
                            "mc.link_target",
                            where,
                            f"unresolved/out-of-range target "
                            f"{instr.target_pc!r} in {instr!r}",
                        )
                    )
                elif cls is OpClass.CALL and instr.target_pc not in entries:
                    out.append(
                        Violation(
                            "mc.link_call",
                            where,
                            f"call lands at {instr.target_pc}, not a "
                            "function entry",
                        )
                    )
            if instr.op == "la":
                sym = exe.symbols.get(instr.target) if instr.target else None
                if sym is None:
                    out.append(
                        Violation(
                            "mc.link_symbol",
                            where,
                            f"address of unknown symbol {instr.target!r}",
                        )
                    )
                elif not (exe.data_base <= instr.imm < max(data_end, exe.data_base + 1)):
                    out.append(
                        Violation(
                            "mc.link_symbol",
                            where,
                            f"symbol {instr.target!r} resolved outside the "
                            f"data segment ({instr.imm!r})",
                        )
                    )
    if out:
        _VIOLATIONS.inc(len(out))
    return out


def check_machine(
    violations: List[Violation], stage: str
) -> None:
    """Raise :class:`MachineVerificationError` if any findings exist."""
    if violations:
        raise MachineVerificationError(stage, violations)

"""Deep IR verification: dataflow, types, CFG shape, loops, calls.

Extends the structural checks of :mod:`repro.ir.verify` (which already
performs definite-assignment def-before-use and call-signature checking)
with the properties an optimization pass is most likely to break without
crashing:

* **CFG well-formedness** -- consistent label index, no duplicate
  labels, no unreachable blocks (the cleanup pass guarantees their
  removal, so their presence means a pass manufactured dead code and
  nothing swept it), an entry block that exists and owns no stray
  predecessors outside the block list.
* **Full per-instruction type checking** -- every operand and result of
  every opcode, not just copies: int ops take ints, float ops take
  floats, comparisons take same-typed operands and produce ints,
  conversions go the right way, addresses/offsets are integers.
* **Loop-structure invariants** -- after unrolling/LICM every natural
  loop must still have its latches inside its body, a back edge from
  each latch to the header, and nested loop bodies contained in their
  parents'.

All checks return :class:`~repro.analysis.base.Violation` lists so the
lint driver can count them per pass; :func:`check_module_deep` is the
raising wrapper the pipeline uses.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.cfg import reachable_blocks
from repro.ir.function import Function, Module
from repro.ir.instructions import (
    Addr,
    BinOp,
    Branch,
    Call,
    Cmp,
    Copy,
    FLOAT_BIN_OPS,
    INT_BIN_OPS,
    CMP_OPS,
    Load,
    Prefetch,
    Store,
    UnOp,
)
from repro.ir.loops import natural_loops
from repro.ir.types import Type
from repro.ir.values import Const, Temp, Value
from repro.ir.verify import IRVerificationError, verify_function
from repro.obs import counter, span

from repro.analysis.base import PassVerificationError, Violation

_CHECKS = counter("analysis.ir_verify.checks")
_VIOLATIONS = counter("analysis.ir_verify.violations")

#: UnOp signature table: op -> (operand type, result type).
_UNOP_SIGNATURES = {
    "neg": (Type.INT, Type.INT),
    "not": (Type.INT, Type.INT),
    "fneg": (Type.FLOAT, Type.FLOAT),
    "itof": (Type.INT, Type.FLOAT),
    "ftoi": (Type.FLOAT, Type.INT),
}


def _type_of(value: Value) -> Type:
    return value.type  # Temp and Const both carry a type


def _check_types(func: Function, out: List[Violation]) -> None:
    def bad(label: str, instr, detail: str) -> None:
        out.append(
            Violation(
                rule="ir.type",
                where=f"{func.name}/{label}",
                message=f"{detail} in {instr!r}",
            )
        )

    for block in func.blocks:
        for instr in block.all_instrs():
            if isinstance(instr, BinOp):
                if instr.op in INT_BIN_OPS:
                    want = Type.INT
                elif instr.op in FLOAT_BIN_OPS:
                    want = Type.FLOAT
                else:
                    bad(block.label, instr, f"unknown binop {instr.op!r}")
                    continue
                for role, v in (("dst", instr.dst), ("lhs", instr.a), ("rhs", instr.b)):
                    if _type_of(v) is not want:
                        bad(
                            block.label,
                            instr,
                            f"{instr.op} {role} has type "
                            f"{_type_of(v).value}, wants {want.value}",
                        )
            elif isinstance(instr, UnOp):
                sig = _UNOP_SIGNATURES.get(instr.op)
                if sig is None:
                    bad(block.label, instr, f"unknown unop {instr.op!r}")
                    continue
                operand, result = sig
                if _type_of(instr.a) is not operand:
                    bad(
                        block.label,
                        instr,
                        f"{instr.op} operand has type "
                        f"{_type_of(instr.a).value}, wants {operand.value}",
                    )
                if instr.dst.type is not result:
                    bad(
                        block.label,
                        instr,
                        f"{instr.op} result bound to {instr.dst.type.value} "
                        f"temp, produces {result.value}",
                    )
            elif isinstance(instr, Cmp):
                if instr.op not in CMP_OPS:
                    bad(block.label, instr, f"unknown cmp {instr.op!r}")
                    continue
                if instr.dst.type is not Type.INT:
                    bad(block.label, instr, "cmp result must be int")
                if _type_of(instr.a) is not _type_of(instr.b):
                    bad(
                        block.label,
                        instr,
                        f"cmp operand types differ "
                        f"({_type_of(instr.a).value} vs {_type_of(instr.b).value})",
                    )
            elif isinstance(instr, Copy):
                if instr.dst.type is not _type_of(instr.src):
                    bad(block.label, instr, "copy type mismatch")
            elif isinstance(instr, (Load, Store, Prefetch)):
                if _type_of(instr.base) is not Type.INT:
                    bad(block.label, instr, "memory base must be int")
                if _type_of(instr.offset) is not Type.INT:
                    bad(block.label, instr, "memory offset must be int")
            elif isinstance(instr, Addr):
                if instr.dst.type is not Type.INT:
                    bad(block.label, instr, "address must be int")
            elif isinstance(instr, Branch):
                if _type_of(instr.cond) is not Type.INT:
                    bad(block.label, instr, "branch condition must be int")


def _check_cfg(func: Function, out: List[Violation]) -> None:
    labels = [b.label for b in func.blocks]
    seen = set()
    for label in labels:
        if label in seen:
            out.append(
                Violation(
                    rule="ir.cfg.duplicate_label",
                    where=f"{func.name}/{label}",
                    message="duplicate block label",
                )
            )
        seen.add(label)
    # The label index must describe exactly the block list (external
    # surgery is required to call Function.reindex()).
    for block in func.blocks:
        if not func.has_block(block.label) or func.block(block.label) is not block:
            out.append(
                Violation(
                    rule="ir.cfg.index",
                    where=f"{func.name}/{block.label}",
                    message="block index out of sync with block list",
                )
            )
    if not func.blocks:
        return
    if any(b.terminator is None for b in func.blocks):
        return  # structural verify already reported it; CFG walks need terminators
    reachable = reachable_blocks(func)
    for block in func.blocks:
        if block.label not in reachable:
            out.append(
                Violation(
                    rule="ir.cfg.unreachable",
                    where=f"{func.name}/{block.label}",
                    message="unreachable block survived cleanup",
                )
            )


def _check_loops(func: Function, out: List[Violation]) -> None:
    if any(b.terminator is None for b in func.blocks):
        return
    try:
        loops = natural_loops(func)
    except Exception as exc:  # analysis itself must never crash the verifier
        out.append(
            Violation(
                rule="ir.loops.analysis",
                where=func.name,
                message=f"loop analysis failed: {exc!r}",
            )
        )
        return
    from repro.ir.cfg import successors

    succ = successors(func)
    for loop in loops:
        if loop.header not in loop.body:
            out.append(
                Violation(
                    rule="ir.loops.header",
                    where=f"{func.name}/{loop.header}",
                    message="loop header not contained in its own body",
                )
            )
        for latch in loop.latches:
            if latch not in loop.body:
                out.append(
                    Violation(
                        rule="ir.loops.latch",
                        where=f"{func.name}/{latch}",
                        message=f"latch outside loop body of {loop.header}",
                    )
                )
            if loop.header not in succ.get(latch, []):
                out.append(
                    Violation(
                        rule="ir.loops.backedge",
                        where=f"{func.name}/{latch}",
                        message=f"latch has no back edge to {loop.header}",
                    )
                )
        for child in loop.children:
            if not child.body <= loop.body:
                out.append(
                    Violation(
                        rule="ir.loops.nesting",
                        where=f"{func.name}/{child.header}",
                        message=(
                            f"inner loop escapes its parent "
                            f"({sorted(child.body - loop.body)})"
                        ),
                    )
                )


def deep_verify_function(
    func: Function, module: Optional[Module] = None
) -> List[Violation]:
    """All deep-verifier findings for one function (empty = clean)."""
    out: List[Violation] = []
    try:
        verify_function(func, module)
    except IRVerificationError as exc:
        out.append(
            Violation(rule="ir.structure", where=func.name, message=str(exc))
        )
    _check_cfg(func, out)
    _check_types(func, out)
    _check_loops(func, out)
    return out


def deep_verify_module(module: Module) -> List[Violation]:
    """Deep-verify every function plus module-level symbol references."""
    _CHECKS.inc()
    with span("analysis.ir_verify", n_functions=len(module.functions)):
        out: List[Violation] = []
        for func in module.functions.values():
            out.extend(deep_verify_function(func, module))
            for block in func.blocks:
                for instr in block.instrs:
                    if isinstance(instr, Addr) and instr.symbol not in module.globals:
                        out.append(
                            Violation(
                                rule="ir.symbol",
                                where=f"{func.name}/{block.label}",
                                message=f"address of unknown global {instr.symbol!r}",
                            )
                        )
    if out:
        _VIOLATIONS.inc(len(out))
    return out


def check_module_deep(module: Module, pass_name: Optional[str] = None) -> None:
    """Raise on any deep-verifier finding.

    With ``pass_name``, raises :class:`PassVerificationError` (an
    :class:`IRVerificationError` subclass carrying the guilty pass and
    the violation list); otherwise a plain :class:`IRVerificationError`.
    """
    violations = deep_verify_module(module)
    if not violations:
        return
    if pass_name is not None:
        raise PassVerificationError(pass_name, violations)
    lines = "\n  ".join(str(v) for v in violations)
    raise IRVerificationError(f"deep IR verification failed:\n  {lines}")

"""``repro lint``: sweep a workload across flag vectors under full
verification and report violations per pass.

The lint driver compiles one workload many times -- at the preset
corners (O0/O2/O3, everything-on, unroll-heavy, inline-heavy: the
regions a flag-tuning GA visits most) plus seeded random flag/heuristic
vectors -- with ``REPRO_VERIFY=full`` semantics, executes each binary on
the functional simulator, and compares against the reference IR
interpretation of the unoptimized module.  Verifier violations are
attributed to their pass (or backend stage); semantic divergences are
handed to the miscompile bisector for attribution.

Everything is seeded: the same ``(workload, seed, n_random)`` always
lints the same vectors.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.base import (
    MachineVerificationError,
    VerifyLevel,
)
from repro.analysis.sanitize import bisect_passes
from repro.codegen.compile import compile_module
from repro.ir.interp import interpret
from repro.ir.verify import IRVerificationError
from repro.obs import counter, span
from repro.opt.flags import CompilerConfig, O0, O2, O3
from repro.sim.func import execute
from repro.workloads.registry import get_workload

_VECTORS = counter("analysis.lint.vectors")
_FINDINGS = counter("analysis.lint.findings")

#: Heuristic sampling ranges (matching the design-space tables).
_HEURISTIC_RANGES: Dict[str, Tuple[int, int]] = {
    "max_inline_insns_auto": (50, 150),
    "inline_unit_growth": (25, 75),
    "inline_call_cost": (12, 20),
    "max_unroll_times": (4, 12),
    "max_unrolled_insns": (100, 300),
}


def corner_configs() -> List[Tuple[str, CompilerConfig]]:
    """The hand-picked corners every lint run visits."""
    all_on = CompilerConfig(
        **{name: True for name in CompilerConfig._FLAG_NAMES}
    )
    return [
        ("O0", O0),
        ("O2", O2),
        ("O3", O3),
        ("all-on", all_on),
        (
            "unroll-heavy",
            CompilerConfig(
                unroll_loops=True,
                loop_optimize=True,
                strength_reduce=True,
                schedule_insns2=True,
                max_unroll_times=12,
                max_unrolled_insns=300,
            ),
        ),
        (
            "inline-heavy",
            CompilerConfig(
                inline_functions=True,
                gcse=True,
                omit_frame_pointer=True,
                max_inline_insns_auto=150,
                inline_unit_growth=75,
                inline_call_cost=12,
            ),
        ),
    ]


def random_config(rng: random.Random) -> CompilerConfig:
    """One uniformly random flag/heuristic vector."""
    kwargs: Dict[str, object] = {
        name: rng.random() < 0.5 for name in CompilerConfig._FLAG_NAMES
    }
    for name, (lo, hi) in _HEURISTIC_RANGES.items():
        kwargs[name] = rng.randint(lo, hi)
    return CompilerConfig(**kwargs)


def lint_vectors(
    n_random: int, seed: int
) -> List[Tuple[str, CompilerConfig]]:
    """Corner configs plus ``n_random`` seeded random vectors."""
    vectors = corner_configs()
    rng = random.Random(seed)
    for i in range(n_random):
        vectors.append((f"rand{i}", random_config(rng)))
    return vectors


@dataclass
class LintFinding:
    """One violation or divergence observed during the sweep."""

    vector: str
    config: CompilerConfig
    kind: str  # "ir", "machine", "semantic"
    pass_name: str  # guilty pass / backend stage / "unknown"
    detail: str


@dataclass
class LintReport:
    """Outcome of linting one workload."""

    workload: str
    input_name: str
    n_vectors: int
    findings: List[LintFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def per_pass_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.pass_name] = counts.get(f.pass_name, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form (``repro lint --json``; CI consumes it)."""
        return {
            "ok": self.ok,
            "workload": self.workload,
            "input": self.input_name,
            "n_vectors": self.n_vectors,
            "n_findings": len(self.findings),
            "per_pass": self.per_pass_counts(),
            "findings": [
                {
                    "vector": f.vector,
                    "kind": f.kind,
                    "pass": f.pass_name,
                    "detail": f.detail,
                }
                for f in self.findings
            ],
        }

    def summary(self) -> str:
        lines = [
            f"lint {self.workload}/{self.input_name}: "
            f"{self.n_vectors} vectors, {len(self.findings)} findings"
        ]
        if self.findings:
            lines.append("violations per pass:")
            for name, count in sorted(
                self.per_pass_counts().items(), key=lambda kv: -kv[1]
            ):
                lines.append(f"  {name:12s} {count}")
            for f in self.findings:
                lines.append(f"[{f.vector}] {f.kind}: {f.detail}")
        return "\n".join(lines)


def lint_workload(
    workload: str,
    input_name: str = "train",
    n_random: int = 8,
    seed: int = 0,
    issue_width: int = 4,
    progress=None,
) -> LintReport:
    """Sweep one workload under full verification; see module docstring."""
    w = get_workload(workload)
    module = w.module(input_name)
    reference = interpret(copy.deepcopy(module)).return_value

    vectors = lint_vectors(n_random, seed)
    report = LintReport(
        workload=workload, input_name=input_name, n_vectors=len(vectors)
    )
    with span("analysis.lint", workload=workload, n_vectors=len(vectors)):
        for vec_name, config in vectors:
            _VECTORS.inc()
            if progress is not None:
                progress(vec_name)
            finding = _lint_one(
                module, config, vec_name, reference, issue_width
            )
            if finding is not None:
                _FINDINGS.inc()
                report.findings.append(finding)
    return report


def _lint_one(
    module,
    config: CompilerConfig,
    vec_name: str,
    reference,
    issue_width: int,
) -> Optional[LintFinding]:
    try:
        exe = compile_module(
            module,
            config,
            issue_width=issue_width,
            verify_level=VerifyLevel.FULL,
        )
    except MachineVerificationError as exc:
        return LintFinding(
            vector=vec_name,
            config=config,
            kind="machine",
            pass_name=exc.stage,
            detail=str(exc),
        )
    except IRVerificationError as exc:
        # PassVerificationError subclasses this and carries the pass.
        return LintFinding(
            vector=vec_name,
            config=config,
            kind="ir",
            pass_name=getattr(exc, "pass_name", "unknown"),
            detail=str(exc),
        )
    value = execute(exe).return_value
    if value != reference:
        bisection = bisect_passes(module, config, reference)
        return LintFinding(
            vector=vec_name,
            config=config,
            kind="semantic",
            pass_name=bisection.guilty_pass or "backend",
            detail=(
                f"machine value {value!r} != reference {reference!r}; "
                f"{bisection.reason}"
            ),
        )
    return None

"""Opt-in static analysis and sanitizing for the compile pipeline.

Three layers, all off the hot path unless requested (``--verify`` /
``REPRO_VERIFY``):

* :mod:`repro.analysis.ir_verify` -- deep IR verification (dataflow
  def-before-use on all paths, full per-instruction type checking, CFG
  well-formedness, loop-structure invariants), run after every
  optimization pass at ``REPRO_VERIFY=full``.
* :mod:`repro.analysis.mc_verify` -- machine-code verification after
  instruction selection, register allocation, frame lowering and
  scheduling (dependence-order preservation), plus linked-image checks.
* :mod:`repro.analysis.sanitize` / :mod:`repro.analysis.lint` --
  differential execution against the reference IR interpreter, with
  pass-granular miscompile bisection, and the ``repro lint`` sweep
  driver.

Only :mod:`repro.analysis.base` is imported eagerly; the verifier,
sanitizer and lint modules load on first attribute access (PEP 562).
This keeps ``import repro.analysis`` nearly free for the default
compile path and breaks the cycle with :mod:`repro.codegen.compile`
and :mod:`repro.opt.pipeline`, which the heavy modules import.

See ``docs/ANALYSIS.md`` for the user-facing tour.
"""

from repro.analysis.base import (
    AnalysisError,
    MachineVerificationError,
    MiscompileError,
    PassVerificationError,
    VerifyLevel,
    Violation,
    parse_verify_level,
    resolve_verify_level,
)

#: Lazily resolved name -> defining submodule.
_LAZY = {
    "check_module_deep": "repro.analysis.ir_verify",
    "deep_verify_function": "repro.analysis.ir_verify",
    "deep_verify_module": "repro.analysis.ir_verify",
    "LintFinding": "repro.analysis.lint",
    "LintReport": "repro.analysis.lint",
    "lint_workload": "repro.analysis.lint",
    "schedule_preserves_deps": "repro.analysis.mc_verify",
    "verify_executable": "repro.analysis.mc_verify",
    "verify_machine_function": "repro.analysis.mc_verify",
    "BisectionResult": "repro.analysis.sanitize",
    "SanitizeReport": "repro.analysis.sanitize",
    "bisect_passes": "repro.analysis.sanitize",
    "check_sanitized": "repro.analysis.sanitize",
    "sanitize_module": "repro.analysis.sanitize",
}

__all__ = [
    "AnalysisError",
    "MachineVerificationError",
    "MiscompileError",
    "PassVerificationError",
    "VerifyLevel",
    "Violation",
    "parse_verify_level",
    "resolve_verify_level",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))

"""Optimization remarks: structured fired/declined records from passes.

Every optimization pass (licm/unroll/gcse/inline/prefetch/strength/
reorder in ``repro.opt``, plus the backend scheduler) reports what it
did -- and, just as importantly, what it *declined* to do and why --
through :func:`emit`.  Collection is opt-in and scoped: remarks only
exist while a :func:`collecting` context is active, and :func:`emit`
returns immediately when none is, so the default compile path pays one
predicate check per remark site and allocates nothing.  Emission never
influences pass decisions; with no collector installed the compiler's
output is bit-identical to a build without this module.

Reports serialize to a schema-versioned JSONL stream (one header line,
one line per remark, one trailing summary line) consumed by
``repro analyze`` and validated by :func:`validate_report_lines`.
"""

from __future__ import annotations

import contextlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

#: Bump when the JSONL layout or remark fields change incompatibly.
REMARK_SCHEMA_VERSION = 1

#: Pass names allowed in remark streams (the 7 IR passes + the backend
#: instruction scheduler).
KNOWN_PASSES = (
    "licm",
    "unroll",
    "gcse",
    "inline",
    "prefetch",
    "strength",
    "reorder",
    "sched",
)

ACTIONS = ("fired", "declined")

#: Default per-level trip-count multiplier for benefit estimates at
#: remark-emission time (passes do not run the full trip-count analysis;
#: the cost model does).
DEFAULT_TRIP = 16


def depth_freq(depth: int) -> float:
    """Crude execution-frequency estimate for a loop at ``depth``."""
    return float(DEFAULT_TRIP ** max(1, min(int(depth), 4)))


@dataclass(frozen=True)
class Remark:
    """One structured optimization remark.

    ``benefit`` is the pass's own estimate of cycles saved (fired) or
    forgone (declined), frequency-weighted with :func:`depth_freq`; the
    drift lint cross-checks these claims against measurements.
    """

    pass_name: str
    action: str
    function: str
    location: str
    reason: str
    benefit: float = 0.0
    details: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "remark",
            "pass": self.pass_name,
            "action": self.action,
            "function": self.function,
            "location": self.location,
            "reason": self.reason,
            "benefit": round(float(self.benefit), 3),
            "details": dict(self.details),
        }


class RemarkCollector:
    """Accumulates remarks while installed via :func:`collecting`."""

    def __init__(self) -> None:
        self.remarks: List[Remark] = []

    def add(self, remark: Remark) -> None:
        self.remarks.append(remark)

    def by_pass(self) -> Dict[str, List[Remark]]:
        out: Dict[str, List[Remark]] = {}
        for r in self.remarks:
            out.setdefault(r.pass_name, []).append(r)
        return out

    def counts(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for r in self.remarks:
            slot = out.setdefault(r.pass_name, {"fired": 0, "declined": 0})
            slot[r.action] = slot.get(r.action, 0) + 1
        return out


#: Stack of active collectors; passes broadcast to all of them so nested
#: scopes (e.g. a sweep around a single-config analysis) both see the
#: stream.
_ACTIVE: List[RemarkCollector] = []


def enabled() -> bool:
    """True when at least one collector is installed (the pass-side
    fast-path predicate)."""
    return bool(_ACTIVE)


def emit(
    pass_name: str,
    action: str,
    function: str,
    location: str,
    reason: str,
    benefit: float = 0.0,
    **details: object,
) -> None:
    """Record one remark into every active collector (no-op when none)."""
    if not _ACTIVE:
        return
    remark = Remark(
        pass_name=pass_name,
        action=action,
        function=function,
        location=location,
        reason=reason,
        benefit=float(benefit),
        details=details,
    )
    for collector in _ACTIVE:
        collector.add(remark)


@contextlib.contextmanager
def collecting() -> Iterator[RemarkCollector]:
    """Scope within which passes emit remarks into the yielded collector."""
    collector = RemarkCollector()
    _ACTIVE.append(collector)
    try:
        yield collector
    finally:
        _ACTIVE.remove(collector)


# ----------------------------------------------------------------------
# JSONL report serialization + validation
# ----------------------------------------------------------------------
def report_lines(
    remarks: Sequence[Remark], header: Optional[Dict[str, object]] = None
) -> List[str]:
    """Serialize remarks to schema-versioned JSONL lines."""
    head: Dict[str, object] = {
        "kind": "header",
        "schema_version": REMARK_SCHEMA_VERSION,
    }
    if header:
        head.update(header)
        head["kind"] = "header"
        head["schema_version"] = REMARK_SCHEMA_VERSION
    counts: Dict[str, Dict[str, int]] = {}
    for r in remarks:
        slot = counts.setdefault(r.pass_name, {"fired": 0, "declined": 0})
        slot[r.action] = slot.get(r.action, 0) + 1
    lines = [json.dumps(head, sort_keys=True)]
    lines += [json.dumps(r.to_dict(), sort_keys=True) for r in remarks]
    lines.append(
        json.dumps(
            {
                "kind": "summary",
                "n_remarks": len(remarks),
                "per_pass": counts,
            },
            sort_keys=True,
        )
    )
    return lines


def write_report(
    path: Union[str, Path],
    remarks: Sequence[Remark],
    header: Optional[Dict[str, object]] = None,
    append: bool = False,
) -> None:
    """Write (or append) a remark report to a JSONL file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = "\n".join(report_lines(remarks, header)) + "\n"
    with open(path, "a" if append else "w") as f:
        f.write(text)


def validate_report_lines(lines: Sequence[str]) -> List[str]:
    """Validate a JSONL remark stream; returns a list of problems.

    A file may hold several concatenated reports (a sweep appends one
    per vector); each must open with a schema-matching header, contain
    only well-formed remark lines, and close with a summary whose counts
    match the remarks actually present.
    """
    problems: List[str] = []
    in_report = False
    seen_remarks = 0
    counts: Dict[str, Dict[str, int]] = {}
    n_reports = 0
    for lineno, raw in enumerate(lines, 1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            obj = json.loads(raw)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: invalid JSON ({exc})")
            continue
        if not isinstance(obj, dict):
            problems.append(f"line {lineno}: expected an object")
            continue
        kind = obj.get("kind")
        if kind == "header":
            if in_report:
                problems.append(f"line {lineno}: header before prior summary")
            if obj.get("schema_version") != REMARK_SCHEMA_VERSION:
                problems.append(
                    f"line {lineno}: schema_version "
                    f"{obj.get('schema_version')!r} != {REMARK_SCHEMA_VERSION}"
                )
            in_report = True
            n_reports += 1
            seen_remarks = 0
            counts = {}
        elif kind == "remark":
            if not in_report:
                problems.append(f"line {lineno}: remark outside a report")
            for fld, typ in (
                ("pass", str),
                ("action", str),
                ("function", str),
                ("location", str),
                ("reason", str),
                ("benefit", (int, float)),
                ("details", dict),
            ):
                if not isinstance(obj.get(fld), typ):
                    problems.append(f"line {lineno}: bad field {fld!r}")
            if obj.get("pass") not in KNOWN_PASSES:
                problems.append(
                    f"line {lineno}: unknown pass {obj.get('pass')!r}"
                )
            if obj.get("action") not in ACTIONS:
                problems.append(
                    f"line {lineno}: unknown action {obj.get('action')!r}"
                )
            if not obj.get("reason"):
                problems.append(f"line {lineno}: empty reason")
            if isinstance(obj.get("benefit"), (int, float)) and obj["benefit"] < 0:
                problems.append(f"line {lineno}: negative benefit")
            seen_remarks += 1
            if isinstance(obj.get("pass"), str) and obj.get("action") in ACTIONS:
                slot = counts.setdefault(
                    obj["pass"], {"fired": 0, "declined": 0}
                )
                slot[obj["action"]] += 1
        elif kind == "summary":
            if not in_report:
                problems.append(f"line {lineno}: summary outside a report")
            else:
                if obj.get("n_remarks") != seen_remarks:
                    problems.append(
                        f"line {lineno}: summary n_remarks "
                        f"{obj.get('n_remarks')} != {seen_remarks} remarks seen"
                    )
                if obj.get("per_pass") != counts:
                    problems.append(f"line {lineno}: summary per_pass mismatch")
            in_report = False
        else:
            problems.append(f"line {lineno}: unknown kind {kind!r}")
    if in_report:
        problems.append("stream ends inside a report (missing summary)")
    if n_reports == 0:
        problems.append("no report header found")
    return problems


def validate_report(path: Union[str, Path]) -> List[str]:
    """Validate a remark JSONL file; returns a list of problems."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        return [f"unreadable: {exc}"]
    return validate_report_lines(text.splitlines())

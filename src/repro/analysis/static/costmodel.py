"""Analytical cost model: static features -> cycle estimate per config.

Concorde-style (PAPERS.md, arXiv:2503.23076) composition of
per-component throughput/penalty bounds, evaluated in microseconds per
(compiler, microarch) point from a :class:`ModuleSummary` computed once
per workload:

* a **core bound** per block: ``max(instrs/effective-issue-width,
  chain-share x critical-path)`` where the effective width folds in
  RUU-occupancy limits and per-class functional-unit contention;
* a **memory penalty** per analyzed stream: stride/footprint vs the
  cache sizes give L1/L2/memory miss streams, divided by an
  RUU-bounded memory-level-parallelism factor and lower-bounded by the
  L2<->memory bus serialization (which is what makes prefetching
  matter);
* a **branch penalty** per branch class: base predictability times a
  table-aliasing factor from ``bpred_size``, times the resolve penalty;
* an **I-fetch penalty** when the hot (loop) code footprint -- after
  unroll/inline code growth -- overflows the I-cache (the paper's
  Figure 3 unroll x icache interaction).

Compiler flags act on the *features*, not on re-optimized IR: LICM
removes hoisted instructions from loop bodies, unrolling amortizes
header overhead by the factor the unroller would pick, inlining deletes
call overhead for the sites the inliner would accept, prefetching
covers stream misses at a calibrated rate, etc.  The per-pass feature
counts come from the optimization-remark stream
(:mod:`repro.analysis.static.remarks`) harvested by the oracle.

All constants live in :data:`CONST`, calibrated once against the
accurate simulator across the seven workloads (see
``benchmarks/bench_static_oracle.py`` for the error/speedup report).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.static.analyses import ModuleSummary
from repro.opt.flags import CompilerConfig
from repro.sim.config import MicroarchConfig

#: Calibration constants (fitted once, global across workloads, by a
#: coordinate-descent + random-perturbation search maximizing the
#: minimum per-workload Spearman rank correlation against the accurate
#: simulator over the ``bench_static_oracle`` design points; see that
#: benchmark for the resulting per-workload correlations).
CONST = {
    # Core: share of the block critical path that resists OOO overlap.
    "cp_share": 0.4807,
    # RUU half-saturation point for effective issue width.
    "ruu_issue_k": 46.4628,
    # Memory-level parallelism: RUU entries per outstanding miss.
    "mlp_ruu_div": 24.255,
    "mlp_max": 4.4251,
    # Cache-capacity occupancy threshold before misses start.
    "cap_frac": 9.8839,
    # Conflict-miss inflation, decaying with associativity (L1 / L2).
    "conflict_dm": 0.2328,
    "conflict_l2": 0.5068,
    # Stream contention: extra miss rate when a loop walks more
    # concurrent streams than the cache has ways (L1 / L2).
    "conflict_w": 0.6666,
    "conflict_l2w": 0.2482,
    # Prefetch: fraction of stream miss penalty covered.
    "pf_coverage": 0.5871,
    # Branch: penalty beyond mispredict_penalty (front-end refill).
    "br_refill": 13.5847,
    # Branch: aliasing growth per halving of bpred_size below 4096.
    "bp_alias": 0.2383,
    # Taken-branch fetch-bubble cycles (reduced by block reordering).
    "taken_bubble": 1.1173,
    "taken_frac": 0.5213,
    "taken_frac_reordered": 0.3665,
    # Scheduling: critical-path share shaved by pre-RA list scheduling,
    # plus sustained-issue gain from pre/post-RA slot packing.
    "sched_cp_gain": 0.3451,
    "sched_tp_gain": 0.2514,
    # Extra core cycles per load per L1-hit-latency cycle beyond 1.
    "load_lat_w": 0.7863,
    # Fraction of LICM's per-iteration shrink that also shortens the
    # block dependence chains (hoisted address arithmetic fed them).
    "licm_cp_w": 0.391,
    # Same, for chains through GCSE-collapsed redundancies.
    "gcse_cp_w": 0.1812,
    # Fraction of the smaller of (core, memory) time the OOO window
    # overlaps away: memory-bound runs hide core work and vice versa.
    "mem_overlap": 0.3051,
    # Dependence chains still consume fetch/commit bandwidth: the chain
    # bound stretches on narrow machines as (ref_width/width)**exp.
    "cp_iw_exp": 3.0,
    # Saturation for the (stretched) chain bound, in cycles per block
    # instruction; 0 disables the cap.  Without it the width stretch
    # runs away on chain-dominated blocks (art on 2-wide machines).
    "cp_cap": 3.0104,
    # Register-pressure cost of unrolling: spill instructions per body
    # instruction beyond the pressure cap, inserted by the allocator.
    "spill_cap": 40.7788,
    "spill_w": 2.9662,
    # IR instr -> machine instr expansion (calibrated vs code_size).
    "lower_factor": 1.8218,
    "bytes_per_instr": 8.0,
    # Frame prologue+epilogue instructions per call.
    "frame_full": 8.776,
    "frame_omit": 4.557,
    # I-cache overflow: per-instruction fetch-stall weight.
    "icache_weight": 1.6443,
    # GCSE removes this fraction of its statically-redundant finds
    # dynamically (some sit on cold paths).
    "gcse_eff": 0.4954,
}


@dataclass
class InlineSite:
    caller: str
    block: str
    callee: str
    size: int
    n_args: int
    depth: int = 0


@dataclass
class UnrollCandidate:
    #: Loop size in IR instructions when the unroller analyzed it.
    size: int
    counted: bool


@dataclass
class PassFeatures:
    """Per-pass opportunity counts, harvested from the remark stream of
    a reference optimization run (see ``StaticOracle``)."""

    #: (function, loop header) -> instructions LICM hoists.
    hoistable: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: (function, loop header) -> IV multiplies strength reduction rewrites.
    strength: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: function -> redundant expressions GCSE removes.
    gcse_removed: Dict[str, int] = field(default_factory=dict)
    #: Call sites the inliner can see, with callee sizes.
    inline_sites: List[InlineSite] = field(default_factory=list)
    #: (function, loop header) -> prefetchable stream count.
    prefetch_streams: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: (function, loop header) -> unroll candidate info.
    unrollable: Dict[Tuple[str, str], UnrollCandidate] = field(
        default_factory=dict
    )


@dataclass
class CostBreakdown:
    """One static estimate, with per-component attribution."""

    cycles: float
    instructions: float
    code_size: int
    components: Dict[str, float]


def _fu_scale(issue_width: int) -> int:
    return max(1, issue_width // 2)


class StaticCostModel:
    """Evaluates (compiler, microarch) points against one summary."""

    def __init__(self, summary: ModuleSummary, features: PassFeatures):
        self.summary = summary
        self.features = features
        # Pre-flatten the summary into plain tuples so per-point
        # evaluation is a straight float loop (microseconds, not ms).
        self._blocks: List[tuple] = []
        self._streams: List[tuple] = []
        self._branches: List[tuple] = []
        self._loop_iters: Dict[Tuple[str, str], float] = {}
        self._loop_entries: Dict[Tuple[str, str], float] = {}
        self._loop_nstreams: Dict[Tuple[str, str], int] = {}
        self._loop_body_n: Dict[Tuple[str, str], float] = {}
        self._hot_static = 0.0
        self._calls = 0.0
        header_of: Dict[Tuple[str, str], str] = {}
        for fname, fs in summary.functions.items():
            ef = fs.entry_freq
            if ef <= 0:
                continue
            self._calls += ef
            for ls in fs.loops:
                key = (fname, ls.header)
                self._loop_iters[key] = ls.iterations
                self._loop_entries[key] = max(
                    ls.iterations / max(ls.trip_estimate, 1.0), 0.0
                )
                self._loop_body_n[key] = float(ls.body_instrs)
                if ls.depth >= 1:
                    self._hot_static += ls.body_instrs
                for label in ls.blocks:
                    # Innermost wins: loops arrive outermost-first.
                    header_of[(fname, label)] = ls.header
            headers = {ls.header for ls in fs.loops}
            for label, bm in fs.blocks.items():
                freq = fs.local_freq.get(label, 0.0) * ef
                if freq <= 0:
                    continue
                self._blocks.append(
                    (
                        fname,
                        label,
                        freq,
                        float(bm.n_instrs),
                        bm.mix,
                        bm.crit_path,
                        float(bm.loads_on_path),
                        label in headers,
                        header_of.get((fname, label)),
                    )
                )
            for s in fs.streams:
                if s.loop is None:
                    continue
                freq = fs.local_freq.get(s.block, 0.0) * ef
                if freq <= 0:
                    continue
                if s.kind != "prefetch" and s.reuse != "scalar":
                    k = (fname, s.loop)
                    self._loop_nstreams[k] = self._loop_nstreams.get(k, 0) + 1
                self._streams.append(
                    (
                        fname,
                        s.loop,
                        freq,
                        s.kind,
                        s.stride,
                        s.footprint,
                        s.reuse,
                    )
                )
            for br in fs.branches:
                freq = fs.local_freq.get(br.block, 0.0) * ef
                if freq <= 0:
                    continue
                self._branches.append(
                    (fname, br.block, freq, br.kind, br.mispredict,
                     header_of.get((fname, br.block)))
                )

    # ------------------------------------------------------------------
    def _unroll_factor(self, compiler: CompilerConfig, key) -> float:
        """The factor the unroller would pick for this loop (mirrors
        ``repro.opt.unroll``)."""
        if not compiler.unroll_loops:
            return 1.0
        cand = self.features.unrollable.get(key)
        if cand is None or not cand.counted:
            return 1.0
        if cand.size > compiler.max_unrolled_insns:
            return 1.0
        return float(
            min(
                compiler.max_unroll_times,
                max(2, compiler.max_unrolled_insns // max(cand.size, 1)),
            )
        )

    def _inlined_sites(self, compiler: CompilerConfig) -> List[InlineSite]:
        """The sites the inliner would accept (mirrors
        ``repro.opt.inline``: eligibility, hottest-first order, and the
        unit-growth budget)."""
        if not compiler.inline_functions:
            return []
        eligible = [
            site
            for site in self.features.inline_sites
            if site.size <= 3 * compiler.inline_call_cost
            or site.size <= compiler.max_inline_insns_auto
        ]
        eligible.sort(key=lambda s: (-s.depth, s.size))
        base = float(self.summary.total_instrs)
        budget = base * (1.0 + compiler.inline_unit_growth / 100.0)
        current = base
        out = []
        for site in eligible:
            if current + site.size > budget:
                continue
            current += site.size
            out.append(site)
        return out

    # ------------------------------------------------------------------
    def estimate(
        self, compiler: CompilerConfig, microarch: MicroarchConfig
    ) -> CostBreakdown:
        C = CONST
        feats = self.features
        iw = float(microarch.issue_width)
        scale = float(_fu_scale(microarch.issue_width))
        ruu = float(microarch.ruu_size)
        # RUU occupancy bound on sustained width.
        iw_eff = iw * ruu / (ruu + C["ruu_issue_k"])
        if compiler.schedule_insns2 and C["sched_tp_gain"]:
            iw_eff *= 1.0 + C["sched_tp_gain"]
        mlp = min(C["mlp_max"], max(1.0, ruu / C["mlp_ruu_div"]))
        dl1_extra = float(microarch.dcache_latency - 1)

        licm_on = compiler.loop_optimize
        str_on = compiler.strength_reduce
        gcse_on = compiler.gcse
        pf_on = compiler.prefetch_loop_arrays
        sched_on = compiler.schedule_insns2
        reorder_on = compiler.reorder_blocks

        inlined = self._inlined_sites(compiler)
        inlined_by_key: Dict[Tuple[str, str], InlineSite] = {
            (s.caller, s.block): s for s in inlined
        }

        # -- core + instruction stream ---------------------------------
        dyn = 0.0
        t_core = 0.0
        fu_tot = {"ialu": 0.0, "imult": 0.0, "fpalu": 0.0, "fpmult": 0.0,
                  "load": 0.0, "store": 0.0}
        cp_gain = 1.0 - (C["sched_cp_gain"] if sched_on else 0.0)
        cp_stretch = (4.0 / iw) ** C["cp_iw_exp"] if C["cp_iw_exp"] else 1.0
        taken_frac = (
            C["taken_frac_reordered"] if reorder_on else C["taken_frac"]
        )
        n_branch_dyn = 0.0
        for (
            fname,
            label,
            freq,
            n,
            mix,
            cp,
            loads_cp,
            is_header,
            in_header,
        ) in self._blocks:
            key = (fname, in_header) if in_header is not None else None
            eff_freq = freq
            if is_header and compiler.unroll_loops:
                factor = self._unroll_factor(compiler, (fname, label))
                if factor > 1.0:
                    # Header (test+branch) runs once per `factor` iters.
                    eff_freq = freq / factor
            eff_n = n
            if str_on and key is not None:
                s = float(feats.strength.get(key, 0))
                if s:
                    n_muls = float(mix.get("imult", 0))
                    converted = min(s, n_muls)
                    fu_tot["imult"] -= converted * eff_freq
                    fu_tot["ialu"] += converted * eff_freq
                    cp = max(cp - 2.0 * converted, 1.0)
            if gcse_on:
                removed = feats.gcse_removed.get(fname, 0)
                total = self.summary.functions[fname].n_instrs
                if removed and total:
                    cut = C["gcse_eff"] * removed / total
                    eff_n *= 1.0 - cut
                    # Collapsed redundancies shorten dependence chains
                    # too (a recomputed address feeds the same chain).
                    cp = max(cp * (1.0 - C["gcse_cp_w"] * cut), 1.0)
            if licm_on and key is not None:
                hoisted = float(feats.hoistable.get(key, 0))
                if hoisted:
                    body_n = self._loop_body_n.get(key, 0.0)
                    if body_n > 0.0:
                        # Hoisting removes this fraction of every body
                        # iteration -- both issue slots and chain links
                        # (hoisted address arithmetic fed the chains).
                        frac = min(hoisted / body_n, 0.9)
                        eff_n *= 1.0 - frac
                        cp = max(cp * (1.0 - C["licm_cp_w"] * frac), 1.0)
            site = inlined_by_key.get((fname, label))
            if site is not None:
                # call+ret+frame overhead disappears at inlined sites.
                eff_n = max(eff_n - 2.0, 1.0)
            if pf_on and key is not None and not is_header:
                streams = feats.prefetch_streams.get(key, 0)
                if streams:
                    # addr-compute + prefetch per stream, once per iter;
                    # charged to the loop's first body block only.
                    first = self.summary.functions[fname]
                    ls = next(
                        (
                            l
                            for l in first.loops
                            if l.header == in_header
                        ),
                        None,
                    )
                    if ls is not None and len(ls.blocks) > 1 and label == ls.blocks[1]:
                        eff_n += 2.0 * streams
            dyn += eff_freq * eff_n
            shrink = eff_n / n if n > 0 else 1.0
            for cls in ("ialu", "imult", "fpalu", "fpmult", "load", "store"):
                if cls in mix:
                    fu_tot[cls] += eff_freq * mix[cls] * shrink
            cp_eff = (cp + loads_cp * dl1_extra) * cp_gain * cp_stretch
            chain = C["cp_share"] * cp_eff
            if C["cp_cap"]:
                # Even a serial machine retires ~1 instr/cycle: the
                # chain bound saturates at cp_cap cycles per
                # instruction, so the width stretch cannot run away on
                # chain-dominated blocks (art on 2-wide machines).
                chain = min(chain, eff_n * C["cp_cap"])
            t_core += eff_freq * max(eff_n / iw_eff, chain)
            n_br = float(mix.get("branch", 0) + mix.get("jump", 0))
            n_branch_dyn += eff_freq * n_br

        # Unrolling grows the loop body past the register file: the
        # allocator makes up the difference with spill code.
        if compiler.unroll_loops:
            for key, cand in feats.unrollable.items():
                factor = self._unroll_factor(compiler, key)
                if factor <= 1.0:
                    continue
                overflow = max(factor * cand.size - C["spill_cap"], 0.0)
                if overflow <= 0.0:
                    continue
                execs = self._loop_iters.get(key, 0.0) / factor
                spill = C["spill_w"] * overflow * execs
                dyn += spill
                t_core += spill / iw_eff

        # Frame overhead per dynamic call.
        frame = (
            C["frame_omit"] if compiler.omit_frame_pointer else C["frame_full"]
        )
        n_calls = self._calls - len(inlined_by_key) * 0.0
        for site in inlined:
            fs = self.summary.functions.get(site.caller)
            if fs is not None:
                n_calls -= fs.local_freq.get(site.block, 0.0) * fs.entry_freq
        n_calls = max(n_calls, 0.0)
        dyn += n_calls * frame
        t_core += n_calls * frame / iw_eff

        # L1 hit latency beyond a single cycle taxes every load's chain.
        if C["load_lat_w"] and dl1_extra > 0.0:
            t_core += fu_tot["load"] * dl1_extra * C["load_lat_w"]

        # Functional-unit contention bound.
        fu_bound = max(
            fu_tot["ialu"] / (2.0 * scale),
            fu_tot["imult"] / scale,
            fu_tot["fpalu"] / scale,
            fu_tot["fpmult"] / scale,
            fu_tot["load"] / scale,
            fu_tot["store"] / scale,
        )
        t_core = max(t_core, fu_bound)

        # -- memory hierarchy ------------------------------------------
        block_size = float(microarch.block_size)
        dl1_cap = microarch.dcache_size * C["cap_frac"]
        l2_cap = microarch.l2_size * C["cap_frac"]
        l2_pen = float(microarch.l2_latency)
        mem_pen = float(
            microarch.l2_latency + microarch.memory_latency
        )
        conflict = 1.0 + C["conflict_dm"] / float(microarch.dcache_assoc)
        l2_conflict = 1.0 + C["conflict_l2"] / float(microarch.l2_assoc)
        t_mem = 0.0
        t_bus = 0.0
        for fname, loop, freq, kind, stride, footprint, reuse in self._streams:
            if kind == "prefetch":
                continue
            key = (fname, loop)
            if reuse == "scalar":
                continue
            if reuse == "random":
                l1_rate = min(1.0, footprint * conflict / max(dl1_cap, 1.0)) * 0.8
                l2_rate = min(1.0, footprint * l2_conflict / max(l2_cap, 1.0)) * 0.8
            else:
                per_access = min(1.0, abs(stride) / block_size)
                if footprint * conflict > dl1_cap:
                    l1_rate = per_access * min(
                        1.0, footprint * conflict / max(dl1_cap, 1.0) - 0.0
                    )
                    l1_rate = min(l1_rate, per_access)
                else:
                    # Resident after warmup: compulsory misses only.
                    entries = max(self._loop_entries.get(key, 1.0), 1.0)
                    l1_rate = per_access / entries
                l2_rate = (
                    per_access if footprint * l2_conflict > l2_cap else 0.0
                )
            ns = self._loop_nstreams.get(key, 1)
            if ns > microarch.dcache_assoc and C["conflict_w"]:
                l1_rate = min(
                    1.0,
                    l1_rate
                    + C["conflict_w"] * (ns - microarch.dcache_assoc) / ns,
                )
            if ns > microarch.l2_assoc and C["conflict_l2w"]:
                l2_rate = min(
                    1.0,
                    l2_rate
                    + C["conflict_l2w"] * (ns - microarch.l2_assoc) / ns,
                )
            l1_misses = freq * max(l1_rate, 0.0)
            mem_misses = freq * max(min(l2_rate, l1_rate), 0.0)
            covered = 0.0
            if pf_on and reuse in ("stream", "strided"):
                if feats.prefetch_streams.get(key, 0):
                    covered = C["pf_coverage"]
            stall = (
                (l1_misses - mem_misses) * l2_pen + mem_misses * mem_pen
            ) * (1.0 - covered) / mlp
            t_mem += stall
            # Bus serialization is not prefetch-maskable: the block
            # still crosses the bus.
            t_bus += mem_misses * float(microarch.bus_transfer_cycles)
        t_mem = max(t_mem, t_bus)

        # -- branches ---------------------------------------------------
        bp = float(microarch.bpred_size)
        alias = 1.0
        if bp < 4096.0:
            alias += C["bp_alias"] * math.log2(4096.0 / bp)
        resolve = float(microarch.mispredict_penalty) + C["br_refill"]
        t_br = 0.0
        for fname, label, freq, kind, base, in_header in self._branches:
            eff_freq = freq
            if compiler.unroll_loops and kind in ("loop_latch", "loop_exit"):
                hdr = in_header if kind == "loop_latch" else label
                if hdr is not None:
                    factor = self._unroll_factor(compiler, (fname, hdr))
                    if factor > 1.0:
                        eff_freq = freq / factor
            t_br += eff_freq * min(base * alias, 1.0) * resolve
        # Taken-branch fetch bubbles (layout-dependent).
        t_br += n_branch_dyn * taken_frac * C["taken_bubble"]

        # -- I-cache ----------------------------------------------------
        growth = 0.0
        for key, cand in feats.unrollable.items():
            factor = self._unroll_factor(compiler, key)
            if factor > 1.0:
                growth += cand.size * (factor - 1.0)
        for site in inlined:
            growth += site.size
        if pf_on:
            growth += 2.0 * sum(feats.prefetch_streams.values())
        code_instrs = (
            self.summary.total_instrs + growth
        ) * C["lower_factor"]
        hot_instrs = (self._hot_static + growth) * C["lower_factor"]
        hot_bytes = hot_instrs * C["bytes_per_instr"]
        t_ic = 0.0
        if hot_bytes > microarch.icache_size * C["cap_frac"]:
            overflow = 1.0 - microarch.icache_size * C["cap_frac"] / hot_bytes
            t_ic = (
                dyn
                * overflow
                * C["icache_weight"]
                * (l2_pen / block_size * C["bytes_per_instr"])
            )

        # The OOO window overlaps core work with outstanding misses: a
        # slice of the smaller bound hides under the larger one.
        overlapped = C["mem_overlap"] * min(t_core, t_mem)
        cycles = t_core + t_mem - overlapped + t_br + t_ic
        return CostBreakdown(
            cycles=cycles,
            instructions=dyn,
            code_size=int(code_instrs),
            components={
                "core": t_core,
                "fu_bound": fu_bound,
                "mem": t_mem,
                "bus": t_bus,
                "branch": t_br,
                "icache": t_ic,
                "dyn_instrs": dyn,
                "code_growth": growth,
            },
        )

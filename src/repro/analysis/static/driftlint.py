"""Drift lint: cross-check static claims against measured timings.

Two families of claims are checked against a golden measurement fixture
(``tests/data/golden_measure_pr8.json`` in CI -- any list of
``{workload, label, point, cycles}`` records works):

* **Estimate drift** -- per workload, the static cost model's estimates
  must rank the measured design points correctly (Spearman rank
  correlation at least ``min_corr``).  Absolute scale is not checked:
  the static estimate is an analytical bound composition, useful for
  ordering and screening, not a cycle-accurate prediction.

* **Remark-claim drift** -- optimization remarks carry expected-benefit
  claims.  For every measured pair of points that differ only in their
  optimization level (``O0/typical`` vs ``O2/typical``, ...), the
  remark stream of the higher level is collected; if the passes claim
  positive benefit but measurement shows the higher level *slower*
  (beyond ``tol``), every claiming pass receives a refutation vote.  A
  pass fails the lint when a majority of its votes are refutations --
  i.e. it *systematically* claims wins that measurement refutes --
  never for a single unlucky pairing (optimizations legitimately hurt
  on some microarchitectures; that interaction is the paper's whole
  point, so only systematic bias is a lint failure).
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.static import remarks
from repro.analysis.static.oracle import StaticOracle, default_static_oracle
from repro.harness.configs import split_point

#: Minimum per-workload Spearman correlation of static estimates vs
#: measured cycles (workloads with fewer than 3 golden points are
#: skipped -- rank correlation over 2 points is a coin flip).
MIN_CORR = 0.5

#: A higher optimization level must be at least this factor slower than
#: the lower one before the pair counts as a refutation.
TOL = 1.05


def _ranks(values: Sequence[float]) -> List[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (ties get average ranks)."""
    n = len(xs)
    if n < 2:
        return 0.0
    rx, ry = _ranks(xs), _ranks(ys)
    mx = sum(rx) / n
    my = sum(ry) / n
    num = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    dx = sum((a - mx) ** 2 for a in rx) ** 0.5
    dy = sum((b - my) ** 2 for b in ry) ** 0.5
    if dx == 0.0 or dy == 0.0:
        return 0.0
    return num / (dx * dy)


@dataclass
class DriftReport:
    """Outcome of one drift-lint run."""

    #: workload -> Spearman(static estimate, measured cycles).
    correlations: Dict[str, float] = field(default_factory=dict)
    #: pass -> (refuted votes, total votes) from level-pair checks.
    votes: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    findings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "correlations": {
                k: round(v, 4) for k, v in sorted(self.correlations.items())
            },
            "votes": {
                k: {"refuted": r, "total": t}
                for k, (r, t) in sorted(self.votes.items())
            },
            "findings": list(self.findings),
        }


def _load_golden(path: Union[str, Path]) -> List[dict]:
    records = json.loads(Path(path).read_text())
    if not isinstance(records, list):
        raise ValueError(f"golden file {path} must hold a list of records")
    return records


def _claiming_passes(workload: str, point: Mapping[str, float]) -> Dict[str, float]:
    """pass -> total claimed benefit from one remark-collected compile."""
    from repro.codegen import compile_module
    from repro.workloads import get_workload

    compiler, microarch = split_point(point)
    module = copy.deepcopy(get_workload(workload).module("train"))
    with remarks.collecting() as rc:
        compile_module(module, compiler, issue_width=microarch.issue_width)
    claims: Dict[str, float] = {}
    for r in rc.remarks:
        if r.action == "fired" and r.benefit > 0:
            claims[r.pass_name] = claims.get(r.pass_name, 0.0) + r.benefit
    return claims


def drift_lint(
    golden_path: Union[str, Path],
    oracle: Optional[StaticOracle] = None,
    min_corr: float = MIN_CORR,
    tol: float = TOL,
    input_name: str = "train",
) -> DriftReport:
    """Run both drift checks against a golden measurement file."""
    oracle = oracle or default_static_oracle()
    records = _load_golden(golden_path)
    report = DriftReport()

    # -- estimate drift: per-workload rank correlation -----------------
    by_workload: Dict[str, List[dict]] = {}
    for rec in records:
        by_workload.setdefault(rec["workload"], []).append(rec)
    for workload, recs in sorted(by_workload.items()):
        if len(recs) < 3:
            continue
        measured = [float(r["cycles"]) for r in recs]
        estimated = []
        for r in recs:
            compiler, microarch = split_point(r["point"])
            estimated.append(
                oracle.estimate(workload, compiler, microarch, input_name).cycles
            )
        corr = spearman(estimated, measured)
        report.correlations[workload] = corr
        if corr < min_corr:
            report.findings.append(
                f"{workload}: static estimate rank correlation "
                f"{corr:.3f} < {min_corr} over {len(recs)} golden points"
            )

    # -- remark-claim drift: O-level pairs, majority voting ------------
    refuted: Dict[str, int] = {}
    total: Dict[str, int] = {}
    for workload, recs in sorted(by_workload.items()):
        by_label = {r["label"]: r for r in recs}
        for label, rec in sorted(by_label.items()):
            if "/" not in label:
                continue
            level, machine = label.split("/", 1)
            if level == "O0":
                continue
            base = by_label.get(f"O0/{machine}")
            if base is None:
                continue
            claims = _claiming_passes(workload, rec["point"])
            if not claims:
                continue
            is_refuted = float(rec["cycles"]) > float(base["cycles"]) * tol
            for pass_name in claims:
                total[pass_name] = total.get(pass_name, 0) + 1
                if is_refuted:
                    refuted[pass_name] = refuted.get(pass_name, 0) + 1
    for pass_name, t in sorted(total.items()):
        r = refuted.get(pass_name, 0)
        report.votes[pass_name] = (r, t)
        if t >= 2 and r * 2 > t:
            report.findings.append(
                f"pass {pass_name}: claimed wins refuted by measurement in "
                f"{r}/{t} golden level pairs"
            )
    return report

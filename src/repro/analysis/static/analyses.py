"""Pass-manager-driven static analyses over the IR.

A small analysis manager (:class:`AnalysisManager`) runs registered
:class:`FunctionAnalysis` / :class:`ModuleAnalysis` passes on demand,
caches their results, and resolves declared dependencies -- the same
shape LLVM's analysis manager gives optimization passes, scaled to this
IR.  The stock analyses compute, per function:

* ``cfg`` -- successor/predecessor maps and a reverse postorder;
* ``loops`` -- the natural-loop forest plus depth and innermost-loop
  maps (interprocedural nesting comes from ``callgraph``);
* ``trips`` -- static trip counts for counted loops (IV init/step from
  the latch, bounds through :mod:`value-range <repro.ir>` resolution of
  global-scalar initializers), with a calibrated default when unknown;
* ``freq`` -- static block-frequency estimates: mass propagation over
  the back-edge-free CFG, loop bodies scaled by trip counts, loop exits
  taking ``1/trip`` of the mass;
* ``mix`` -- per-block instruction mix by functional-unit class and the
  latency-weighted critical path (the block's ILP bound), tracking how
  many loads sit on the critical chain;
* ``memory`` -- per-loop memory streams (base symbol, per-iteration
  stride in bytes, footprint, reuse class), store->load dependence
  distances in iterations, and an alias-class partition of memory ops
  by resolved base symbol;
* ``branches`` -- branch-predictability classes (loop latch/exit,
  data-dependent, regular) with a base misprediction probability.

``analyze_module`` assembles everything into a :class:`ModuleSummary`
-- the static feature vector consumed by the analytical cost model
(:mod:`repro.analysis.static.costmodel`), the ``repro analyze`` CLI and
the serve-layer feature export.  ``ModuleSummary.check`` re-derives the
framework's invariants (headers dominate bodies, mix totals match block
sizes, frequencies conserve mass, ...) and returns violations; CI runs
it across flag-vector sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir import (
    Addr,
    BinOp,
    Branch,
    Call,
    Cmp,
    Const,
    Copy,
    Function,
    Jump,
    Load,
    Module,
    Prefetch,
    Return,
    Store,
    Temp,
    UnOp,
)
from repro.ir.cfg import predecessors, successors
from repro.ir.dominators import dominates, immediate_dominators
from repro.ir.loops import Loop, natural_loops

#: Default trip-count estimate for loops whose bounds resist static
#: resolution (calibrated against the seven SPEC stand-ins).
DEFAULT_TRIP = 16.0

#: IR-level latencies used for the critical-path (ILP-bound) analysis.
#: Loads are counted separately so the cost model can re-weight the
#: chain with the configured cache latency.
_LATENCY = {
    "ialu": 1,
    "imult": 3,
    "fpalu": 2,
    "fpmult": 4,
    "load": 1,
    "store": 1,
    "prefetch": 1,
    "call": 1,
    "branch": 1,
    "jump": 1,
    "ret": 1,
}

_INT_LONG_OPS = ("mul", "div", "mod")
_FP_ADD_OPS = ("fadd", "fsub")
_FP_MUL_OPS = ("fmul", "fdiv")


def classify(instr) -> str:
    """Functional-unit class of one IR instruction (mirrors the ISA
    lowering well enough for static mix/ILP estimates)."""
    if isinstance(instr, Load):
        return "load"
    if isinstance(instr, Store):
        return "store"
    if isinstance(instr, Prefetch):
        return "prefetch"
    if isinstance(instr, Call):
        return "call"
    if isinstance(instr, BinOp):
        if instr.op in _FP_MUL_OPS:
            return "fpmult"
        if instr.op in _FP_ADD_OPS:
            return "fpalu"
        if instr.op in _INT_LONG_OPS:
            return "imult"
        return "ialu"
    if isinstance(instr, UnOp):
        return "fpalu" if instr.op in ("itof", "ftoi", "fneg") else "ialu"
    if isinstance(instr, Branch):
        return "branch"
    if isinstance(instr, Jump):
        return "jump"
    if isinstance(instr, Return):
        return "ret"
    return "ialu"  # Cmp, Copy, Addr and anything register-to-register


# ----------------------------------------------------------------------
# The analysis manager
# ----------------------------------------------------------------------
class AnalysisError(Exception):
    pass


class FunctionAnalysis:
    """Base class: computes one result per function, cached by name."""

    name: str = ""
    requires: Tuple[str, ...] = ()

    def run(self, func: Function, am: "AnalysisManager"):
        raise NotImplementedError


class ModuleAnalysis:
    """Base class: computes one result per module."""

    name: str = ""
    requires: Tuple[str, ...] = ()

    def run(self, module: Module, am: "AnalysisManager"):
        raise NotImplementedError


class AnalysisManager:
    """Runs analyses on demand, memoizing per (analysis, function)."""

    def __init__(self, module: Module, analyses: Sequence = ()):
        self.module = module
        self._function_analyses: Dict[str, FunctionAnalysis] = {}
        self._module_analyses: Dict[str, ModuleAnalysis] = {}
        self._func_cache: Dict[Tuple[str, str], object] = {}
        self._mod_cache: Dict[str, object] = {}
        self._running: List[str] = []
        for a in list(analyses) or default_analyses():
            self.register(a)

    def register(self, analysis) -> None:
        if isinstance(analysis, FunctionAnalysis):
            self._function_analyses[analysis.name] = analysis
        elif isinstance(analysis, ModuleAnalysis):
            self._module_analyses[analysis.name] = analysis
        else:
            raise AnalysisError(f"not an analysis: {analysis!r}")

    def _check_cycle(self, name: str) -> None:
        if name in self._running:
            chain = " -> ".join(self._running + [name])
            raise AnalysisError(f"analysis dependency cycle: {chain}")

    def on(self, name: str, func: Function):
        """Result of function analysis ``name`` on ``func`` (cached)."""
        key = (name, func.name)
        if key in self._func_cache:
            return self._func_cache[key]
        analysis = self._function_analyses.get(name)
        if analysis is None:
            raise AnalysisError(f"unknown function analysis {name!r}")
        self._check_cycle(name)
        self._running.append(name)
        try:
            for dep in analysis.requires:
                if dep in self._function_analyses:
                    self.on(dep, func)
                else:
                    self.module_result(dep)
            result = analysis.run(func, self)
        finally:
            self._running.pop()
        self._func_cache[key] = result
        return result

    def module_result(self, name: str):
        if name in self._mod_cache:
            return self._mod_cache[name]
        analysis = self._module_analyses.get(name)
        if analysis is None:
            raise AnalysisError(f"unknown module analysis {name!r}")
        self._check_cycle(name)
        self._running.append(name)
        try:
            for dep in analysis.requires:
                self.module_result(dep) if dep in self._module_analyses \
                    else None
            result = analysis.run(self.module, self)
        finally:
            self._running.pop()
        self._mod_cache[name] = result
        return result

    def invalidate(self) -> None:
        """Drop all cached results (after IR mutation)."""
        self._func_cache.clear()
        self._mod_cache.clear()


# ----------------------------------------------------------------------
# Stock analyses
# ----------------------------------------------------------------------
@dataclass
class CfgInfo:
    succ: Dict[str, List[str]]
    pred: Dict[str, List[str]]


class CfgAnalysis(FunctionAnalysis):
    name = "cfg"

    def run(self, func, am):
        return CfgInfo(succ=successors(func), pred=predecessors(func))


@dataclass
class LoopForest:
    loops: List[Loop]
    #: block label -> innermost containing loop (or None).
    innermost: Dict[str, Optional[Loop]]
    #: block label -> loop-nest depth (0 outside any loop).
    depth: Dict[str, int]


class LoopAnalysis(FunctionAnalysis):
    name = "loops"
    requires = ("cfg",)

    def run(self, func, am):
        loops = natural_loops(func)
        innermost: Dict[str, Optional[Loop]] = {
            b.label: None for b in func.blocks
        }
        depth: Dict[str, int] = {b.label: 0 for b in func.blocks}
        for loop in sorted(loops, key=lambda l: l.depth):
            for label in loop.body_in_layout_order(func):
                innermost[label] = loop
                depth[label] = loop.depth
        return LoopForest(loops=loops, innermost=innermost, depth=depth)


def _single_defs(func: Function) -> Dict[Temp, object]:
    """Temps defined exactly once -> their defining instruction."""
    counts: Dict[Temp, int] = {}
    where: Dict[Temp, object] = {}
    for block in func.blocks:
        for instr in block.all_instrs():
            d = instr.defs()
            if d is not None:
                counts[d] = counts.get(d, 0) + 1
                where[d] = instr
    return {t: where[t] for t, n in counts.items() if n == 1}


def _scalar_inits(module: Module) -> Dict[str, float]:
    """Global scalars with a known initial value (value-range seeds)."""
    out: Dict[str, float] = {}
    for name, g in module.globals.items():
        if not g.is_array and g.init:
            out[name] = g.init[0]
    return out


class _AffineEnv:
    """Affine resolution of integer values over single-def temp chains.

    ``affine(v)`` returns ``(coeffs, const)`` -- a linear form over
    symbolic variables (multi-def temps: IVs and mutable locals; and
    parameters) -- or ``None`` when the value is not affine.  Loads of
    initialized global scalars resolve to their initial value, which is
    what turns ``i < N`` bounds and ``j * F1 + i`` subscripts into
    numbers without running the program.
    """

    def __init__(self, func: Function, module: Module):
        self.single = _single_defs(func)
        self.scalars = _scalar_inits(module)
        self._memo: Dict[Temp, Optional[Tuple[Dict[Temp, float], float]]] = {}

    def affine(self, value) -> Optional[Tuple[Dict[Temp, float], float]]:
        if isinstance(value, Const):
            if isinstance(value.value, (int, float)):
                return ({}, float(value.value))
            return None
        if not isinstance(value, Temp):
            return None
        if value in self._memo:
            return self._memo[value]
        self._memo[value] = None  # cycle guard
        result = self._affine_temp(value)
        self._memo[value] = result
        return result

    def scalar_load(self, instr) -> Optional[float]:
        """Value of ``load [&scalar + 0]`` when the scalar has an
        initializer (and is therefore range-known at entry)."""
        if not isinstance(instr, Load):
            return None
        if not (isinstance(instr.offset, Const) and instr.offset.value == 0):
            return None
        base = instr.base
        if isinstance(base, Temp):
            base_def = self.single.get(base)
            if isinstance(base_def, Addr):
                return self.scalars.get(base_def.symbol)
        return None

    def _affine_temp(self, temp: Temp):
        instr = self.single.get(temp)
        if instr is None:
            # Multi-def temp (IV / mutable local) or parameter: symbolic.
            return ({temp: 1.0}, 0.0)
        if isinstance(instr, Copy):
            return self.affine(instr.src)
        if isinstance(instr, Load):
            value = self.scalar_load(instr)
            if value is not None:
                return ({}, value)
            return None
        if isinstance(instr, BinOp):
            a = self.affine(instr.a)
            b = self.affine(instr.b)
            if a is None or b is None:
                return None
            if instr.op == "add":
                coeffs = dict(a[0])
                for t, c in b[0].items():
                    coeffs[t] = coeffs.get(t, 0.0) + c
                return (coeffs, a[1] + b[1])
            if instr.op == "sub":
                coeffs = dict(a[0])
                for t, c in b[0].items():
                    coeffs[t] = coeffs.get(t, 0.0) - c
                return (coeffs, a[1] - b[1])
            if instr.op == "mul":
                if not a[0]:  # const * affine
                    k, form = a[1], b
                elif not b[0]:
                    k, form = b[1], a
                else:
                    return None
                return ({t: c * k for t, c in form[0].items()}, form[1] * k)
            if instr.op == "shl" and not b[0]:
                k = 2.0 ** b[1]
                return ({t: c * k for t, c in a[0].items()}, a[1] * k)
            return None
        return None

    def resolve_base(self, value) -> Optional[str]:
        """Global symbol a Load/Store base resolves to, if any."""
        seen = 0
        while isinstance(value, Temp) and seen < 8:
            instr = self.single.get(value)
            if isinstance(instr, Addr):
                return instr.symbol
            if isinstance(instr, Copy):
                value = instr.src
                seen += 1
                continue
            return None
        return None


@dataclass
class TripInfo:
    #: header -> exact static trip count, when resolvable.
    counts: Dict[str, Optional[float]]
    #: header -> estimate (exact count or DEFAULT_TRIP).
    estimates: Dict[str, float]
    #: header -> basic IV temps with their per-iteration steps.
    ivs: Dict[str, Dict[Temp, float]]


class TripCountAnalysis(FunctionAnalysis):
    name = "trips"
    requires = ("loops", "cfg")

    def run(self, func, am):
        from repro.opt.strength import find_basic_ivs

        forest: LoopForest = am.on("loops", func)
        cfg: CfgInfo = am.on("cfg", func)
        env = _AffineEnv(func, am.module)
        counts: Dict[str, Optional[float]] = {}
        estimates: Dict[str, float] = {}
        ivs_out: Dict[str, Dict[Temp, float]] = {}
        for loop in forest.loops:
            ivs = find_basic_ivs(func, loop)
            ivs_out[loop.header] = {iv.temp: float(iv.step) for iv in ivs}
            counts[loop.header] = self._trip_count(func, loop, ivs, env, cfg)
            c = counts[loop.header]
            estimates[loop.header] = c if c and c > 0 else DEFAULT_TRIP
        return TripInfo(counts=counts, estimates=estimates, ivs=ivs_out)

    def _trip_count(self, func, loop, ivs, env: _AffineEnv, cfg: CfgInfo):
        header = func.block(loop.header)
        term = header.terminator
        if not isinstance(term, Branch) or not isinstance(term.cond, Temp):
            return None
        cmp_instr = None
        for instr in header.instrs:
            if isinstance(instr, Cmp) and instr.defs() == term.cond:
                cmp_instr = instr
        if cmp_instr is None:
            return None
        iv_steps = {t: s for t, s in ((iv.temp, iv.step) for iv in ivs)}

        def side(value):
            form = env.affine(value)
            if form is None:
                return None
            iv_terms = {
                t: c for t, c in form[0].items() if t in iv_steps and c
            }
            other = {
                t: c
                for t, c in form[0].items()
                if t not in iv_steps and c
            }
            if other:
                return None
            if len(iv_terms) > 1:
                return None
            return (iv_terms, form[1])

        lhs, rhs = side(cmp_instr.a), side(cmp_instr.b)
        if lhs is None or rhs is None:
            return None
        # Normalize to: coeff*iv + c0  <op>  bound (iv on one side only).
        if lhs[0] and not rhs[0]:
            iv_side, bound, op = lhs, rhs[1], cmp_instr.op
        elif rhs[0] and not lhs[0]:
            swap = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le"}
            if cmp_instr.op not in swap and cmp_instr.op not in ("eq", "ne"):
                return None
            iv_side, bound, op = rhs, lhs[1], swap.get(cmp_instr.op, cmp_instr.op)
        else:
            return None
        (iv_temp, coeff), = iv_side[0].items()
        step = iv_steps[iv_temp] * coeff
        init = self._iv_init(func, loop, iv_temp, env, cfg)
        if init is None or step == 0:
            return None
        start = init * coeff + iv_side[1]
        if op == "lt" and step > 0:
            trips = (bound - start + step - 1) // step
        elif op == "le" and step > 0:
            trips = (bound - start) // step + 1
        elif op == "gt" and step < 0:
            trips = (start - bound - step - 1) // -step
        elif op == "ge" and step < 0:
            trips = (start - bound) // -step + 1
        elif op == "ne" and step != 0:
            delta = bound - start
            trips = delta / step if delta % step == 0 else None
            if trips is None:
                return None
        else:
            return None
        return float(trips) if trips and trips > 0 else 0.0

    def _iv_init(self, func, loop, iv_temp, env: _AffineEnv, cfg: CfgInfo):
        """Initial IV value: chase a linear chain of out-of-loop
        predecessors for the last constant assignment to the IV."""
        outside = [p for p in cfg.pred[loop.header] if p not in loop.body]
        if len(outside) != 1:
            return None
        label = outside[0]
        hops = 0
        while label is not None and hops < 16:
            block = func.block(label)
            for instr in reversed(block.instrs):
                if instr.defs() == iv_temp:
                    form = env.affine(instr.src) if isinstance(
                        instr, Copy
                    ) else None
                    if form is not None and not form[0]:
                        return form[1]
                    return None
            preds = cfg.pred.get(label, [])
            label = preds[0] if len(preds) == 1 else None
            hops += 1
        return None


class FreqAnalysis(FunctionAnalysis):
    """Static block-frequency estimates (executions per function entry)."""

    name = "freq"
    requires = ("loops", "trips", "cfg")

    def run(self, func, am):
        forest: LoopForest = am.on("loops", func)
        trips: TripInfo = am.on("trips", func)
        cfg: CfgInfo = am.on("cfg", func)
        headers = {l.header: l for l in forest.loops}

        # Forward CFG: drop back edges (u -> header of a loop containing u).
        fsucc: Dict[str, List[str]] = {}
        for label, succs in cfg.succ.items():
            fsucc[label] = [
                s
                for s in succs
                if not (s in headers and label in headers[s].body)
            ]
        indeg: Dict[str, int] = {b.label: 0 for b in func.blocks}
        for label, succs in fsucc.items():
            for s in succs:
                indeg[s] += 1

        in_mass: Dict[str, float] = {b.label: 0.0 for b in func.blocks}
        freq: Dict[str, float] = {b.label: 0.0 for b in func.blocks}
        in_mass[func.entry.label] = 1.0
        ready = [func.entry.label]
        seen = {func.entry.label}
        order: List[str] = []
        # Kahn's algorithm from the entry; unreachable blocks keep freq 0.
        pending = dict(indeg)
        while ready:
            label = ready.pop()
            order.append(label)
            for s in fsucc[label]:
                pending[s] -= 1
                if pending[s] <= 0 and s not in seen:
                    seen.add(s)
                    ready.append(s)

        for label in order:
            mass = in_mass[label]
            loop = headers.get(label)
            f = mass * trips.estimates[label] if loop is not None else mass
            freq[label] = f
            succs = fsucc[label]
            if not succs:
                continue
            inner = forest.innermost.get(label)
            if inner is not None and len(succs) > 1:
                inside = [s for s in succs if s in inner.body]
                outside = [s for s in succs if s not in inner.body]
                if len(inside) == 1 and len(outside) == 1:
                    # Loop-exit branch: one exit per loop entry.
                    trip = trips.estimates[inner.header]
                    exit_share = f / trip if trip > 0 else f
                    in_mass[outside[0]] += min(exit_share, f)
                    in_mass[inside[0]] += max(f - exit_share, 0.0)
                    continue
            share = f / len(succs)
            for s in succs:
                in_mass[s] += share
        return freq


@dataclass
class BlockMix:
    n_instrs: int
    mix: Dict[str, int]
    #: Latency-weighted critical path through the block (ILP bound).
    crit_path: float
    #: Loads on the critical chain (re-weighted by cache latency later).
    loads_on_path: int


class MixAnalysis(FunctionAnalysis):
    name = "mix"

    def run(self, func, am):
        out: Dict[str, BlockMix] = {}
        for block in func.blocks:
            mix: Dict[str, int] = {}
            finish: Dict[Temp, float] = {}
            loads_chain: Dict[Temp, int] = {}
            cp = 0.0
            cp_loads = 0
            n = 0
            for instr in block.all_instrs():
                cls = classify(instr)
                mix[cls] = mix.get(cls, 0) + 1
                n += 1
                start = 0.0
                chain_loads = 0
                for u in instr.uses():
                    if isinstance(u, Temp) and u in finish:
                        if finish[u] > start:
                            start = finish[u]
                            chain_loads = loads_chain.get(u, 0)
                        elif finish[u] == start:
                            chain_loads = max(
                                chain_loads, loads_chain.get(u, 0)
                            )
                fin = start + _LATENCY[cls]
                total_loads = chain_loads + (1 if cls == "load" else 0)
                d = instr.defs()
                if d is not None:
                    finish[d] = fin
                    loads_chain[d] = total_loads
                if fin > cp or (fin == cp and total_loads > cp_loads):
                    cp = fin
                    cp_loads = total_loads
            out[block.label] = BlockMix(
                n_instrs=n, mix=mix, crit_path=cp, loads_on_path=cp_loads
            )
        return out


@dataclass
class MemStream:
    """One memory reference stream inside a loop."""

    function: str
    block: str
    loop: Optional[str]
    kind: str  # "load" | "store" | "prefetch"
    symbol: Optional[str]
    #: Per-innermost-iteration stride in bytes (None = non-affine).
    stride: Optional[float]
    #: Bytes touched across the loop nest (capped at the symbol's size).
    footprint: float
    #: "scalar" | "stream" | "strided" | "random"
    reuse: str


@dataclass
class DepDistance:
    """Store->load dependence distance on one symbol, in iterations."""

    function: str
    loop: str
    symbol: str
    distance: float


@dataclass
class MemoryInfo:
    streams: List[MemStream]
    dep_distances: List[DepDistance]
    #: alias class (symbol or "?unknown") -> number of memory ops.
    alias_classes: Dict[str, int]


class MemoryAnalysis(FunctionAnalysis):
    name = "memory"
    requires = ("loops", "trips")

    def run(self, func, am):
        forest: LoopForest = am.on("loops", func)
        trips: TripInfo = am.on("trips", func)
        env = _AffineEnv(func, am.module)
        module = am.module
        streams: List[MemStream] = []
        deps: List[DepDistance] = []
        alias: Dict[str, int] = {}
        #: (loop, symbol) -> list of (kind, coeffs-sans-const, const, stride)
        forms: Dict[Tuple[str, str], List[Tuple[str, tuple, float, float]]] = {}
        for block in func.blocks:
            loop = forest.innermost.get(block.label)
            iv_steps = (
                trips.ivs.get(loop.header, {}) if loop is not None else {}
            )
            for instr in block.all_instrs():
                if isinstance(instr, Load):
                    kind = "load"
                elif isinstance(instr, Store):
                    kind = "store"
                elif isinstance(instr, Prefetch):
                    kind = "prefetch"
                else:
                    continue
                symbol = env.resolve_base(instr.base)
                alias_key = symbol if symbol is not None else "?unknown"
                alias[alias_key] = alias.get(alias_key, 0) + 1
                form = env.affine(instr.offset)
                stride: Optional[float] = None
                if form is not None:
                    stride = sum(
                        c * iv_steps[t]
                        for t, c in form[0].items()
                        if t in iv_steps
                    )
                    if any(
                        c and t not in iv_steps and self._varies_in_loop(
                            func, loop, t
                        )
                        for t, c in form[0].items()
                    ):
                        stride = None  # offset varies non-affinely in loop
                size = (
                    module.globals[symbol].size_bytes
                    if symbol in module.globals
                    else 4096.0
                )
                if loop is None:
                    footprint = 0.0
                    reuse = "scalar"
                elif stride is None:
                    footprint = float(size)
                    reuse = "random"
                elif stride == 0:
                    footprint = 8.0
                    reuse = "scalar"
                else:
                    trip = trips.estimates[loop.header]
                    footprint = min(float(size), abs(stride) * trip)
                    reuse = "stream" if abs(stride) <= 32 else "strided"
                streams.append(
                    MemStream(
                        function=func.name,
                        block=block.label,
                        loop=loop.header if loop is not None else None,
                        kind=kind,
                        symbol=symbol,
                        stride=stride,
                        footprint=footprint,
                        reuse=reuse,
                    )
                )
                if (
                    loop is not None
                    and symbol is not None
                    and form is not None
                    and stride not in (None, 0)
                ):
                    coeff_key = tuple(
                        sorted(
                            (t.name, c) for t, c in form[0].items() if c
                        )
                    )
                    slot = forms.setdefault((loop.header, symbol), [])
                    for okind, okey, oconst, ostride in slot:
                        if okey == coeff_key and {kind, okind} == {
                            "load",
                            "store",
                        }:
                            deps.append(
                                DepDistance(
                                    function=func.name,
                                    loop=loop.header,
                                    symbol=symbol,
                                    distance=abs(form[1] - oconst)
                                    / abs(stride),
                                )
                            )
                    slot.append((kind, coeff_key, form[1], stride))
        return MemoryInfo(
            streams=streams, dep_distances=deps, alias_classes=alias
        )

    @staticmethod
    def _varies_in_loop(func, loop, temp) -> bool:
        if loop is None:
            return False
        for label in loop.body:  # lint: set-order-ok (order-insensitive any)
            for instr in func.block(label).all_instrs():
                if instr.defs() == temp:
                    return True
        return False


@dataclass
class BranchInfo:
    function: str
    block: str
    #: "loop_latch" | "loop_exit" | "data" | "regular"
    kind: str
    #: Base misprediction probability with an unaliased predictor.
    mispredict: float


class BranchAnalysis(FunctionAnalysis):
    name = "branches"
    requires = ("loops", "trips")

    def run(self, func, am):
        forest: LoopForest = am.on("loops", func)
        trips: TripInfo = am.on("trips", func)
        single = _single_defs(func)
        out: List[BranchInfo] = []
        for block in func.blocks:
            term = block.terminator
            if not isinstance(term, Branch):
                continue
            loop = forest.innermost.get(block.label)
            kind = "regular"
            prob = 0.10
            if loop is not None:
                targets = term.targets()
                back = any(
                    t in {l.header for l in forest.loops}
                    and block.label in forest.innermost
                    and t == loop.header
                    for t in targets
                )
                exits = [t for t in targets if t not in loop.body]
                trip = trips.estimates[loop.header]
                if block.label == loop.header and exits:
                    kind = "loop_exit"
                    prob = min(0.5, 1.0 / max(trip, 2.0))
                elif back:
                    kind = "loop_latch"
                    prob = min(0.5, 1.0 / max(trip, 2.0))
                elif exits:
                    kind = "loop_exit"
                    prob = min(0.5, 1.0 / max(trip, 2.0))
                else:
                    kind, prob = self._cond_kind(term, single)
            else:
                kind, prob = self._cond_kind(term, single)
            out.append(
                BranchInfo(
                    function=func.name,
                    block=block.label,
                    kind=kind,
                    mispredict=prob,
                )
            )
        return out

    @staticmethod
    def _cond_kind(term, single) -> Tuple[str, float]:
        """Data-dependent branches (condition fed by a load) mispredict
        far more often than control-induction ones."""
        cond = term.cond
        frontier = [cond]
        hops = 0
        while frontier and hops < 6:
            v = frontier.pop()
            if not isinstance(v, Temp):
                continue
            instr = single.get(v)
            if instr is None:
                continue
            if isinstance(instr, Load):
                return "data", 0.25
            frontier.extend(
                u for u in instr.uses() if isinstance(u, Temp)
            )
            hops += 1
        return "regular", 0.10


def default_analyses() -> List[object]:
    return [
        CfgAnalysis(),
        LoopAnalysis(),
        TripCountAnalysis(),
        FreqAnalysis(),
        MixAnalysis(),
        MemoryAnalysis(),
        BranchAnalysis(),
    ]


# ----------------------------------------------------------------------
# Module summary (the static feature vector)
# ----------------------------------------------------------------------
@dataclass
class LoopSummary:
    function: str
    header: str
    depth: int
    blocks: Tuple[str, ...]
    trip_count: Optional[float]
    trip_estimate: float
    #: Whole-program iteration count (trip x enclosing trips x call freq).
    iterations: float
    body_instrs: int


@dataclass
class FunctionSummary:
    name: str
    #: Whole-program entries into this function.
    entry_freq: float
    #: Local block frequency (per entry).
    local_freq: Dict[str, float]
    blocks: Dict[str, BlockMix]
    loops: List[LoopSummary]
    streams: List[MemStream]
    dep_distances: List[DepDistance]
    alias_classes: Dict[str, int]
    branches: List[BranchInfo]
    n_instrs: int
    #: (callee, caller block) call sites with local frequency.
    call_sites: List[Tuple[str, str, float]]


@dataclass
class ModuleSummary:
    """Static features for one module; see :func:`analyze_module`."""

    name: str
    functions: Dict[str, FunctionSummary]
    total_instrs: int

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        def stream_d(s: MemStream):
            return {
                "block": s.block,
                "loop": s.loop,
                "kind": s.kind,
                "symbol": s.symbol,
                "stride": s.stride,
                "footprint": s.footprint,
                "reuse": s.reuse,
            }

        return {
            "module": self.name,
            "total_instrs": self.total_instrs,
            "functions": {
                name: {
                    "entry_freq": f.entry_freq,
                    "n_instrs": f.n_instrs,
                    "blocks": {
                        label: {
                            "n_instrs": b.n_instrs,
                            "mix": b.mix,
                            "crit_path": b.crit_path,
                            "loads_on_path": b.loads_on_path,
                            "freq": f.local_freq.get(label, 0.0),
                        }
                        for label, b in f.blocks.items()
                    },
                    "loops": [
                        {
                            "header": l.header,
                            "depth": l.depth,
                            "trip_count": l.trip_count,
                            "trip_estimate": l.trip_estimate,
                            "iterations": l.iterations,
                            "body_instrs": l.body_instrs,
                        }
                        for l in f.loops
                    ],
                    "streams": [stream_d(s) for s in f.streams],
                    "dep_distances": [
                        {
                            "loop": d.loop,
                            "symbol": d.symbol,
                            "distance": d.distance,
                        }
                        for d in f.dep_distances
                    ],
                    "alias_classes": f.alias_classes,
                    "branches": [
                        {
                            "block": b.block,
                            "kind": b.kind,
                            "mispredict": b.mispredict,
                        }
                        for b in f.branches
                    ],
                    "call_sites": [
                        {"callee": c, "block": b, "freq": fr}
                        for c, b, fr in f.call_sites
                    ],
                }
                for name, f in self.functions.items()
            },
        }

    # -- invariants ----------------------------------------------------
    def check(self, module: Module) -> List[str]:
        """Re-derive the framework's invariants; returns violations."""
        problems: List[str] = []
        for name, fs in self.functions.items():
            func = module.functions.get(name)
            if func is None:
                problems.append(f"{name}: summarized but not in module")
                continue
            labels = {b.label for b in func.blocks}
            if set(fs.blocks) != labels:
                problems.append(f"{name}: block set mismatch")
            idom = immediate_dominators(func)
            for bm_label, bm in fs.blocks.items():
                block = func.block(bm_label)
                if bm.n_instrs != len(block.all_instrs()):
                    problems.append(
                        f"{name}:{bm_label}: n_instrs {bm.n_instrs} != "
                        f"{len(block.all_instrs())}"
                    )
                if sum(bm.mix.values()) != bm.n_instrs:
                    problems.append(
                        f"{name}:{bm_label}: mix sums to "
                        f"{sum(bm.mix.values())}, not {bm.n_instrs}"
                    )
                if bm.crit_path < 0 or bm.crit_path > 4 * bm.n_instrs + 1:
                    problems.append(
                        f"{name}:{bm_label}: critical path {bm.crit_path} "
                        f"outside [0, 4n]"
                    )
                if fs.local_freq.get(bm_label, 0.0) < 0:
                    problems.append(f"{name}:{bm_label}: negative frequency")
            if fs.local_freq.get(func.entry.label, 0.0) != 1.0:
                problems.append(f"{name}: entry frequency != 1")
            for ls in fs.loops:
                if ls.header not in labels:
                    problems.append(f"{name}: loop header {ls.header} gone")
                    continue
                for body_label in ls.blocks:
                    if body_label in idom and not dominates(
                        func, ls.header, body_label
                    ):
                        problems.append(
                            f"{name}: loop {ls.header} does not dominate "
                            f"body block {body_label}"
                        )
                if ls.trip_count is not None and ls.trip_count < 0:
                    problems.append(
                        f"{name}: loop {ls.header} negative trip count"
                    )
                if ls.trip_estimate <= 0:
                    problems.append(
                        f"{name}: loop {ls.header} non-positive estimate"
                    )
                if ls.iterations < 0:
                    problems.append(
                        f"{name}: loop {ls.header} negative iterations"
                    )
            n_mem_ops = sum(
                1
                for b in func.blocks
                for i in b.all_instrs()
                if isinstance(i, (Load, Store, Prefetch))
            )
            if sum(fs.alias_classes.values()) != n_mem_ops:
                problems.append(
                    f"{name}: alias classes cover "
                    f"{sum(fs.alias_classes.values())} of {n_mem_ops} mem ops"
                )
            for s in fs.streams:
                if s.symbol is not None and s.symbol not in module.globals:
                    problems.append(
                        f"{name}: stream over unknown symbol {s.symbol}"
                    )
                if s.footprint < 0:
                    problems.append(f"{name}: negative footprint stream")
            for br in fs.branches:
                if br.block not in labels or not isinstance(
                    func.block(br.block).terminator, Branch
                ):
                    problems.append(
                        f"{name}: branch record for non-branch {br.block}"
                    )
                if not (0.0 <= br.mispredict <= 1.0):
                    problems.append(
                        f"{name}:{br.block}: mispredict "
                        f"{br.mispredict} outside [0,1]"
                    )
        return problems


def _entry_freqs(module: Module, local_freqs, call_sites) -> Dict[str, float]:
    """Whole-program entry counts per function, propagated from main
    through call-site frequencies (recursion capped by iteration)."""
    freqs = {name: 0.0 for name in module.functions}
    roots = [n for n in ("main",) if n in freqs] or list(freqs)[:1]
    for r in roots:
        freqs[r] = 1.0
    for _ in range(len(module.functions) + 2):
        updated = dict(freqs)
        for name in module.functions:
            if name in roots:
                continue
            total = 0.0
            for caller, sites in call_sites.items():
                for callee, _block, local in sites:
                    if callee == name:
                        total += freqs[caller] * local
            updated[name] = total
        if updated == freqs:
            break
        freqs = updated
    return freqs


def analyze_module(
    module: Module, am: Optional[AnalysisManager] = None
) -> ModuleSummary:
    """Run the full analysis stack and assemble the module summary."""
    am = am or AnalysisManager(module)
    local_freqs: Dict[str, Dict[str, float]] = {}
    call_sites: Dict[str, List[Tuple[str, str, float]]] = {}
    for name, func in module.functions.items():
        freq = am.on("freq", func)
        local_freqs[name] = freq
        sites: List[Tuple[str, str, float]] = []
        for block in func.blocks:
            for instr in block.instrs:
                if isinstance(instr, Call) and instr.callee in module.functions:
                    sites.append(
                        (instr.callee, block.label, freq[block.label])
                    )
        call_sites[name] = sites
    entry = _entry_freqs(module, local_freqs, call_sites)

    functions: Dict[str, FunctionSummary] = {}
    for name, func in module.functions.items():
        forest: LoopForest = am.on("loops", func)
        trips: TripInfo = am.on("trips", func)
        mix: Dict[str, BlockMix] = am.on("mix", func)
        memory: MemoryInfo = am.on("memory", func)
        branches: List[BranchInfo] = am.on("branches", func)
        freq = local_freqs[name]
        loops: List[LoopSummary] = []
        for loop in forest.loops:
            iters = freq[loop.header] * entry.get(name, 0.0)
            loops.append(
                LoopSummary(
                    function=name,
                    header=loop.header,
                    depth=loop.depth,
                    blocks=tuple(loop.body_in_layout_order(func)),
                    trip_count=trips.counts[loop.header],
                    trip_estimate=trips.estimates[loop.header],
                    iterations=iters,
                    body_instrs=sum(
                        mix[l].n_instrs
                        for l in loop.body_in_layout_order(func)
                    ),
                )
            )
        functions[name] = FunctionSummary(
            name=name,
            entry_freq=entry.get(name, 0.0),
            local_freq=freq,
            blocks=mix,
            loops=loops,
            streams=memory.streams,
            dep_distances=memory.dep_distances,
            alias_classes=memory.alias_classes,
            branches=branches,
            n_instrs=func.instruction_count(),
            call_sites=call_sites[name],
        )
    return ModuleSummary(
        name=module.name,
        functions=functions,
        total_instrs=module.instruction_count(),
    )

"""The ``--oracle static`` fast path: analytical cycle estimates.

The accurate oracle compiles, traces and simulates every design point
(hundreds of milliseconds cold).  The static oracle instead analyzes a
workload **once** -- running the full static analysis stack plus one
remark-collected reference run of each optimization pass on scratch
copies of the module -- and then answers every (compiler, microarch)
point from the cached :class:`StaticCostModel` in microseconds.

The per-pass feature harvest is remark-driven: rather than duplicating
pass heuristics here, each pass runs on a fresh deep copy of the
unoptimized module under :func:`remarks.collecting` and its quantitative
remark details (instructions hoisted, callee sizes, stream counts, loop
sizes) become the :class:`PassFeatures` the cost model replays per
configuration.  Config-dependent decisions (unroll factor, inline
eligibility) are recomputed analytically from the recorded sizes, using
the same formulas as the passes.

Estimates carry ``checksum=0`` and ``sampling_error=0.0``: the static
path never executes the program, and its results must not be confused
with measured ones (`measure` keeps them in distinct cache keys via the
mode field).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.static import remarks
from repro.analysis.static.analyses import ModuleSummary, analyze_module
from repro.analysis.static.costmodel import (
    CostBreakdown,
    InlineSite,
    PassFeatures,
    StaticCostModel,
    UnrollCandidate,
)
from repro.ir import Module
from repro.opt.flags import CompilerConfig
from repro.sim.config import MicroarchConfig

#: Permissive config for the unroll reference run: every counted loop
#: fires (recording its size) regardless of the size heuristics, so the
#: cost model can re-decide per point.
_HARVEST_UNROLL = CompilerConfig(
    unroll_loops=True, max_unroll_times=2, max_unrolled_insns=10**9
)


def _loop_key(remark: remarks.Remark) -> Tuple[str, str]:
    return (remark.function, remark.location)


def harvest_features(module: Module) -> PassFeatures:
    """Distill one remark-collected reference optimization run into
    :class:`PassFeatures`.

    The passes run **in pipeline order on one scratch copy** (licm ->
    gcse -> prefetch -> strength -> unroll, each followed by the
    pipeline's interleaved cleanup): strength reduction and unrolling
    only see their induction variables after copy propagation has
    simplified the bound arithmetic, so running each pass on a fresh
    unoptimized copy would systematically under-report them.  Inlining
    is *not* replayed -- it renames the cloned blocks, which would
    detach the harvested loop keys from the analyzed summary -- its
    sites come from the inliner's site collector instead and
    eligibility is re-decided per config by the cost model.

    ``module`` is expected to be the post-``cleanup`` form the real
    pipeline starts from (loop headers keep their labels through all
    replayed passes, so the keys match a summary of the same module);
    it is never mutated.
    """
    # Imported here: repro.opt modules import the remarks module, so a
    # top-level import would be a cycle.
    from repro.opt.cleanup import cleanup_module
    from repro.opt.gcse import global_cse
    from repro.opt.inline import _collect_sites
    from repro.opt.loopopt import loop_optimize
    from repro.opt.prefetch import prefetch_loop_arrays
    from repro.opt.strength import strength_reduce
    from repro.opt.unroll import unroll_loops

    feats = PassFeatures()

    # Inline sites from the unmodified module (inline runs first in the
    # real pipeline).
    for site in _collect_sites(module, CompilerConfig()):
        feats.inline_sites.append(
            InlineSite(
                caller=site.caller,
                block=site.block_label,
                callee=site.callee,
                size=site.callee_size,
                n_args=len(module.functions[site.callee].params),
                depth=site.loop_depth,
            )
        )

    scratch = copy.deepcopy(module)

    def stage(run, tidy: bool = True) -> list:
        with remarks.collecting() as rc:
            run(scratch)
        if tidy:
            cleanup_module(scratch)
        return rc.remarks

    for r in stage(loop_optimize):
        if r.action == "fired":
            feats.hoistable[_loop_key(r)] = int(r.details.get("hoisted", 0))

    for r in stage(global_cse):
        if r.action == "fired":
            feats.gcse_removed[r.function] = int(r.details.get("removed", 0))

    for r in stage(prefetch_loop_arrays, tidy=False):
        if r.action == "fired":
            feats.prefetch_streams[_loop_key(r)] = int(
                r.details.get("streams", 0)
            )

    for r in stage(strength_reduce):
        if r.action == "fired":
            feats.strength[_loop_key(r)] = int(r.details.get("rewritten", 0))

    for r in stage(lambda m: unroll_loops(m, _HARVEST_UNROLL), tidy=False):
        if r.action == "fired":
            feats.unrollable[_loop_key(r)] = UnrollCandidate(
                size=int(r.details.get("size", 0)), counted=True
            )
    return feats


@dataclass
class _Entry:
    summary: ModuleSummary
    features: PassFeatures
    model: StaticCostModel


class StaticOracle:
    """Caches one analyzed model per (workload, input, fingerprint)."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, str, str], _Entry] = {}

    def _entry(self, workload: str, input_name: str) -> _Entry:
        from repro.harness.measure import MeasurementEngine
        from repro.workloads import get_workload

        fp = MeasurementEngine._workload_fingerprint(workload, input_name)
        key = (workload, input_name, fp)
        entry = self._cache.get(key)
        if entry is None:
            from repro.opt.cleanup import cleanup_module

            # The real pipeline always runs cleanup first (even at O0),
            # so both the summary and the harvest start from that form.
            module = copy.deepcopy(get_workload(workload).module(input_name))
            cleanup_module(module)
            summary = analyze_module(module)
            features = harvest_features(module)
            entry = _Entry(summary, features, StaticCostModel(summary, features))
            self._cache[key] = entry
        return entry

    def summary(self, workload: str, input_name: str = "train") -> ModuleSummary:
        return self._entry(workload, input_name).summary

    def features(self, workload: str, input_name: str = "train") -> PassFeatures:
        return self._entry(workload, input_name).features

    def model(self, workload: str, input_name: str = "train") -> StaticCostModel:
        return self._entry(workload, input_name).model

    def estimate(
        self,
        workload: str,
        compiler: CompilerConfig,
        microarch: MicroarchConfig,
        input_name: str = "train",
    ) -> CostBreakdown:
        return self.model(workload, input_name).estimate(compiler, microarch)


_DEFAULT: Optional[StaticOracle] = None


def default_static_oracle() -> StaticOracle:
    """Process-wide shared oracle (summaries are config-independent)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = StaticOracle()
    return _DEFAULT

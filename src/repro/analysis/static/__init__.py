"""Static cost & feature analysis over the IR (the *performance* half
of the analysis layer; :mod:`repro.analysis` proper is the correctness
half).

* :mod:`repro.analysis.static.remarks` -- the optimization-remark
  subsystem: every ``repro.opt`` pass (and the backend scheduler)
  reports fired/declined decisions with locations, reasons and
  expected-benefit estimates into scoped collectors, serialized as
  schema-versioned JSONL.
* :mod:`repro.analysis.static.analyses` -- the pass-manager-driven
  analyses (loop nests, trip counts, block frequencies, instruction
  mix/ILP, memory streams + dependence distances + alias classes,
  branch predictability) assembled into a :class:`ModuleSummary`.
* :mod:`repro.analysis.static.costmodel` -- the analytical cost model
  mapping (summary, pass features, compiler config, microarch config)
  to a cycle estimate in microseconds per point.
* :mod:`repro.analysis.static.oracle` -- the ``--oracle static`` fast
  path: per-workload cached summaries + remark-harvested features.
* :mod:`repro.analysis.static.driftlint` -- cross-checks remark benefit
  claims and static estimates against measured timings.

Only :mod:`remarks` is cheap enough for the default compile path to
import (stdlib-only; one predicate per remark site when no collector is
installed).  Everything else loads on first attribute access (PEP 562),
mirroring the parent package.
"""

from repro.analysis.static import remarks

_LAZY = {
    "AnalysisManager": "repro.analysis.static.analyses",
    "ModuleSummary": "repro.analysis.static.analyses",
    "analyze_module": "repro.analysis.static.analyses",
    "default_analyses": "repro.analysis.static.analyses",
    "CostBreakdown": "repro.analysis.static.costmodel",
    "PassFeatures": "repro.analysis.static.costmodel",
    "StaticCostModel": "repro.analysis.static.costmodel",
    "StaticOracle": "repro.analysis.static.oracle",
    "harvest_features": "repro.analysis.static.oracle",
    "DriftReport": "repro.analysis.static.driftlint",
    "drift_lint": "repro.analysis.static.driftlint",
}

__all__ = ["remarks", *sorted(_LAZY)]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))

"""Semantic sanitizer: differential execution and miscompile bisection.

A verifier proves an artifact is *well-formed*; the sanitizer checks it
is *right*.  :func:`sanitize_module` runs the same program three ways --

1. IR interpretation of the unoptimized module (the reference),
2. IR interpretation after the optimization pipeline,
3. functional simulation of the fully compiled executable,

and compares the returned values.  Any mismatch is a miscompile by
construction: the reference interpreter defines the semantics.

On divergence (or on a per-pass verifier violation) the bisector replays
the pass plan one pass at a time on a fresh copy, interpreting after
each pass, and attributes the failure to the first pass whose output
diverges or fails deep verification.  The report carries a minimized
unified diff of the guilty pass's input and output IR, filtered to the
functions that changed.
"""

from __future__ import annotations

import copy
import difflib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.codegen.compile import compile_module
from repro.ir.function import Module
from repro.ir.interp import IRInterpreterError, interpret
from repro.ir.printer import format_function
from repro.obs import counter, span
from repro.opt.flags import CompilerConfig
from repro.opt.pipeline import pass_plan
from repro.sim.func import execute

from repro.analysis.base import (
    MiscompileError,
    PassVerificationError,
    VerifyLevel,
    Violation,
)
from repro.analysis.ir_verify import check_module_deep

_RUNS = counter("analysis.sanitize.runs")
_MISCOMPILES = counter("analysis.sanitize.miscompiles")

#: Cap on interpreter work during bisection replays.
_MAX_STEPS = 50_000_000


@dataclass
class BisectionResult:
    """Attribution of a divergence to one optimization pass."""

    guilty_pass: Optional[str]
    reason: str
    #: Minimized unified diff of the guilty pass's input vs output IR.
    ir_diff: str = ""
    violations: List[Violation] = field(default_factory=list)


@dataclass
class SanitizeReport:
    """Everything the sanitizer learned about one (module, config)."""

    ok: bool
    reference_value: Optional[float] = None
    optimized_ir_value: Optional[float] = None
    machine_value: Optional[float] = None
    divergence: Optional[str] = None
    bisection: Optional[BisectionResult] = None

    def summary(self) -> str:
        if self.ok:
            return f"ok (return value {self.reference_value})"
        lines = [f"MISCOMPILE: {self.divergence}"]
        if self.bisection is not None:
            lines.append(
                f"  guilty pass: {self.bisection.guilty_pass or 'unknown'}"
                f" ({self.bisection.reason})"
            )
            if self.bisection.ir_diff:
                lines.append(self.bisection.ir_diff)
        return "\n".join(lines)


def _module_snapshot(module: Module) -> "dict[str, str]":
    return {name: format_function(f) for name, f in module.functions.items()}


def _minimized_diff(
    before: "dict[str, str]", after: "dict[str, str]", context: int = 2
) -> str:
    """Unified diff restricted to the functions the pass changed."""
    chunks: List[str] = []
    for name in sorted(set(before) | set(after)):
        old = before.get(name, "")
        new = after.get(name, "")
        if old == new:
            continue
        chunks.extend(
            difflib.unified_diff(
                old.splitlines(),
                new.splitlines(),
                fromfile=f"{name} (before)",
                tofile=f"{name} (after)",
                n=context,
                lineterm="",
            )
        )
    return "\n".join(chunks)


def _interpret_value(module: Module):
    return interpret(module, max_steps=_MAX_STEPS).return_value


def bisect_passes(
    module: Module,
    config: CompilerConfig,
    reference_value,
) -> BisectionResult:
    """Replay the pass plan to name the first semantics-breaking pass.

    After each pass the module is deep-verified and re-interpreted; the
    first pass that yields a verifier violation, an interpreter crash,
    or a changed return value is guilty.  Runs on a fresh deep copy --
    the caller's module is never touched.
    """
    work = copy.deepcopy(module)
    with span("analysis.bisect", n_passes=len(pass_plan(config))):
        for name, fn in pass_plan(config):
            before = _module_snapshot(work)
            fn(work)
            after = _module_snapshot(work)
            try:
                check_module_deep(work, pass_name=name)
            except PassVerificationError as exc:
                return BisectionResult(
                    guilty_pass=name,
                    reason="deep IR verification failed",
                    ir_diff=_minimized_diff(before, after),
                    violations=exc.violations,
                )
            try:
                value = _interpret_value(work)
            except IRInterpreterError as exc:
                return BisectionResult(
                    guilty_pass=name,
                    reason=f"interpreter fault: {exc}",
                    ir_diff=_minimized_diff(before, after),
                )
            if value != reference_value:
                return BisectionResult(
                    guilty_pass=name,
                    reason=(
                        f"return value changed "
                        f"({reference_value!r} -> {value!r})"
                    ),
                    ir_diff=_minimized_diff(before, after),
                )
    return BisectionResult(
        guilty_pass=None,
        reason="all IR passes preserve semantics; fault is in the backend",
    )


def sanitize_module(
    module: Module,
    config: CompilerConfig,
    issue_width: int = 4,
    bisect: bool = True,
) -> SanitizeReport:
    """Differentially check one module under one configuration.

    Never raises on a miscompile -- the report carries the verdict (use
    :func:`check_sanitized` for the raising form).  The input module is
    not mutated.
    """
    _RUNS.inc()
    with span("analysis.sanitize", issue_width=issue_width):
        reference = _interpret_value(copy.deepcopy(module))
        report = SanitizeReport(ok=True, reference_value=reference)

        optimized = copy.deepcopy(module)
        divergence = None
        try:
            from repro.opt.pipeline import optimize_module

            optimize_module(
                optimized, config, verify_level=VerifyLevel.FULL
            )
            report.optimized_ir_value = _interpret_value(optimized)
            if report.optimized_ir_value != reference:
                divergence = (
                    f"optimized IR returns {report.optimized_ir_value!r}, "
                    f"reference returns {reference!r}"
                )
        except PassVerificationError as exc:
            divergence = str(exc)
        except IRInterpreterError as exc:
            divergence = f"optimized IR does not execute: {exc}"

        if divergence is None:
            try:
                exe = compile_module(
                    module,
                    config,
                    issue_width=issue_width,
                    verify_level=VerifyLevel.FULL,
                )
                report.machine_value = execute(exe).return_value
                if report.machine_value != reference:
                    divergence = (
                        f"machine code returns {report.machine_value!r}, "
                        f"reference returns {reference!r}"
                    )
            except Exception as exc:  # backend verifier or simulator fault
                divergence = f"compilation/execution failed: {exc}"

        if divergence is None:
            return report

        _MISCOMPILES.inc()
        report.ok = False
        report.divergence = divergence
        if bisect:
            report.bisection = bisect_passes(module, config, reference)
        return report


def check_sanitized(
    module: Module,
    config: CompilerConfig,
    issue_width: int = 4,
) -> SanitizeReport:
    """Raise :class:`MiscompileError` unless the module sanitizes clean."""
    report = sanitize_module(module, config, issue_width=issue_width)
    if not report.ok:
        raise MiscompileError(report.summary(), report=report)
    return report

"""177.mesa stand-in: a software 3-D vertex/fragment pipeline.

Mesa's profile is floating-point arithmetic spread across many small
functions: per vertex a matrix transform, perspective divide, clip test,
a lighting/shade evaluation, and a span accumulation into a framebuffer.
The function-per-stage structure makes it the inlining showcase (the
paper finds il1 size and inlining matter most for mesa), and the FP
multiply/add mix exercises the FPALU/FPMULT pools.
"""

DESCRIPTION = "vertex transform/clip/shade pipeline (177.mesa)"

SOURCE = """
int NVERTS = $NVERTS$;
int FRAMES = $FRAMES$;
int SEED = $SEED$;

float vx[$NVERTS$];
float vy[$NVERTS$];
float vz[$NVERTS$];
float mat[16];
float fb[4096];
float lightdir[4];

int lcg(int state) {
    return (state * 1103515245 + 12345) & 1073741823;
}

float dot3(float ax, float ay, float az, float bx, float by, float bz) {
    return ax * bx + ay * by + az * bz;
}

float transform_x(int i) {
    return vx[i] * mat[0] + vy[i] * mat[1] + vz[i] * mat[2] + mat[3];
}

float transform_y(int i) {
    return vx[i] * mat[4] + vy[i] * mat[5] + vz[i] * mat[6] + mat[7];
}

float transform_z(int i) {
    return vx[i] * mat[8] + vy[i] * mat[9] + vz[i] * mat[10] + mat[11];
}

int clip_code(float x, float y, float z) {
    int code = 0;
    if (x < -1.0) { code = code + 1; }
    if (x > 1.0) { code = code + 2; }
    if (y < -1.0) { code = code + 4; }
    if (y > 1.0) { code = code + 8; }
    if (z < 0.0) { code = code + 16; }
    return code;
}

float shade(float nx, float ny, float nz) {
    float d = dot3(nx, ny, nz, lightdir[0], lightdir[1], lightdir[2]);
    float spec;
    if (d < 0.0) {
        d = 0.0;
    }
    spec = d * d;
    spec = spec * spec;
    return 0.2 + 0.6 * d + 0.2 * spec;
}

int raster_span(float x, float y, float color) {
    int px = (int)((x + 1.0) * 31.0);
    int py = (int)((y + 1.0) * 31.0);
    int base;
    int k;
    if (px < 0) { px = 0; }
    if (px > 62) { px = 62; }
    if (py < 0) { py = 0; }
    if (py > 62) { py = 62; }
    base = py * 64 + px;
    for (k = 0; k < 2; k = k + 1) {
        fb[base + k] = fb[base + k] * 0.5 + color;
    }
    return base;
}

int main() {
    int i;
    int f;
    int state = SEED;
    int code;
    int visible = 0;
    float x; float y; float z;
    float w;
    float color;
    float acc = 0.0;
    float angle;

    for (i = 0; i < NVERTS; i = i + 1) {
        state = lcg(state);
        vx[i] = (float)(state & 1023) / 512.0 - 1.0;
        state = lcg(state);
        vy[i] = (float)(state & 1023) / 512.0 - 1.0;
        state = lcg(state);
        vz[i] = (float)(state & 1023) / 1024.0 + 0.5;
    }
    lightdir[0] = 0.3; lightdir[1] = 0.6; lightdir[2] = 0.74;

    for (f = 0; f < FRAMES; f = f + 1) {
        angle = (float)(f) * 0.1;
        mat[0] = 1.0 - angle * angle * 0.5; mat[1] = angle; mat[2] = 0.0; mat[3] = 0.0;
        mat[4] = 0.0 - angle; mat[5] = 1.0 - angle * angle * 0.5; mat[6] = 0.0; mat[7] = 0.0;
        mat[8] = 0.0; mat[9] = 0.0; mat[10] = 1.0; mat[11] = 0.1;
        for (i = 0; i < NVERTS; i = i + 1) {
            x = transform_x(i);
            y = transform_y(i);
            z = transform_z(i);
            w = z + 2.0;
            x = x / w;
            y = y / w;
            code = clip_code(x, y, z);
            if (code == 0) {
                color = shade(vx[i], vy[i], vz[i]);
                raster_span(x, y, color);
                visible = visible + 1;
            }
        }
    }

    for (i = 0; i < 4096; i = i + 1) {
        acc = acc + fb[i];
    }
    return visible + (int)(acc);
}
"""

INPUTS = {
    "train": {"NVERTS": 576, "FRAMES": 2, "SEED": 4242},
    "ref": {"NVERTS": 1024, "FRAMES": 4, "SEED": 1717},
}

"""179.art stand-in: adaptive-resonance neural network layers.

ART's hot loops stream over the F1/F2 weight matrices computing
activations and updating the winning category's weights -- long,
perfectly regular FP reductions over arrays a few tens of KB large.
This is the paper's Figure 3 program: tight counted loops that love
unrolling (up to the register-pressure cliff) and prefetching.
"""

DESCRIPTION = "adaptive resonance F1/F2 activation and learning (179.art)"

SOURCE = """
int F1 = $F1$;
int F2 = $F2$;
int PATTERNS = $PATTERNS$;
int SEED = $SEED$;

float w[$WSIZE$];
float input[$F1$];
float act[$F2$];

int lcg(int state) {
    return (state * 1103515245 + 12345) & 1073741823;
}

int main() {
    int p;
    int i;
    int j;
    int state = SEED;
    int winner;
    float best;
    float sum;
    float norm;
    float vigilance = 0.6;
    float rate = 0.3;
    int resonated = 0;
    float checksum = 0.0;

    for (j = 0; j < F2; j = j + 1) {
        for (i = 0; i < F1; i = i + 1) {
            state = lcg(state);
            w[j * F1 + i] = (float)(state & 255) / 256.0;
        }
    }

    for (p = 0; p < PATTERNS; p = p + 1) {
        state = lcg(state);
        for (i = 0; i < F1; i = i + 1) {
            input[i] = (float)(((state >> 3) + i * 37) & 255) / 256.0;
        }
        norm = 0.0;
        for (i = 0; i < F1; i = i + 1) {
            norm = norm + input[i];
        }
        for (j = 0; j < F2; j = j + 1) {
            sum = 0.0;
            for (i = 0; i < F1; i = i + 1) {
                sum = sum + w[j * F1 + i] * input[i];
            }
            act[j] = sum;
        }
        winner = 0;
        best = act[0];
        for (j = 1; j < F2; j = j + 1) {
            if (act[j] > best) {
                best = act[j];
                winner = j;
            }
        }
        if (best > vigilance * norm * 0.5) {
            for (i = 0; i < F1; i = i + 1) {
                w[winner * F1 + i] = w[winner * F1 + i] * (1.0 - rate)
                    + input[i] * rate;
            }
            resonated = resonated + 1;
        }
    }

    for (j = 0; j < F2; j = j + 1) {
        checksum = checksum + act[j];
    }
    for (i = 0; i < F1; i = i + 1) {
        checksum = checksum + w[i] + w[(F2 - 1) * F1 + i];
    }
    return resonated * 1000 + (int)(checksum);
}
"""

INPUTS = {
    "train": {"F1": 128, "F2": 24, "WSIZE": 3072, "PATTERNS": 5, "SEED": 555},
    "ref": {"F1": 160, "F2": 32, "WSIZE": 5120, "PATTERNS": 8, "SEED": 919},
}

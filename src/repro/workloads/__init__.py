"""Synthetic SPEC CPU2000-like workloads.

One MiniC program per SPEC benchmark the paper evaluates, each imitating
its namesake's dominant kernel and performance character:

=============  ========================================================
``gzip``       LZ77 hash-chain match search (int, data-dependent
               branches, ~64KB window working set)
``vpr``        simulated-annealing placement + row routing (int, random
               grid access, accept/reject branches)
``mesa``       vertex transform/clip/shade pipeline (FP-heavy, call-
               heavy -- inlining-sensitive)
``art``        adaptive-resonance F1/F2 layers (FP streaming over weight
               matrices -- unrolling/prefetch-sensitive)
``mcf``        reduced-cost arc scans + pointer chasing over a network
               (large footprint -- L2/memory-latency-sensitive)
``vortex``     hashed object database transactions (call- and branch-
               heavy, pointer-style index chasing)
``bzip2``      block counting/shell sort + RLE/bit entropy coder (int,
               sort branches, bit manipulation)
=============  ========================================================

Each workload has ``train`` and ``ref`` inputs (smaller/larger sizes and
different seeds), used by the profile-guided-optimization experiment
(paper Table 7).  Every program returns a checksum so any two correct
builds are comparable.
"""

from repro.workloads.registry import (
    Workload,
    WORKLOADS,
    get_workload,
    workload_names,
)

__all__ = ["Workload", "WORKLOADS", "get_workload", "workload_names"]

"""255.vortex stand-in: an object-database transaction mix.

Vortex manipulates an in-memory object store: hashed primary index,
linked secondary structures, and a transaction mix of lookups, inserts
and deletes.  The profile is integer, call-heavy and branch-heavy with
pointer-style index chasing -- the program where the paper observes
strong il1-size effects and where model-based search struggles most.
"""

DESCRIPTION = "hashed object store transaction mix (255.vortex)"

SOURCE = """
int NBUCKETS = $NBUCKETS$;
int NRECORDS = $NRECORDS$;
int NTRANS = $NTRANS$;
int SEED = $SEED$;

int htab[$NBUCKETS$];
int next_rec[$NRECORDS$];
int keys[$NRECORDS$];
int fields_a[$NRECORDS$];
int fields_b[$NRECORDS$];
int free_head[1];

int hash_key(int k) {
    int h = k * 2654435761;
    h = h ^ (h >> 13);
    return h & (NBUCKETS - 1);
}

int alloc_record() {
    int r = free_head[0];
    if (r >= 0) {
        free_head[0] = next_rec[r];
    }
    return r;
}

void free_record(int r) {
    next_rec[r] = free_head[0];
    free_head[0] = r;
}

int insert(int key, int va, int vb) {
    int h = hash_key(key);
    int r = alloc_record();
    if (r < 0) {
        return 0 - 1;
    }
    keys[r] = key;
    fields_a[r] = va;
    fields_b[r] = vb;
    next_rec[r] = htab[h];
    htab[h] = r;
    return r;
}

int lookup(int key) {
    int r = htab[hash_key(key)];
    int found = 0 - 1;
    while (r >= 0 && found < 0) {
        if (keys[r] == key) {
            found = r;
        } else {
            r = next_rec[r];
        }
    }
    return found;
}

int remove_key(int key) {
    int h = hash_key(key);
    int r = htab[h];
    int prev = 0 - 1;
    int removed = 0;
    int going = 1;
    while (r >= 0 && going == 1) {
        if (keys[r] == key) {
            if (prev < 0) {
                htab[h] = next_rec[r];
            } else {
                next_rec[prev] = next_rec[r];
            }
            free_record(r);
            removed = 1;
            going = 0;
        } else {
            prev = r;
            r = next_rec[r];
        }
    }
    return removed;
}

int update_fields(int r, int delta) {
    fields_a[r] = fields_a[r] + delta;
    fields_b[r] = fields_b[r] ^ (delta << 3);
    return fields_a[r];
}

int main() {
    int i;
    int state = SEED;
    int key;
    int r;
    int op;
    int checksum = 0;
    int live = 0;

    for (i = 0; i < NBUCKETS; i = i + 1) {
        htab[i] = 0 - 1;
    }
    for (i = 0; i < NRECORDS - 1; i = i + 1) {
        next_rec[i] = i + 1;
    }
    next_rec[NRECORDS - 1] = 0 - 1;
    free_head[0] = 0;

    for (i = 0; i < NRECORDS / 2; i = i + 1) {
        state = (state * 1103515245 + 12345) & 1073741823;
        insert((state >> 4) & 65535, state & 255, i);
        live = live + 1;
    }

    for (i = 0; i < NTRANS; i = i + 1) {
        state = (state * 1103515245 + 12345) & 1073741823;
        key = (state >> 4) & 65535;
        op = (state >> 20) % 10;
        if (op < 6) {
            r = lookup(key);
            if (r >= 0) {
                checksum = checksum + update_fields(r, op);
            } else {
                checksum = checksum - 1;
            }
        } else if (op < 8) {
            r = insert(key, state & 255, i);
            if (r >= 0) {
                live = live + 1;
            }
        } else {
            if (remove_key(key) == 1) {
                live = live - 1;
            }
        }
    }
    return checksum + live * 7;
}
"""

INPUTS = {
    "train": {"NBUCKETS": 1024, "NRECORDS": 4096, "NTRANS": 2000, "SEED": 321},
    "ref": {"NBUCKETS": 2048, "NRECORDS": 8192, "NTRANS": 4500, "SEED": 424242},
}

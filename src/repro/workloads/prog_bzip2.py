"""256.bzip2 stand-in: block sorting and entropy coding.

bzip2's compression kernel is dominated by block sorting (comparison-
heavy, data-dependent branches) followed by move-to-front/RLE and
Huffman-style bit packing (shifts, masks, table lookups).  This program
runs a counting sort, a shell sort over key-ranked positions, an MTF
pass, and a bit-cost accumulation -- integer work whose branch behaviour
is input-dependent, stressing the branch predictor and benefiting from
block layout.
"""

DESCRIPTION = "block sort + MTF + bit entropy coder (256.bzip2)"

SOURCE = """
int BLOCK = $BLOCK$;
int PASSES = $PASSES$;
int SEED = $SEED$;

int block[$BLOCK$];
int sorted_idx[$BLOCK$];
int counts[256];
int mtf[64];

int key_at(int pos) {
    return block[pos] * 256 + block[(pos + 1) % BLOCK];
}

int main() {
    int p;
    int i;
    int j;
    int gap;
    int tmp;
    int state = SEED;
    int cost = 0;
    int sym;
    int rank;
    int run;
    int prev;
    int going;

    for (p = 0; p < PASSES; p = p + 1) {
        state = (state * 1103515245 + 12345) & 1073741823;
        for (i = 0; i < BLOCK; i = i + 1) {
            state = (state * 69069 + 1) & 1073741823;
            if ((state >> 16 & 3) == 0) {
                block[i] = (state >> 8) & 255;
            } else {
                block[i] = (i % 61) * 4 & 255;
            }
        }

        for (i = 0; i < 256; i = i + 1) {
            counts[i] = 0;
        }
        for (i = 0; i < BLOCK; i = i + 1) {
            counts[block[i]] = counts[block[i]] + 1;
        }
        for (i = 1; i < 256; i = i + 1) {
            counts[i] = counts[i] + counts[i - 1];
        }
        for (i = BLOCK - 1; i >= 0; i = i - 1) {
            counts[block[i]] = counts[block[i]] - 1;
            sorted_idx[counts[block[i]]] = i;
        }

        gap = 64;
        while (gap > 0) {
            for (i = gap; i < BLOCK; i = i + 1) {
                tmp = sorted_idx[i];
                j = i;
                going = 1;
                while (going == 1 && j >= gap) {
                    if (key_at(sorted_idx[j - gap]) > key_at(tmp)) {
                        sorted_idx[j] = sorted_idx[j - gap];
                        j = j - gap;
                    } else {
                        going = 0;
                    }
                }
                sorted_idx[j] = tmp;
            }
            gap = gap / 3;
        }

        for (i = 0; i < 64; i = i + 1) {
            mtf[i] = i;
        }
        prev = 0 - 1;
        run = 0;
        for (i = 0; i < BLOCK; i = i + 1) {
            sym = block[sorted_idx[i]] & 63;
            if (sym == prev) {
                run = run + 1;
            } else {
                cost = cost + 2 + (run > 3);
                run = 0;
                prev = sym;
                rank = 0;
                j = 0;
                going = 1;
                while (going == 1 && j < 64) {
                    if (mtf[j] == sym) {
                        rank = j;
                        going = 0;
                    }
                    j = j + 1;
                }
                j = rank;
                while (j > 0) {
                    mtf[j] = mtf[j - 1];
                    j = j - 1;
                }
                mtf[0] = sym;
                if (rank < 2) {
                    cost = cost + 2;
                } else if (rank < 16) {
                    cost = cost + 6;
                } else {
                    cost = cost + 10 + ((rank >> 4) & 3);
                }
            }
        }
    }
    return cost;
}
"""

INPUTS = {
    "train": {"BLOCK": 900, "PASSES": 1, "SEED": 5150},
    "ref": {"BLOCK": 1500, "PASSES": 2, "SEED": 86},
}

"""181.mcf stand-in: network-simplex reduced-cost scans + chasing.

MCF is the canonical memory-bound SPEC program: it streams over large
arc arrays computing reduced costs (two dependent scattered loads per
arc) and chases parent pointers through a spanning tree with no
locality.  The arrays here total ~400KB -- far beyond any Table 2 L1 and
straddling the L2 size range -- so unified-L2 size and main-memory
latency dominate, matching the paper's Table 4 where mcf's biggest
coefficients are ul2 size, memory latency and their interaction.
"""

DESCRIPTION = "reduced-cost arc scan + tree pointer chase (181.mcf)"

SOURCE = """
int NODES = $NODES$;
int ARCS = $ARCS$;
int ITERS = $ITERS$;
int SEED = $SEED$;

int arc_tail[$ARCS$];
int arc_head[$ARCS$];
int potential[$NODES$];
int parent[$NODES$];
int depthv[$NODES$];

int main() {
    int i;
    int it;
    int state = SEED;
    int rc;
    int best_rc;
    int best_arc;
    int node;
    int hops;
    int total = 0;
    int chase;

    for (i = 0; i < NODES; i = i + 1) {
        state = (state * 1103515245 + 12345) & 1073741823;
        potential[i] = (state >> 6) & 4095;
        parent[i] = (i * 7919 + 13) % NODES;
        depthv[i] = i & 7;
    }
    for (i = 0; i < ARCS; i = i + 1) {
        arc_tail[i] = (i * 2654435761) % NODES;
        arc_head[i] = (i * 40503 + 2711) % NODES;
    }

    for (it = 0; it < ITERS; it = it + 1) {
        best_rc = 1 << 30;
        best_arc = 0;
        for (i = 0; i < ARCS; i = i + 1) {
            rc = ((i * 48271) >> 4 & 1023)
                - potential[arc_tail[i]] + potential[arc_head[i]];
            if (rc < best_rc) {
                best_rc = rc;
                best_arc = i;
            }
        }
        for (chase = 0; chase < 24; chase = chase + 1) {
            node = arc_tail[(best_arc + chase * 509) % ARCS];
            hops = 0;
            while (hops < 40 && node != 0) {
                depthv[node] = depthv[node] + 1;
                potential[node] = potential[node] + (best_rc >> 6);
                node = parent[node];
                hops = hops + 1;
            }
            total = total + hops;
        }
        total = total + best_rc;
        state = (state * 1103515245 + 12345) & 1073741823;
        potential[(state >> 5) % NODES] = (state >> 7) & 4095;
    }

    for (i = 0; i < NODES; i = i + 4) {
        total = total + depthv[i];
    }
    return total;
}
"""

INPUTS = {
    "train": {"NODES": 6144, "ARCS": 10240, "ITERS": 1, "SEED": 2024},
    "ref": {"NODES": 6144, "ARCS": 10240, "ITERS": 3, "SEED": 606},
}

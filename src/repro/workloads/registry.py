"""Workload registry and the :class:`Workload` wrapper.

Besides the seven built-in SPEC stand-ins, the registry resolves
*synthetic* workloads named ``gen-<family>-<seed>``: the program is
regenerated on demand from the name alone via the workload grammar
(:mod:`repro.workgen`), which is what lets measurement pool workers in
other processes -- and future sessions -- materialize a generated
workload without any shared state beyond the name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir import Module
from repro.minic import compile_source

from repro.workloads import (
    prog_gzip,
    prog_vpr,
    prog_mesa,
    prog_art,
    prog_mcf,
    prog_vortex,
    prog_bzip2,
)


@dataclass
class Workload:
    """A benchmark program with named inputs.

    ``source_template`` contains ``$NAME$`` placeholders substituted from
    the selected input's parameter dict.
    """

    name: str
    description: str
    source_template: str
    inputs: Dict[str, Dict[str, int]]
    #: "builtin" for the SPEC stand-ins, "generated" for grammar output.
    origin: str = "builtin"
    _module_cache: Dict[str, Module] = field(default_factory=dict, repr=False)

    def source_tag(self) -> str:
        """Provenance tag shown by ``repro workloads``."""
        if self.origin == "generated":
            from repro.workgen.grammar import parse_name

            parsed = parse_name(self.name)
            if parsed is not None:
                return f"generated(seed={parsed[1]})"
            return "generated"
        return "builtin"

    def input_names(self) -> List[str]:
        return list(self.inputs)

    def source(self, input_name: str = "train") -> str:
        if input_name not in self.inputs:
            raise KeyError(
                f"workload {self.name} has no input {input_name!r} "
                f"(has {list(self.inputs)})"
            )
        text = self.source_template
        for key, value in self.inputs[input_name].items():
            text = text.replace(f"${key}$", str(value))
        if "$" in text:
            leftover = text[text.index("$") :][:40]
            raise ValueError(
                f"workload {self.name}: unsubstituted parameter near "
                f"{leftover!r}"
            )
        return text

    def module(self, input_name: str = "train") -> Module:
        """Parsed+lowered IR module (cached; callers must deep-copy if
        they mutate, which :func:`repro.codegen.compile_module` does)."""
        if input_name not in self._module_cache:
            self._module_cache[input_name] = compile_source(
                self.source(input_name), name=f"{self.name}-{input_name}"
            )
        return self._module_cache[input_name]


WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in [
        Workload("gzip", prog_gzip.DESCRIPTION, prog_gzip.SOURCE, prog_gzip.INPUTS),
        Workload("vpr", prog_vpr.DESCRIPTION, prog_vpr.SOURCE, prog_vpr.INPUTS),
        Workload("mesa", prog_mesa.DESCRIPTION, prog_mesa.SOURCE, prog_mesa.INPUTS),
        Workload("art", prog_art.DESCRIPTION, prog_art.SOURCE, prog_art.INPUTS),
        Workload("mcf", prog_mcf.DESCRIPTION, prog_mcf.SOURCE, prog_mcf.INPUTS),
        Workload(
            "vortex", prog_vortex.DESCRIPTION, prog_vortex.SOURCE, prog_vortex.INPUTS
        ),
        Workload(
            "bzip2", prog_bzip2.DESCRIPTION, prog_bzip2.SOURCE, prog_bzip2.INPUTS
        ),
    ]
}


#: Synthetic workloads regenerated from their names, cached per process.
_SYNTHETIC: Dict[str, Workload] = {}


def _synthesize(name: str) -> Optional[Workload]:
    """Regenerate ``gen-<family>-<seed>`` as a Workload, or None."""
    # Lazy import: the base registry must not depend on the generator
    # package (workgen imports workloads for feature extraction).
    from repro.workgen.grammar import parse_name

    parsed = parse_name(name)
    if parsed is None:
        return None
    family, seed = parsed
    from repro.workgen.skeletons import default_grammar

    grammar = default_grammar()
    if family not in grammar.families:
        return None
    program = grammar.generate(family, seed)
    return Workload(
        name=program.name,
        description=(
            f"generated {family} kernel "
            f"({grammar.skeleton(family).description})"
        ),
        # Generated sources have no $PARAM$ holes: both inputs map to
        # the same program, keeping the train/ref measurement protocol
        # uniform across built-in and synthetic workloads.
        source_template=program.source,
        inputs={"train": {}, "ref": {}},
        origin="generated",
    )


def get_workload(name: str) -> Workload:
    if name in WORKLOADS:
        return WORKLOADS[name]
    if name in _SYNTHETIC:
        return _SYNTHETIC[name]
    synthetic = _synthesize(name)
    if synthetic is not None:
        _SYNTHETIC[name] = synthetic
        return synthetic
    raise KeyError(
        f"unknown workload {name!r} (have {sorted(WORKLOADS)}; synthetic "
        f"workloads use gen-<family>-<seed> names)"
    )


def workload_names() -> List[str]:
    """Built-in workload names (the synthetic space is unbounded)."""
    return list(WORKLOADS)

"""164.gzip stand-in: LZ77 hash-chain match searching.

The hot kernel of gzip's deflate is the longest-match search over a
sliding window using hash chains.  This program synthesizes compressible
input (repeating motifs perturbed by an LCG), then for each position
hashes a 3-element prefix, walks the hash chain up to ``MAXCHAIN``
candidates comparing match lengths, and accumulates the emit cost.
Working set: window + chain arrays, tens of KB (L1-data-sensitive);
branches are data-dependent (match/mismatch), exercising the predictor.
"""

DESCRIPTION = "LZ77 hash-chain longest-match search (164.gzip)"

SOURCE = """
int WSIZE = $WSIZE$;
int INPUT_N = $INPUT_N$;
int MAXCHAIN = $MAXCHAIN$;
int SEED = $SEED$;

int buf[$WSIZE$];
int head[1024];
int prev[$WSIZE$];

int hash3(int a, int b, int c) {
    return ((a * 2654435761 + b * 40503 + c * 2654435769) >> 8) & 1023;
}

int fill_input() {
    int i;
    int state = SEED;
    int motif = 0;
    for (i = 0; i < WSIZE; i = i + 1) {
        state = (state * 1103515245 + 12345) & 1073741823;
        motif = i % 97;
        if ((state >> 12) % 5 == 0) {
            buf[i] = (state >> 8) & 255;
        } else {
            buf[i] = (motif * 7 + (i / 97)) & 255;
        }
    }
    for (i = 0; i < 1024; i = i + 1) {
        head[i] = 0 - 1;
    }
    for (i = 0; i < WSIZE; i = i + 1) {
        prev[i] = 0 - 1;
    }
    return state;
}

int match_length(int a, int b, int limit) {
    int len = 0;
    int going = 1;
    while (going == 1 && len < limit) {
        if (buf[a + len] == buf[b + len]) {
            len = len + 1;
        } else {
            going = 0;
        }
    }
    return len;
}

int main() {
    int pos;
    int h;
    int cand;
    int chain;
    int best;
    int len;
    int cost = 0;
    int limit;
    fill_input();
    for (pos = 0; pos < INPUT_N; pos = pos + 1) {
        h = hash3(buf[pos], buf[pos + 1], buf[pos + 2]);
        cand = head[h];
        chain = 0;
        best = 0;
        limit = 16;
        if (WSIZE - pos - 1 < limit) {
            limit = WSIZE - pos - 1;
        }
        while (cand >= 0 && chain < MAXCHAIN) {
            len = match_length(cand, pos, limit);
            if (len > best) {
                best = len;
            }
            cand = prev[cand];
            chain = chain + 1;
        }
        if (best >= 3) {
            cost = cost + 24;
        } else {
            cost = cost + 8 + (buf[pos] & 7);
        }
        prev[pos] = head[h];
        head[h] = pos;
    }
    return cost;
}
"""

INPUTS = {
    "train": {"WSIZE": 4096, "INPUT_N": 800, "MAXCHAIN": 8, "SEED": 12345},
    "ref": {"WSIZE": 8192, "INPUT_N": 2000, "MAXCHAIN": 12, "SEED": 98765},
}

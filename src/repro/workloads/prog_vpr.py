"""175.vpr stand-in: simulated-annealing placement plus row routing.

VPR's place phase repeatedly proposes swapping two blocks, evaluates the
wiring-cost delta from each block's neighbours, and accepts or rejects
against a shrinking threshold.  The route phase sweeps rows accumulating
congestion cost.  Access pattern: scattered reads over a grid tens of KB
large; heavy accept/reject branching with data-dependent outcomes.
"""

DESCRIPTION = "annealing placement + row routing (175.vpr)"

SOURCE = """
int GRID = $GRID$;
int CELLS = $CELLS$;
int MOVES = $MOVES$;
int SEED = $SEED$;

int place[$CELLS$];
int netw[$CELLS$];
int congestion[$CELLS$];

int lcg(int state) {
    return (state * 1103515245 + 12345) & 1073741823;
}

int neighbor_cost(int cell) {
    int cost = 0;
    int row = cell / GRID;
    int col = cell % GRID;
    int w = netw[cell];
    if (col > 0) {
        cost = cost + w * place[cell - 1];
    }
    if (col < GRID - 1) {
        cost = cost + w * place[cell + 1];
    }
    if (row > 0) {
        cost = cost + w * place[cell - GRID];
    }
    if (row < GRID - 1) {
        cost = cost + w * place[cell + GRID];
    }
    return cost;
}

int main() {
    int i;
    int state = SEED;
    int a;
    int b;
    int before;
    int after;
    int tmp;
    int threshold;
    int accepted = 0;
    int total = 0;
    int row;
    int col;
    int run;

    for (i = 0; i < CELLS; i = i + 1) {
        state = lcg(state);
        place[i] = (state >> 10) & 15;
        netw[i] = ((state >> 5) & 7) + 1;
        congestion[i] = 0;
    }

    threshold = 4096;
    for (i = 0; i < MOVES; i = i + 1) {
        state = lcg(state);
        a = (state >> 8) % CELLS;
        state = lcg(state);
        b = (state >> 8) % CELLS;
        before = neighbor_cost(a) + neighbor_cost(b);
        tmp = place[a];
        place[a] = place[b];
        place[b] = tmp;
        after = neighbor_cost(a) + neighbor_cost(b);
        state = lcg(state);
        if (after - before < (state & 4095) - 4096 + threshold) {
            accepted = accepted + 1;
            total = total + after - before;
        } else {
            tmp = place[a];
            place[a] = place[b];
            place[b] = tmp;
        }
        if (i % 256 == 255 && threshold > 64) {
            threshold = threshold - threshold / 8;
        }
    }

    for (row = 0; row < GRID; row = row + 1) {
        run = 0;
        for (col = 0; col < GRID; col = col + 1) {
            run = run + place[row * GRID + col] * netw[row * GRID + col];
            congestion[row * GRID + col] = run & 255;
        }
        total = total + run;
    }

    run = 0;
    for (i = 0; i < CELLS; i = i + 1) {
        run = run + congestion[i];
    }
    return total + run + accepted;
}
"""

INPUTS = {
    "train": {"GRID": 64, "CELLS": 4096, "MOVES": 500, "SEED": 777},
    "ref": {"GRID": 96, "CELLS": 9216, "MOVES": 1200, "SEED": 31337},
}

"""Content-addressed memoization of SMARTS timing work.

Two exact (bit-identical-by-construction) memo layers over the timing
simulator, shared across design points, engines and worker processes:

* **run level** -- a whole ``smarts_simulate`` (or exhaustive detailed)
  outcome, keyed on (static binary digest, trace digest, full timing
  key, sampling schedule).  Design points that differ only in compiler
  flags which happened to produce the same machine code -- the dominant
  case in one-factor DOE screens and GA populations -- hit here and
  skip the simulator entirely.
* **unit level** -- one sampled SMARTS unit's (cycles, instructions)
  contribution, keyed on the *chained prefix digest* of the trace up to
  the unit's cooldown end plus the unit's boundaries.  The chain makes
  the key cover everything the unit's incoming microarchitectural state
  depends on (every earlier trace byte and the unit schedule), so a hit
  is exact, never approximate.  On a hit the detailed window is
  replaced by the ~4x cheaper state-replay pass
  (:meth:`repro.sim.ooo.OooTimingModel.replay_window`).

Keys embed the **full** timing key -- every field of
:class:`MicroarchConfig`, including the structural parameters -- plus a
memo schema version, so collisions across microarchitectures are
impossible by construction (test-enforced).

Persistence follows the measurement cache's discipline: one JSON file,
read-merge-replace under an ``fcntl`` lock file, atomic ``os.replace``
publication.  Workers load at pool init and save after each chunk, so
N workers simulate each distinct (binary, microarch) unit once instead
of N times.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from dataclasses import fields
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro.obs import counter
from repro.sim.config import MicroarchConfig

#: Bump when timing semantics change: stale entries must never be served
#: across simulator versions.
SIM_MEMO_VERSION = 1

#: Soft cap on persisted unit entries; oldest half is dropped beyond it.
MAX_UNIT_ENTRIES = 200_000

RUN_HITS = counter("sim.memo.run.hits")
RUN_MISSES = counter("sim.memo.run.misses")
UNIT_HITS = counter("sim.memo.unit.hits")
UNIT_MISSES = counter("sim.memo.unit.misses")


def _md5_hex(data: bytes) -> str:
    try:
        h = hashlib.md5(data, usedforsecurity=False)
    except TypeError:
        h = hashlib.md5(data)
    return h.hexdigest()


def timing_key(config: MicroarchConfig) -> str:
    """The full timing identity of a microarchitecture.

    Every dataclass field participates -- the 11 modeled parameters
    *and* the structural ones (block size, store buffer, penalties,
    bus) -- so two configs that could time any trace differently can
    never share memo entries.
    """
    parts = [f"v{SIM_MEMO_VERSION}"]
    for f in fields(config):
        parts.append(f"{f.name}={getattr(config, f.name)}")
    return "|".join(parts)


class TimingMemo:
    """In-memory + optionally disk-backed timing memo."""

    def __init__(self, path: Optional[os.PathLike] = None):
        self._runs: Dict[str, dict] = {}
        self._units: Dict[str, Tuple[int, int]] = {}
        self._dirty = False
        self._path: Optional[Path] = Path(path) if path is not None else None
        if self._path is not None:
            self.load()

    # -- keys -----------------------------------------------------------
    @staticmethod
    def run_key(
        static_dig: str,
        trace_dig: str,
        tkey: str,
        mode: str,
        unit_size: int,
        interval: int,
        offset: int,
        warmup: int,
        cooldown: int,
    ) -> str:
        return _md5_hex(
            (
                f"{static_dig}|{trace_dig}|{tkey}|{mode}|{unit_size}|"
                f"{interval}|{offset}|{warmup}|{cooldown}"
            ).encode()
        )

    # -- run level ------------------------------------------------------
    def get_run(self, key: str) -> Optional[dict]:
        hit = self._runs.get(key)
        if hit is not None:
            RUN_HITS.inc()
            return hit
        RUN_MISSES.inc()
        return None

    def put_run(self, key: str, payload: dict) -> None:
        self._runs[key] = payload
        self._dirty = True

    # -- unit level -----------------------------------------------------
    def get_unit(self, key: str) -> Optional[Tuple[int, int]]:
        hit = self._units.get(key)
        if hit is not None:
            UNIT_HITS.inc()
            return hit
        UNIT_MISSES.inc()
        return None

    def put_unit(self, key: str, cycles: int, instructions: int) -> None:
        self._units[key] = (cycles, instructions)
        self._dirty = True

    # -- stats ----------------------------------------------------------
    @property
    def n_runs(self) -> int:
        return len(self._runs)

    @property
    def n_units(self) -> int:
        return len(self._units)

    def clear(self) -> None:
        self._runs.clear()
        self._units.clear()
        self._dirty = False

    # -- persistence ----------------------------------------------------
    @contextlib.contextmanager
    def _save_lock(self) -> Iterator[None]:
        try:
            import fcntl
        except ImportError:  # non-POSIX: merge still bounds the loss
            yield
            return
        lock_path = self._path.with_suffix(".lock")
        with open(lock_path, "w") as lk:
            fcntl.flock(lk, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lk, fcntl.LOCK_UN)

    def _read_disk_raw(self) -> dict:
        if self._path is None or not self._path.exists():
            return {}
        try:
            raw = json.loads(self._path.read_text())
        except (json.JSONDecodeError, OSError):
            return {}
        if not isinstance(raw, dict) or raw.get("version") != SIM_MEMO_VERSION:
            return {}
        return raw

    def load(self) -> None:
        raw = self._read_disk_raw()
        for key, value in raw.get("runs", {}).items():
            self._runs.setdefault(key, value)
        for key, value in raw.get("units", {}).items():
            self._units.setdefault(key, (int(value[0]), int(value[1])))

    def save(self) -> None:
        """Merge-and-flush to disk (no-op without a path or when clean)."""
        if self._path is None or not self._dirty:
            return
        self._path.parent.mkdir(parents=True, exist_ok=True)
        with self._save_lock():
            raw = self._read_disk_raw()
            runs = raw.get("runs", {})
            units = raw.get("units", {})
            # Absorb concurrent writers' entries, then overlay ours.
            for key, value in runs.items():
                self._runs.setdefault(key, value)
            for key, value in units.items():
                self._units.setdefault(key, (int(value[0]), int(value[1])))
            if len(self._units) > MAX_UNIT_ENTRIES:
                keep = list(self._units.items())[len(self._units) // 2 :]
                self._units = dict(keep)
            payload = {
                "version": SIM_MEMO_VERSION,
                "runs": self._runs,
                "units": {k: list(v) for k, v in self._units.items()},
            }
            fd, tmp = tempfile.mkstemp(
                dir=str(self._path.parent),
                prefix=self._path.name,
                suffix=".tmp",
            )
            try:
                with os.fdopen(fd, "w") as f:
                    json.dump(payload, f)
                os.replace(tmp, self._path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        self._dirty = False


_DEFAULT: Optional[TimingMemo] = None


def default_memo() -> TimingMemo:
    """Process-wide memo, persisted under ``REPRO_CACHE_DIR`` (same
    opt-out values as the measurement cache)."""
    global _DEFAULT
    if _DEFAULT is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
        if cache_dir.lower() in ("0", "off", "none", ""):
            _DEFAULT = TimingMemo(path=None)
        else:
            _DEFAULT = TimingMemo(path=Path(cache_dir) / "sim_memo.json")
    return _DEFAULT

"""Flat-array trace representation and per-executable static tables.

The per-event simulator loops (:mod:`repro.sim.ooo`) used to chase
attributes per instruction: ``trace[i]`` tuple unpacking, ``cls_tab[pc]``
table lookups, ``TEXT_BASE + pc * INSTR_BYTES`` arithmetic, block-index
divisions.  This module hoists all of that into numpy-precomputed flat
arrays built once per (executable, trace) and reused across every SMARTS
window and every microarchitecture sharing the trace:

* :class:`PackedTrace` -- the dynamic trace as two parallel numpy arrays
  (``pcs``, ``eas``) with a content digest and cheap segment hashing for
  the timing memo (:mod:`repro.sim.memo`).  It behaves as a sequence of
  ``(pc, ea)`` tuples, so existing consumers (``instruction_mix``,
  ``detailed_statistics``, tests) keep working unchanged.
* :class:`TraceTables` -- per-position class codes, latencies, register
  tables and byte addresses, plus per-``block_size`` instruction-block
  ids and the merged *warm event list* (positions where functional
  warming must touch a cache, predictor or the RAS -- everything else
  is skipped entirely).

Tables are attached to the ``Executable`` object (``_repro_*``
attributes), so they live and die with the binary+trace cache entry in
:class:`repro.harness.measure.MeasurementEngine` and are shared by every
``OooTimingModel`` built on the same binary.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.codegen.isa import OpClass, RA, ZERO
from repro.codegen.linker import Executable, INSTR_BYTES, TEXT_BASE

# Class codes shared with repro.sim.ooo (indexable, faster than Enum).
IALU, IMULT, FPALU, FPMULT, LOAD, STORE, BRANCH, JUMP, CALL, RET, PF, NOP = range(12)

CLASS_CODE = {
    OpClass.IALU: IALU,
    OpClass.IMULT: IMULT,
    OpClass.FPALU: FPALU,
    OpClass.FPMULT: FPMULT,
    OpClass.LOAD: LOAD,
    OpClass.STORE: STORE,
    OpClass.BRANCH: BRANCH,
    OpClass.JUMP: JUMP,
    OpClass.CALL: CALL,
    OpClass.RET: RET,
    OpClass.PREFETCH: PF,
    OpClass.NOP: NOP,
}

#: Warm-event kinds (ordered: the instruction-block event of a position
#: must be processed before the same position's data/control event).
#: ``EV_JUMP`` exists for :meth:`repro.sim.ooo.OooTimingModel.replay_window`
#: only (jumps redirect fetch); the warm loop ignores it.
EV_INST, EV_DATA, EV_PF, EV_BRANCH, EV_CALL, EV_RET, EV_JUMP = range(7)


def _md5(data: bytes) -> "hashlib._Hash":
    try:
        return hashlib.md5(data, usedforsecurity=False)
    except TypeError:  # pre-3.9-style signature
        return hashlib.md5(data)


class PackedTrace:
    """A dynamic trace as two parallel flat arrays.

    Duck-types as a ``Sequence[Tuple[int, int]]`` so it can replace the
    list-of-tuples trace everywhere, while exposing the numpy arrays and
    plain-list views the hot loops index directly.
    """

    __slots__ = (
        "pcs",
        "eas",
        "_pcs_list",
        "_eas_list",
        "_digest",
    )

    def __init__(self, pcs: np.ndarray, eas: np.ndarray):
        self.pcs = np.ascontiguousarray(pcs, dtype=np.int64)
        self.eas = np.ascontiguousarray(eas, dtype=np.int64)
        if self.pcs.shape != self.eas.shape:
            raise ValueError("pcs and eas must have the same length")
        self._pcs_list: Optional[List[int]] = None
        self._eas_list: Optional[List[int]] = None
        self._digest: Optional[str] = None

    # -- construction ---------------------------------------------------
    @classmethod
    def from_pairs(cls, trace: Sequence[Tuple[int, int]]) -> "PackedTrace":
        if isinstance(trace, PackedTrace):
            return trace
        n = len(trace)
        # fromiter over a flattened chain is ~3x faster than assigning a
        # list of tuples into a 2-D array.
        flat = np.fromiter(
            itertools.chain.from_iterable(trace), dtype=np.int64, count=2 * n
        )
        return cls(flat[0::2].copy(), flat[1::2].copy())

    # -- sequence protocol (compat with list-of-tuples consumers) -------
    def __len__(self) -> int:
        return int(self.pcs.shape[0])

    def __getitem__(self, i):
        if isinstance(i, slice):
            return list(zip(self.pcs[i].tolist(), self.eas[i].tolist()))
        return (int(self.pcs[i]), int(self.eas[i]))

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(zip(self.pcs.tolist(), self.eas.tolist()))

    # -- flat views for the hot loops -----------------------------------
    @property
    def pcs_list(self) -> List[int]:
        if self._pcs_list is None:
            self._pcs_list = self.pcs.tolist()
        return self._pcs_list

    @property
    def eas_list(self) -> List[int]:
        if self._eas_list is None:
            self._eas_list = self.eas.tolist()
        return self._eas_list

    # -- content addressing ---------------------------------------------
    def digest(self) -> str:
        """Content digest of the whole trace."""
        if self._digest is None:
            h = _md5(self.pcs.tobytes())
            h.update(self.eas.tobytes())
            self._digest = h.hexdigest()
        return self._digest

    def segment_bytes(self, start: int, end: int) -> bytes:
        """Raw bytes of trace[start:end] for incremental chain digests."""
        return self.pcs[start:end].tobytes() + self.eas[start:end].tobytes()


def static_digest(exe: Executable) -> str:
    """Content digest of an executable's timing-relevant static image.

    Covers every field the timing model reads: opcode/class, registers,
    immediates, branch targets and instruction order (hence code
    layout).  Two compiler configurations that emit the same machine
    code get the same digest -- the hook the cross-point memo layers
    key on.
    """
    cached = getattr(exe, "_repro_static_digest", None)
    if cached is not None:
        return cached
    h = _md5(repr(exe.entry_pc).encode())
    for instr in exe.instrs:
        h.update(
            (
                f"{instr.op}|{instr.dst}|{instr.srcs}|{instr.imm}|"
                f"{instr.target_pc}\n"
            ).encode()
        )
    digest = h.hexdigest()
    exe._repro_static_digest = digest  # type: ignore[attr-defined]
    return digest


class TraceTables:
    """Per-(executable, trace) flattened lookup tables.

    Everything here is a plain python list (fast scalar indexing) built
    from one vectorized numpy pass.  Per-``block_size`` artifacts (block
    ids, warm event lists) and per-``issue_width`` latencies are cached
    in dicts, since those are the only microarchitectural parameters the
    tables depend on.
    """

    def __init__(self, exe: Executable, trace: PackedTrace):
        self.exe = exe
        self.trace = trace
        n = len(trace)
        self.n = n
        pcs = trace.pcs
        # Static per-pc tables.
        cls_pc = np.empty(len(exe.instrs), dtype=np.int64)
        dst_pc = np.empty(len(exe.instrs), dtype=np.int64)
        srcs_pc: List[Tuple[int, ...]] = []
        for i, instr in enumerate(exe.instrs):
            code = CLASS_CODE[instr.op_class]
            cls_pc[i] = code
            if code == CALL:
                dst_pc[i] = RA
            elif instr.dst is not None:
                dst_pc[i] = instr.dst
            else:
                dst_pc[i] = -1
            srcs_pc.append(tuple(r for r in instr.srcs if r != ZERO))
        self.cls_pc = cls_pc
        self.srcs_pc = srcs_pc
        # Per-position flattening.
        self.pcs: List[int] = trace.pcs_list
        self.eas: List[int] = trace.eas_list
        self.cls: List[int] = np.take(cls_pc, pcs).tolist() if n else []
        self.dst: List[int] = np.take(dst_pc, pcs).tolist() if n else []
        self.srcs: List[Tuple[int, ...]] = [srcs_pc[pc] for pc in self.pcs]
        self.byte_addr: List[int] = (
            (pcs * INSTR_BYTES + TEXT_BASE).tolist() if n else []
        )
        # taken[i]: the control transfer at position i changed the pc
        # stream (next_pc != pc + 1); the final position counts as not
        # taken, exactly as the per-event loops treated it.
        if n:
            nxt = np.empty(n, dtype=np.int64)
            nxt[:-1] = pcs[1:]
            nxt[-1] = pcs[-1] + 1
            self.taken: List[bool] = (nxt != pcs + 1).tolist()
            self.next_pc: List[int] = nxt.tolist()
        else:
            self.taken = []
            self.next_pc = []
        self._lat: Dict[int, List[int]] = {}
        self._blocks: Dict[int, List[int]] = {}
        self._events: Dict[int, Tuple[List[int], List[int]]] = {}

    # -- per-issue-width latency table ----------------------------------
    def lat_for(self, mdesc) -> List[int]:
        """Per-position latencies for one machine description."""
        width = mdesc.issue_width
        hit = self._lat.get(width)
        if hit is not None:
            return hit
        lat_pc = np.array(
            [mdesc.latency(instr.op_class) for instr in self.exe.instrs],
            dtype=np.int64,
        )
        lat = np.take(lat_pc, self.trace.pcs).tolist() if self.n else []
        self._lat[width] = lat
        return lat

    # -- per-block-size artifacts ---------------------------------------
    def blocks_for(self, block_size: int) -> List[int]:
        """Instruction-block id per position."""
        hit = self._blocks.get(block_size)
        if hit is not None:
            return hit
        blocks = (
            ((self.trace.pcs * INSTR_BYTES + TEXT_BASE) // block_size).tolist()
            if self.n
            else []
        )
        self._blocks[block_size] = blocks
        return blocks

    def events_for(self, block_size: int) -> Tuple[List[int], List[int]]:
        """Merged warm-event list for one block size.

        Returns parallel lists ``(positions, kinds)`` sorted by
        ``(position, kind)``: instruction-block-change events
        (``EV_INST``) precede the same position's data/control event,
        mirroring the order the sequential warm loop touched state in.
        Position 0 never carries an ``EV_INST`` entry -- window starts
        force their own first instruction access, because warming resets
        its block tracker per call.
        """
        hit = self._events.get(block_size)
        if hit is not None:
            return hit
        n = self.n
        if n == 0:
            self._events[block_size] = ([], [])
            return self._events[block_size]
        blocks = np.asarray(self.blocks_for(block_size), dtype=np.int64)
        cls = np.asarray(self.cls, dtype=np.int64)
        change = np.flatnonzero(blocks[1:] != blocks[:-1]) + 1
        pos_parts = [change]
        kind_parts = [np.full(change.shape, EV_INST, dtype=np.int64)]
        for code, kind in (
            (LOAD, EV_DATA),
            (STORE, EV_DATA),
            (PF, EV_PF),
            (BRANCH, EV_BRANCH),
            (CALL, EV_CALL),
            (RET, EV_RET),
            (JUMP, EV_JUMP),
        ):
            where = np.flatnonzero(cls == code)
            pos_parts.append(where)
            kind_parts.append(np.full(where.shape, kind, dtype=np.int64))
        pos = np.concatenate(pos_parts)
        kind = np.concatenate(kind_parts)
        order = np.lexsort((kind, pos))
        result = (pos[order].tolist(), kind[order].tolist())
        self._events[block_size] = result
        return result


def as_packed(trace: Sequence[Tuple[int, int]]) -> PackedTrace:
    """Coerce any trace representation to a :class:`PackedTrace`."""
    if isinstance(trace, PackedTrace):
        return trace
    return PackedTrace.from_pairs(trace)


def packed_for(exe: Executable, trace: Sequence[Tuple[int, int]]) -> PackedTrace:
    """The (cached) packed view of a trace, without building tables.

    Digest-only consumers (memo key computation on a run-level hit) need
    the packed arrays but not the full :class:`TraceTables`; this caches
    just the conversion, keyed like :func:`tables_for`.
    """
    if isinstance(trace, PackedTrace):
        return trace
    registry: Dict[int, Tuple[object, PackedTrace]] = getattr(
        exe, "_repro_packed_traces", None
    )
    if registry is None:
        registry = {}
        exe._repro_packed_traces = registry  # type: ignore[attr-defined]
    hit = registry.get(id(trace))
    if hit is not None and hit[0] is trace:
        return hit[1]
    packed = PackedTrace.from_pairs(trace)
    registry[id(trace)] = (trace, packed)
    return packed


def tables_for(exe: Executable, trace: Sequence[Tuple[int, int]]) -> TraceTables:
    """The (cached) flat tables for one (executable, trace) pair.

    Tables are attached to the executable keyed by trace identity, so
    repeated simulations of the same binary across many design points
    build them exactly once.  The keyed traces are also kept alive by
    the attachment -- they are the same objects the measurement engine's
    LRU holds, so nothing outlives the binary+trace cache entry.
    """
    registry: Dict[int, Tuple[object, TraceTables]] = getattr(
        exe, "_repro_trace_tables", None
    )
    if registry is None:
        registry = {}
        exe._repro_trace_tables = registry  # type: ignore[attr-defined]
    hit = registry.get(id(trace))
    if hit is not None and hit[0] is trace:
        return hit[1]
    packed = packed_for(exe, trace)
    tables = TraceTables(exe, packed)
    registry[id(trace)] = (trace, tables)
    if packed is not trace:
        registry[id(packed)] = (packed, tables)
    return tables

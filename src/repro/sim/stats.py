"""Simulation statistics: instruction mix, cache and predictor summaries.

The paper's analysis leans on understanding *why* a configuration is
fast or slow; this module collects the per-run counters a SimpleScalar
user would read from ``sim-outorder``'s summary output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.codegen.isa import OpClass
from repro.codegen.linker import Executable
from repro.sim.config import MicroarchConfig
from repro.sim.ooo import OooTimingModel, TimingResult


@dataclass
class InstructionMix:
    """Dynamic instruction counts by functional-unit class."""

    counts: Dict[str, int] = field(default_factory=dict)
    total: int = 0

    def fraction(self, class_name: str) -> float:
        if self.total == 0:
            return 0.0
        return self.counts.get(class_name, 0) / self.total

    @property
    def memory_fraction(self) -> float:
        return self.fraction("load") + self.fraction("store")

    @property
    def fp_fraction(self) -> float:
        return self.fraction("fpalu") + self.fraction("fpmult")

    @property
    def control_fraction(self) -> float:
        return sum(
            self.fraction(n) for n in ("branch", "jump", "call", "ret")
        )


def instruction_mix(
    exe: Executable, trace: Sequence[Tuple[int, int]]
) -> InstructionMix:
    """Classify every dynamic instruction of a trace."""
    mix = InstructionMix()
    counts: Dict[str, int] = {}
    for pc, _ea in trace:
        name = exe.instrs[pc].op_class.value
        counts[name] = counts.get(name, 0) + 1
    mix.counts = counts
    mix.total = len(trace)
    return mix


@dataclass
class RunStatistics:
    """Everything a detailed simulation can report about one run."""

    timing: TimingResult
    mix: InstructionMix
    il1_miss_rate: float
    dl1_miss_rate: float
    ul2_miss_rate: float
    branch_mispredict_rate: float
    memory_bus_accesses: int

    def summary(self) -> str:
        lines = [
            f"cycles             {self.timing.cycles:>12d}",
            f"instructions       {self.timing.instructions:>12d}",
            f"CPI                {self.timing.cpi:>12.3f}",
            f"mem fraction       {self.mix.memory_fraction:>12.3f}",
            f"fp fraction        {self.mix.fp_fraction:>12.3f}",
            f"control fraction   {self.mix.control_fraction:>12.3f}",
            f"il1 miss rate      {self.il1_miss_rate:>12.4f}",
            f"dl1 miss rate      {self.dl1_miss_rate:>12.4f}",
            f"ul2 miss rate      {self.ul2_miss_rate:>12.4f}",
            f"bpred mispredicts  {self.branch_mispredict_rate:>12.4f}",
            f"memory accesses    {self.memory_bus_accesses:>12d}",
        ]
        return "\n".join(lines)


def detailed_statistics(
    exe: Executable,
    config: MicroarchConfig,
    trace: Sequence[Tuple[int, int]],
) -> RunStatistics:
    """Run a detailed simulation and collect the full counter set."""
    model = OooTimingModel(exe, config)
    timing = model.simulate_trace(trace)
    hierarchy = model.hierarchy
    return RunStatistics(
        timing=timing,
        mix=instruction_mix(exe, trace),
        il1_miss_rate=hierarchy.il1.miss_rate(),
        dl1_miss_rate=hierarchy.dl1.miss_rate(),
        ul2_miss_rate=hierarchy.ul2.miss_rate(),
        branch_mispredict_rate=model.bpred.misprediction_rate(),
        memory_bus_accesses=hierarchy.memory_accesses,
    )

"""Set-associative LRU caches and the two-level hierarchy.

Real tag arrays (not hit-rate approximations): sizes, associativities and
block size determine conflict behaviour, so the empirical models face the
same non-linear cache responses the paper's SimpleScalar produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.config import MicroarchConfig


class Cache:
    """One level of set-associative, LRU, write-allocate cache."""

    def __init__(self, size: int, assoc: int, block_size: int, name: str = ""):
        if size % (assoc * block_size) != 0:
            raise ValueError(
                f"cache {name}: size {size} not divisible by "
                f"assoc*block ({assoc}*{block_size})"
            )
        self.size = size
        self.assoc = assoc
        self.block_size = block_size
        self.name = name
        self.n_sets = size // (assoc * block_size)
        # Per-set MRU-last list of tags.
        self._sets: List[List[int]] = [[] for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Access the block containing ``addr``; returns hit, updates LRU."""
        block = addr // self.block_size
        set_index = block % self.n_sets
        tag = block // self.n_sets
        ways = self._sets[set_index]
        try:
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return True
        except ValueError:
            self.misses += 1
            ways.append(tag)
            if len(ways) > self.assoc:
                ways.pop(0)
            return False

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU or statistics."""
        block = addr // self.block_size
        set_index = block % self.n_sets
        tag = block // self.n_sets
        return tag in self._sets[set_index]

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


class CacheHierarchy:
    """L1 I/D caches over a unified L2 over memory behind a shared bus.

    ``*_latency`` methods take the request time (``now``, in the timing
    model's cycle domain), return the total access latency in cycles, and
    update all levels' state (fills on miss).  Misses to main memory
    serialize on the L2<->memory bus (``bus_transfer_cycles`` per block),
    which bounds memory-level parallelism: without the bus, an out-of-
    order core with a large window would hide arbitrarily many misses and
    software prefetching would be worthless.
    """

    def __init__(self, config: MicroarchConfig):
        self.config = config
        self.il1 = Cache(
            config.icache_size,
            config.icache_assoc,
            config.block_size,
            name="il1",
        )
        self.dl1 = Cache(
            config.dcache_size,
            config.dcache_assoc,
            config.block_size,
            name="dl1",
        )
        self.ul2 = Cache(
            config.l2_size, config.l2_assoc, config.block_size, name="ul2"
        )
        #: Cycle at which the memory bus becomes free.
        self.bus_free = 0
        self.memory_accesses = 0

    def reset_bus(self) -> None:
        """Reset the bus clock (called at each SMARTS window start)."""
        self.bus_free = 0

    def _memory_access(self, request_time: int) -> int:
        """Latency of a block fetch from memory requested at a time."""
        start = request_time if request_time > self.bus_free else self.bus_free
        self.bus_free = start + self.config.bus_transfer_cycles
        self.memory_accesses += 1
        return (start - request_time) + self.config.memory_latency

    def data_latency(self, addr: int, now: int = 0) -> int:
        """Latency of a data access through DL1 (fills on miss)."""
        if self.dl1.access(addr):
            return self.config.dcache_latency
        lat = self.config.dcache_latency + self.config.l2_latency
        if self.ul2.access(addr):
            return lat
        return lat + self._memory_access(now + lat)

    def inst_latency(self, addr: int, now: int = 0) -> int:
        """Latency of an instruction-block fetch through IL1."""
        if self.il1.access(addr):
            return self.config.icache_latency
        lat = self.config.icache_latency + self.config.l2_latency
        if self.ul2.access(addr):
            return lat
        return lat + self._memory_access(now + lat)

    def prefetch(self, addr: int, now: int = 0) -> None:
        """Non-binding prefetch: fills DL1/L2 and occupies the bus on a
        memory miss (prefetch traffic contends with demand misses)."""
        if self.dl1.access(addr):
            return
        if not self.ul2.access(addr):
            self._memory_access(now + self.config.l2_latency)

    def warm_data(self, addr: int) -> None:
        """Functional warming of the data path (SMARTS skip mode)."""
        if not self.dl1.access(addr):
            self.ul2.access(addr)

    def warm_inst(self, addr: int) -> None:
        if not self.il1.access(addr):
            self.ul2.access(addr)

"""One-call simulation entry point."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.codegen.linker import Executable
from repro.obs import counter, span
from repro.sim.config import MicroarchConfig
from repro.sim.func import FunctionalResult, execute
from repro.sim.memo import TimingMemo, timing_key
from repro.sim.ooo import OooTimingModel
from repro.sim.smarts import SmartsResult, smarts_simulate
from repro.sim.tracepack import packed_for, static_digest

_DETAILED_RUNS = counter("sim.detailed_runs")
_SMARTS_RUNS = counter("sim.smarts_runs")


@dataclass
class SimulationOutcome:
    """Everything one measurement produces."""

    #: Execution time in cycles (the paper's response variable).
    cycles: float
    #: Program checksum (main's return value) -- correctness witness.
    return_value: int
    #: Dynamic instruction count.
    instructions: int
    #: Cycles per instruction.
    cpi: float
    #: SMARTS sampling error estimate (0 for exhaustive simulation).
    sampling_error: float


def simulate(
    exe: Executable,
    config: MicroarchConfig,
    mode: str = "smarts",
    unit_size: int = 1000,
    interval: int = 10,
    trace: Optional[Sequence[Tuple[int, int]]] = None,
    functional: Optional[FunctionalResult] = None,
    memo: Optional[TimingMemo] = None,
) -> SimulationOutcome:
    """Measure the execution time of ``exe`` on ``config``.

    ``mode="smarts"`` uses statistical sampling (the paper's
    methodology); ``mode="detailed"`` simulates every instruction.  A
    pre-computed functional result/trace may be passed to amortize the
    functional run across microarchitectures, and a ``memo``
    (:class:`repro.sim.memo.TimingMemo`) reuses timing work across
    design points that produced identical machine code.
    """
    if functional is None:
        with span("sim.functional") as sp:
            functional = execute(exe, collect_trace=True)
            sp.set_attrs(instructions=functional.instruction_count)
    if trace is None:
        trace = functional.trace
    if mode == "detailed":
        _DETAILED_RUNS.inc()
        run_key = None
        if memo is not None:
            packed = packed_for(exe, trace)
            run_key = TimingMemo.run_key(
                static_digest(exe),
                packed.digest(),
                timing_key(config),
                "detailed",
                0,
                0,
                0,
                0,
                0,
            )
            hit = memo.get_run(run_key)
            if hit is not None:
                return SimulationOutcome(
                    cycles=float(hit["cycles"]),
                    return_value=functional.return_value,
                    instructions=int(hit["instructions"]),
                    cpi=float(hit["cpi"]),
                    sampling_error=0.0,
                )
        with span("sim.detailed", instructions=len(trace)):
            model = OooTimingModel(exe, config)
            timing = model.simulate_trace(trace)
        if memo is not None:
            memo.put_run(
                run_key,
                {
                    "cycles": timing.cycles,
                    "instructions": timing.instructions,
                    "cpi": timing.cpi,
                },
            )
        return SimulationOutcome(
            cycles=float(timing.cycles),
            return_value=functional.return_value,
            instructions=timing.instructions,
            cpi=timing.cpi,
            sampling_error=0.0,
        )
    if mode == "smarts":
        _SMARTS_RUNS.inc()
        with span(
            "sim.smarts",
            instructions=len(trace),
            unit_size=unit_size,
            interval=interval,
        ) as sp:
            est = smarts_simulate(
                exe, config, trace, unit_size=unit_size, interval=interval, memo=memo
            )
            sp.set_attrs(
                sampled_units=est.sampled_units,
                relative_error=est.relative_error,
            )
        return SimulationOutcome(
            cycles=est.estimated_cycles,
            return_value=functional.return_value,
            instructions=est.instructions,
            cpi=est.cpi,
            sampling_error=est.relative_error,
        )
    raise ValueError(f"unknown simulation mode {mode!r}")

"""SMARTS: statistical sampling of the timing simulation.

Following Wunderlich et al. [19] as used in the paper's Section 5: the
dynamic instruction stream is divided into sampling units of ``unit_size``
instructions; one unit in every ``interval`` is simulated in detail and
the rest receive *functional warming* only (caches and branch predictors
stay warm, no pipeline timing).  Total execution time is estimated as
``mean(unit CPI) * instruction count`` with a confidence interval from
the unit-CPI variance (systematic sampling treated as random sampling,
as SMARTS does).

The paper tuned sampling to <1% error at 99.7% confidence; the benchmark
``bench_smarts_accuracy`` reproduces that check against the exhaustive
simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.codegen.linker import Executable
from repro.obs import counter, span
from repro.sim.config import MicroarchConfig
from repro.sim.memo import TimingMemo, timing_key
from repro.sim.ooo import OooTimingModel, TimingResult
from repro.sim.tracepack import _md5, packed_for, static_digest

_UNITS_SAMPLED = counter("smarts.units.sampled")
_UNITS_SKIPPED = counter("smarts.units.skipped")
_UNITS_REPLAYED = counter("smarts.units.replayed")

#: z-value for 99.7% confidence (three sigma), as the paper quotes.
Z_997 = 3.0


@dataclass
class SmartsResult:
    """A sampled estimate of total execution time."""

    #: Estimated total cycles.
    estimated_cycles: float
    #: Estimated cycles-per-instruction.
    cpi: float
    #: Relative confidence-interval half-width at 99.7% confidence.
    relative_error: float
    #: Number of sampled (detailed) units.
    sampled_units: int
    #: Instructions in the trace.
    instructions: int

    @property
    def cycles(self) -> int:
        return int(round(self.estimated_cycles))


def smarts_simulate(
    exe: Executable,
    config: MicroarchConfig,
    trace: Sequence[Tuple[int, int]],
    unit_size: int = 1000,
    interval: int = 10,
    offset: int = 0,
    detailed_warmup: int = 300,
    detailed_cooldown: int = 150,
    memo: Optional[TimingMemo] = None,
) -> SmartsResult:
    """Estimate execution time by systematic sampling.

    Parameters
    ----------
    unit_size:
        Instructions per sampling unit (the paper uses 1000).
    interval:
        Detail-simulate one unit in every ``interval`` (the paper's
        billion-instruction runs use 1000; our short traces default to
        10 so enough units are sampled).
    offset:
        Index of the first sampled unit within each interval.
    detailed_warmup:
        Instructions of detailed pipeline warming before each measured
        unit (their cycles are discarded), removing cold-start bias.
    detailed_cooldown:
        Instructions simulated past each unit's end so the measured
        interval ends with a full pipeline (removing drain bias).
    memo:
        Optional :class:`repro.sim.memo.TimingMemo`.  Run-level hits
        skip the simulation entirely; unit-level hits replace a sampled
        unit's detailed window with the cheaper exact state replay
        (:meth:`OooTimingModel.replay_window`).  Results are
        bit-identical with and without a memo by construction
        (test-enforced).
    """
    if unit_size < 1 or interval < 1:
        raise ValueError("unit_size and interval must be positive")
    n = len(trace)
    run_key = None
    packed = None
    chain = None
    if memo is not None:
        packed = packed_for(exe, trace)
        static_dig = static_digest(exe)
        tkey = timing_key(config)
        run_key = TimingMemo.run_key(
            static_dig,
            packed.digest(),
            tkey,
            "smarts",
            unit_size,
            interval,
            offset,
            detailed_warmup,
            detailed_cooldown,
        )
        hit = memo.get_run(run_key)
        if hit is not None:
            return SmartsResult(**hit)
        # Chained prefix digest: after processing the unit ending at
        # ``pos``, ``chain`` covers the schedule header plus every trace
        # byte in [0, pos) -- everything a unit's incoming cache and
        # predictor state can depend on.
        chain = _md5(
            (
                f"{static_dig}|{tkey}|{unit_size}|{interval}|{offset}|"
                f"{detailed_warmup}|{detailed_cooldown}"
            ).encode()
        )
    model = OooTimingModel(exe, config)
    unit_cpis: List[float] = []
    pos = 0
    unit_index = 0
    while pos < n:
        end = min(pos + unit_size, n)
        if unit_index % interval == offset % interval:
            warm_start = max(0, pos - detailed_warmup)
            cool_end = min(n, end + detailed_cooldown)
            unit_key = None
            unit_hit = None
            if memo is not None:
                h = chain.copy()
                h.update(packed.segment_bytes(pos, cool_end))
                h.update(f"|{warm_start}|{pos}|{end}|{cool_end}".encode())
                unit_key = h.hexdigest()
                unit_hit = memo.get_unit(unit_key)
            if unit_hit is not None:
                # The unit's cycles come from the memo; replay the
                # window so caches/predictors end up exactly as the
                # detailed simulation would have left them (subsequent
                # units stay bit-identical).
                with span(
                    "smarts.replay_unit", unit=unit_index, instructions=end - pos
                ):
                    model.replay_window(trace, warm_start, cool_end)
                _UNITS_SAMPLED.inc()
                _UNITS_REPLAYED.inc()
                cycles, instructions = unit_hit
                if instructions > 0:
                    unit_cpis.append(cycles / instructions)
            else:
                with span(
                    "smarts.detailed_unit", unit=unit_index, instructions=end - pos
                ):
                    result = model.simulate_window(
                        trace, warm_start, cool_end, measure_from=pos, measure_to=end
                    )
                _UNITS_SAMPLED.inc()
                if memo is not None:
                    memo.put_unit(unit_key, result.cycles, result.instructions)
                # Keep cache/predictor state consistent: the cooldown
                # instructions were simulated in detail, which already warmed
                # them; skip re-warming only for the unit itself.
                if result.instructions > 0:
                    unit_cpis.append(result.cycles / result.instructions)
        else:
            with span("smarts.warm", unit=unit_index, instructions=end - pos):
                model.warm(trace, pos, end)
            _UNITS_SKIPPED.inc()
        if memo is not None:
            chain.update(packed.segment_bytes(pos, end))
        pos = end
        unit_index += 1

    if not unit_cpis:
        # Degenerate short trace: fall back to detailed simulation.
        with span("smarts.fallback_detailed", instructions=n):
            result = model.simulate_trace(trace)
        outcome = SmartsResult(
            estimated_cycles=float(result.cycles),
            cpi=result.cpi,
            relative_error=0.0,
            sampled_units=1,
            instructions=n,
        )
    else:
        k = len(unit_cpis)
        mean_cpi = sum(unit_cpis) / k
        if k > 1:
            var = sum((c - mean_cpi) ** 2 for c in unit_cpis) / (k - 1)
            stderr = math.sqrt(var / k)
            rel_err = Z_997 * stderr / mean_cpi if mean_cpi > 0 else 0.0
        elif n <= unit_size:
            # The single unit covered the whole trace: the estimate is exact.
            rel_err = 0.0
        else:
            rel_err = float("inf")
        outcome = SmartsResult(
            estimated_cycles=mean_cpi * n,
            cpi=mean_cpi,
            relative_error=rel_err,
            sampled_units=k,
            instructions=n,
        )
    if memo is not None:
        memo.put_run(
            run_key,
            {
                "estimated_cycles": outcome.estimated_cycles,
                "cpi": outcome.cpi,
                "relative_error": outcome.relative_error,
                "sampled_units": outcome.sampled_units,
                "instructions": outcome.instructions,
            },
        )
    return outcome


def smarts_with_target_error(
    exe: Executable,
    config: MicroarchConfig,
    trace: Sequence[Tuple[int, int]],
    target_relative_error: float = 0.01,
    unit_size: int = 1000,
    initial_interval: int = 20,
    memo: Optional[TimingMemo] = None,
) -> SmartsResult:
    """Iteratively densify sampling until the error bound is met.

    Mirrors the paper's use of SMARTS error estimates to "tune the
    sampling parameters and repeat the simulation until a desired level
    of accuracy is obtained".  Halves the sampling interval until the
    99.7% confidence half-width drops below the target (or sampling
    becomes exhaustive).
    """
    interval = initial_interval
    while True:
        result = smarts_simulate(
            exe, config, trace, unit_size=unit_size, interval=interval, memo=memo
        )
        if result.relative_error <= target_relative_error or interval == 1:
            return result
        interval = max(1, interval // 2)

"""Branch prediction: combined bimodal + 2-level predictor, BTB, RAS.

The paper's ``bpred_size`` parameter sets "the size of the predictor
tables in a combined branch predictor consisting of a bimodal predictor
and a 2-level predictor of equal sizes"; the chooser table has the same
number of entries.  The 2-level component is gshare-style: a global
history register XORed into the pc.  Targets come from a direct-mapped
BTB of fixed size, and returns from a 16-deep return-address stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional


def _counter_update(counter: int, taken: bool) -> int:
    if taken:
        return min(3, counter + 1)
    return max(0, counter - 1)


class CombinedPredictor:
    """Bimodal + gshare with a chooser, all tables of ``size`` entries."""

    def __init__(self, size: int):
        if size & (size - 1):
            raise ValueError("predictor size must be a power of two")
        self.size = size
        self._mask = size - 1
        self._bimodal = [2] * size  # weakly taken
        self._gshare = [2] * size
        self._chooser = [2] * size  # prefer bimodal initially
        self._history = 0
        self._history_bits = max(1, size.bit_length() - 1)
        self._history_mask = (1 << self._history_bits) - 1
        self.lookups = 0
        self.mispredictions = 0

    # ------------------------------------------------------------------
    def _indices(self, pc: int) -> "tuple[int, int]":
        bim = pc & self._mask
        gsh = (pc ^ self._history) & self._mask
        return bim, gsh

    def predict(self, pc: int) -> bool:
        """Predicted direction for the conditional branch at ``pc``."""
        bim, gsh = self._indices(pc)
        if self._chooser[pc & self._mask] >= 2:
            return self._bimodal[bim] >= 2
        return self._gshare[gsh] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train all tables with the actual outcome."""
        bim, gsh = self._indices(pc)
        bim_pred = self._bimodal[bim] >= 2
        gsh_pred = self._gshare[gsh] >= 2
        # Chooser trains toward whichever component was right.
        if bim_pred != gsh_pred:
            self._chooser[pc & self._mask] = _counter_update(
                self._chooser[pc & self._mask], bim_pred == taken
            )
        self._bimodal[bim] = _counter_update(self._bimodal[bim], taken)
        self._gshare[gsh] = _counter_update(self._gshare[gsh], taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict, train, and record statistics; returns the prediction."""
        pred = self.predict(pc)
        self.lookups += 1
        if pred != taken:
            self.mispredictions += 1
        self.update(pc, taken)
        return pred

    def misprediction_rate(self) -> float:
        return self.mispredictions / self.lookups if self.lookups else 0.0


class BranchTargetBuffer:
    """Direct-mapped BTB: pc -> last observed target."""

    def __init__(self, entries: int):
        if entries & (entries - 1):
            raise ValueError("BTB entries must be a power of two")
        self._mask = entries - 1
        self._tags: List[int] = [-1] * entries
        self._targets: List[int] = [0] * entries

    def predict(self, pc: int) -> Optional[int]:
        idx = pc & self._mask
        if self._tags[idx] == pc:
            return self._targets[idx]
        return None

    def update(self, pc: int, target: int) -> None:
        idx = pc & self._mask
        self._tags[idx] = pc
        self._targets[idx] = target


class ReturnAddressStack:
    """A small RAS for predicting ``jr`` targets."""

    def __init__(self, depth: int = 16):
        self.depth = depth
        self._stack: List[int] = []

    def push(self, return_pc: int) -> None:
        self._stack.append(return_pc)
        if len(self._stack) > self.depth:
            self._stack.pop(0)

    def pop(self) -> Optional[int]:
        if self._stack:
            return self._stack.pop()
        return None

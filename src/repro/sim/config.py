"""Microarchitectural configuration: the paper's Table 2 as an object."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class MicroarchConfig:
    """Settings of the 11 Table 2 parameters (plus fixed structure).

    Defaults correspond to the paper's "typical" configuration (Table 5).
    """

    issue_width: int = 4
    bpred_size: int = 2048
    ruu_size: int = 64
    icache_size: int = 32 * KB
    dcache_size: int = 32 * KB
    dcache_assoc: int = 1
    dcache_latency: int = 2
    l2_size: int = 1 * MB
    l2_assoc: int = 4
    l2_latency: int = 10
    memory_latency: int = 100

    # Fixed structural parameters (not part of the modeled space).
    block_size: int = 32
    icache_assoc: int = 2
    icache_latency: int = 1
    store_buffer_size: int = 8
    btb_entries: int = 2048
    mispredict_penalty: int = 3
    #: Cycles the L2<->memory bus is occupied per block transfer; bounds
    #: memory-level parallelism and makes prefetch contention real.
    bus_transfer_cycles: int = 4

    _PARAM_NAMES = (
        "issue_width",
        "bpred_size",
        "ruu_size",
        "icache_size",
        "dcache_size",
        "dcache_assoc",
        "dcache_latency",
        "l2_size",
        "l2_assoc",
        "l2_latency",
        "memory_latency",
    )

    @classmethod
    def from_point(cls, point: Mapping[str, float]) -> "MicroarchConfig":
        """Build a config from a (possibly larger) design-point dict."""
        kwargs = {
            name: int(round(point[name]))
            for name in cls._PARAM_NAMES
            if name in point
        }
        return cls(**kwargs)

    def to_point(self) -> Dict[str, float]:
        return {
            name: float(getattr(self, name)) for name in self._PARAM_NAMES
        }

    def cache_key(self) -> tuple:
        return tuple(getattr(self, n) for n in self._PARAM_NAMES)


#: The paper's Table 5 configurations.
CONSTRAINED = MicroarchConfig(
    issue_width=2,
    bpred_size=512,
    ruu_size=16,
    icache_size=8 * KB,
    dcache_size=8 * KB,
    dcache_assoc=1,
    dcache_latency=1,
    l2_size=256 * KB,
    l2_assoc=2,
    l2_latency=6,
    memory_latency=50,
)

TYPICAL = MicroarchConfig(
    issue_width=4,
    bpred_size=2048,
    ruu_size=64,
    icache_size=32 * KB,
    dcache_size=32 * KB,
    dcache_assoc=1,
    dcache_latency=2,
    l2_size=1 * MB,
    l2_assoc=4,
    l2_latency=10,
    memory_latency=100,
)

AGGRESSIVE = MicroarchConfig(
    issue_width=4,
    bpred_size=8192,
    ruu_size=128,
    icache_size=128 * KB,
    dcache_size=128 * KB,
    dcache_assoc=2,
    dcache_latency=3,
    l2_size=8 * MB,
    l2_assoc=8,
    l2_latency=16,
    memory_latency=150,
)

"""Functional simulation: architectural execution of an executable.

Executes the program to completion, producing the architectural result
(the program checksum returned by ``main``) and, optionally, the dynamic
instruction trace consumed by the timing model.  A trace entry is a
``(pc, effective_address)`` pair (-1 when the instruction touches no
memory); control-flow outcomes are implied by the pc sequence.

The interpreter shares its operator semantics with the constant folder
through :mod:`repro.ir.semantics`, so optimizing and non-optimizing
builds of a program are architecturally indistinguishable by
construction -- the property the semantics-preservation test suite
checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.codegen.isa import OpClass, RA, RV, SP, ZERO
from repro.codegen.linker import Executable
from repro.ir.semantics import eval_int_binop, wrap_int

_MASK = (1 << 64) - 1
_SIGN = 1 << 63


class SimulationError(Exception):
    """The program misbehaved (ran too long, bad pc, ...)."""


@dataclass
class FunctionalResult:
    """Outcome of a functional run."""

    #: Value returned by main (the program checksum).
    return_value: int
    #: Dynamic instruction count.
    instruction_count: int
    #: Optional (pc, effective_address) trace.
    trace: Optional[List[Tuple[int, int]]]


def execute(
    exe: Executable,
    collect_trace: bool = True,
    max_instructions: int = 50_000_000,
) -> FunctionalResult:
    """Run the program to completion."""
    iregs = [0] * 32
    fregs = [0.0] * 32
    iregs[SP] = exe.stack_base
    mem: Dict[int, object] = {}
    for sym in exe.symbols.values():
        if sym.init:
            for i, value in enumerate(sym.init):
                mem[sym.address + 8 * i] = value

    instrs = exe.instrs
    n_instrs = len(instrs)
    trace: Optional[List[Tuple[int, int]]] = [] if collect_trace else None
    pc = exe.entry_pc
    count = 0
    mem_get = mem.get

    while True:
        if count >= max_instructions:
            raise SimulationError(
                f"exceeded {max_instructions} instructions (infinite loop?)"
            )
        if pc < 0 or pc >= n_instrs:
            raise SimulationError(f"pc {pc} out of range")
        instr = instrs[pc]
        op = instr.op
        count += 1
        ea = -1
        next_pc = pc + 1

        if op == "addi":
            v = iregs[instr.srcs[0]] + instr.imm
            if v > _SIGN - 1 or v < -_SIGN:
                v = wrap_int(v)
            iregs[instr.dst] = v
        elif op == "add":
            v = iregs[instr.srcs[0]] + iregs[instr.srcs[1]]
            if v > _SIGN - 1 or v < -_SIGN:
                v = wrap_int(v)
            iregs[instr.dst] = v
        elif op == "ld":
            ea = iregs[instr.srcs[0]] + instr.imm
            v = mem_get(ea, 0)
            iregs[instr.dst] = v if isinstance(v, int) else wrap_int(int(v))
        elif op == "st":
            ea = iregs[instr.srcs[0]] + instr.imm
            mem[ea] = iregs[instr.srcs[1]]
        elif op == "mov":
            iregs[instr.dst] = iregs[instr.srcs[0]]
        elif op == "li":
            iregs[instr.dst] = instr.imm
        elif op == "la":
            iregs[instr.dst] = instr.imm
        elif op == "bnez":
            if iregs[instr.srcs[0]] != 0:
                next_pc = instr.target_pc
        elif op == "beqz":
            if iregs[instr.srcs[0]] == 0:
                next_pc = instr.target_pc
        elif op == "j":
            next_pc = instr.target_pc
        elif op == "sub":
            v = iregs[instr.srcs[0]] - iregs[instr.srcs[1]]
            if v > _SIGN - 1 or v < -_SIGN:
                v = wrap_int(v)
            iregs[instr.dst] = v
        elif op == "mul":
            iregs[instr.dst] = wrap_int(
                iregs[instr.srcs[0]] * iregs[instr.srcs[1]]
            )
        elif op in ("div", "mod"):
            iregs[instr.dst] = eval_int_binop(
                op, iregs[instr.srcs[0]], iregs[instr.srcs[1]]
            )
        elif op == "and":
            iregs[instr.dst] = iregs[instr.srcs[0]] & iregs[instr.srcs[1]]
        elif op == "or":
            iregs[instr.dst] = iregs[instr.srcs[0]] | iregs[instr.srcs[1]]
        elif op == "xor":
            iregs[instr.dst] = iregs[instr.srcs[0]] ^ iregs[instr.srcs[1]]
        elif op == "shl":
            iregs[instr.dst] = wrap_int(
                iregs[instr.srcs[0]] << (iregs[instr.srcs[1]] & 63)
            )
        elif op == "shr":
            iregs[instr.dst] = iregs[instr.srcs[0]] >> (
                iregs[instr.srcs[1]] & 63
            )
        elif op == "neg":
            iregs[instr.dst] = wrap_int(-iregs[instr.srcs[0]])
        elif op == "not":
            iregs[instr.dst] = 1 if iregs[instr.srcs[0]] == 0 else 0
        elif op == "cmpeq":
            iregs[instr.dst] = 1 if iregs[instr.srcs[0]] == iregs[instr.srcs[1]] else 0
        elif op == "cmpne":
            iregs[instr.dst] = 1 if iregs[instr.srcs[0]] != iregs[instr.srcs[1]] else 0
        elif op == "cmplt":
            iregs[instr.dst] = 1 if iregs[instr.srcs[0]] < iregs[instr.srcs[1]] else 0
        elif op == "cmple":
            iregs[instr.dst] = 1 if iregs[instr.srcs[0]] <= iregs[instr.srcs[1]] else 0
        elif op == "cmpgt":
            iregs[instr.dst] = 1 if iregs[instr.srcs[0]] > iregs[instr.srcs[1]] else 0
        elif op == "cmpge":
            iregs[instr.dst] = 1 if iregs[instr.srcs[0]] >= iregs[instr.srcs[1]] else 0
        elif op == "fld":
            ea = iregs[instr.srcs[0]] + instr.imm
            v = mem_get(ea, 0.0)
            fregs[instr.dst - 32] = v if isinstance(v, float) else float(v)
        elif op == "fst":
            ea = iregs[instr.srcs[0]] + instr.imm
            mem[ea] = fregs[instr.srcs[1] - 32]
        elif op == "fmov":
            fregs[instr.dst - 32] = fregs[instr.srcs[0] - 32]
        elif op == "lif":
            fregs[instr.dst - 32] = instr.imm
        elif op == "fadd":
            fregs[instr.dst - 32] = fregs[instr.srcs[0] - 32] + fregs[instr.srcs[1] - 32]
        elif op == "fsub":
            fregs[instr.dst - 32] = fregs[instr.srcs[0] - 32] - fregs[instr.srcs[1] - 32]
        elif op == "fmul":
            fregs[instr.dst - 32] = fregs[instr.srcs[0] - 32] * fregs[instr.srcs[1] - 32]
        elif op == "fdiv":
            b = fregs[instr.srcs[1] - 32]
            fregs[instr.dst - 32] = (
                fregs[instr.srcs[0] - 32] / b if b != 0.0 else 0.0
            )
        elif op == "fneg":
            fregs[instr.dst - 32] = -fregs[instr.srcs[0] - 32]
        elif op == "itof":
            fregs[instr.dst - 32] = float(iregs[instr.srcs[0]])
        elif op == "ftoi":
            iregs[instr.dst] = wrap_int(int(fregs[instr.srcs[0] - 32]))
        elif op == "fcmpeq":
            iregs[instr.dst] = 1 if fregs[instr.srcs[0] - 32] == fregs[instr.srcs[1] - 32] else 0
        elif op == "fcmpne":
            iregs[instr.dst] = 1 if fregs[instr.srcs[0] - 32] != fregs[instr.srcs[1] - 32] else 0
        elif op == "fcmplt":
            iregs[instr.dst] = 1 if fregs[instr.srcs[0] - 32] < fregs[instr.srcs[1] - 32] else 0
        elif op == "fcmple":
            iregs[instr.dst] = 1 if fregs[instr.srcs[0] - 32] <= fregs[instr.srcs[1] - 32] else 0
        elif op == "fcmpgt":
            iregs[instr.dst] = 1 if fregs[instr.srcs[0] - 32] > fregs[instr.srcs[1] - 32] else 0
        elif op == "fcmpge":
            iregs[instr.dst] = 1 if fregs[instr.srcs[0] - 32] >= fregs[instr.srcs[1] - 32] else 0
        elif op == "jal":
            iregs[RA] = pc + 1
            next_pc = instr.target_pc
        elif op == "jr":
            next_pc = iregs[RA]
        elif op == "pf":
            ea = iregs[instr.srcs[0]] + instr.imm
        elif op == "nop":
            pass
        elif op == "halt":
            if trace is not None:
                trace.append((pc, -1))
            return FunctionalResult(
                return_value=iregs[RV],
                instruction_count=count,
                trace=trace,
            )
        else:
            raise SimulationError(f"unknown opcode {op!r} at pc {pc}")

        iregs[ZERO] = 0  # r0 stays hardwired
        if trace is not None:
            trace.append((pc, ea))
        pc = next_pc

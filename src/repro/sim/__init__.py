"""The processor simulator (the paper's modified SimpleScalar stand-in).

Components:

* :mod:`repro.sim.config` -- :class:`MicroarchConfig`, the Table 2
  parameter bundle;
* :mod:`repro.sim.func` -- the functional interpreter: executes a linked
  executable, returns its result (the program checksum) and the dynamic
  trace the timing model consumes;
* :mod:`repro.sim.cache` -- set-associative LRU caches with real tag
  arrays, composed into an I/D + unified-L2 hierarchy;
* :mod:`repro.sim.bpred` -- the combined bimodal + 2-level branch
  predictor with a chooser, plus a BTB;
* :mod:`repro.sim.ooo` -- the trace-driven out-of-order timing model
  (fetch -> RUU dispatch -> issue over FU pools -> commit, with a store
  buffer and fetch redirects on taken branches and mispredictions);
* :mod:`repro.sim.smarts` -- SMARTS systematic sampling: continuous
  functional warming with detailed timing on periodic windows, and a
  confidence interval on the CPI estimate;
* :mod:`repro.sim.tracepack` -- flat-array trace tables the hot loops
  index (built once per binary+trace, shared across configurations);
* :mod:`repro.sim.memo` -- content-addressed memoization of SMARTS
  timing work at run and sampling-unit granularity (see
  ``docs/SIMULATOR.md``).

:func:`repro.sim.run.simulate` is the one-call entry point.
"""

from repro.sim.config import MicroarchConfig
from repro.sim.func import FunctionalResult, execute, SimulationError
from repro.sim.cache import Cache, CacheHierarchy
from repro.sim.bpred import CombinedPredictor
from repro.sim.memo import TimingMemo, default_memo, timing_key
from repro.sim.ooo import OooTimingModel, TimingResult
from repro.sim.smarts import SmartsResult, smarts_simulate
from repro.sim.tracepack import PackedTrace, TraceTables, static_digest, tables_for
from repro.sim.run import simulate, SimulationOutcome

__all__ = [
    "MicroarchConfig",
    "FunctionalResult",
    "execute",
    "SimulationError",
    "Cache",
    "CacheHierarchy",
    "CombinedPredictor",
    "OooTimingModel",
    "TimingResult",
    "SmartsResult",
    "smarts_simulate",
    "simulate",
    "SimulationOutcome",
    "TimingMemo",
    "default_memo",
    "timing_key",
    "PackedTrace",
    "TraceTables",
    "static_digest",
    "tables_for",
]

"""Trace-driven out-of-order superscalar timing model.

A SimpleScalar-sim-outorder-style model driven by the functional trace:

* **fetch** -- ``issue_width`` sequential instructions per cycle, broken
  by taken control transfers; I-cache misses stall the front end; branch
  mispredictions (direction, BTB target, or RAS) redirect fetch when the
  branch resolves, plus a fixed penalty;
* **dispatch** -- a fixed front-end depth after fetch, stalling when the
  ``ruu_size``-entry register update unit is full (an instruction's slot
  frees when it commits);
* **issue** -- an instruction issues when its sources are ready and a
  functional unit of its class is free (FU counts from the machine
  description, i.e. from the issue width); loads check the store buffer
  for same-block forwarding, stores wait for a free store-buffer entry
  and drain through the cache hierarchy in the background;
* **commit** -- in order, ``issue_width`` per cycle.

Execution time is the commit cycle of the last instruction.  The model
keeps real cache tag and predictor state, which may be shared with a
SMARTS warming pass (:mod:`repro.sim.smarts`).

Hot-loop implementation notes
-----------------------------
The per-instruction loops index flat per-position tables precomputed by
:mod:`repro.sim.tracepack` (class codes, latencies, destination/source
registers, instruction-block ids, branch outcomes) instead of chasing
``trace[i] -> instr -> attribute`` chains, and the L1/L2 tag arrays,
branch predictor tables, BTB and RAS are updated inline with local
variables (statistics accumulate in local ints and flush once per
window).  The semantics are bit-identical to the original per-event
model -- the golden-measurement test (``tests/test_sim_memo.py``) pins
cycles/checksums captured from the pre-flattening implementation.

``warm`` walks only the precomputed *event list* (block changes, memory
operations, control transfers) -- straight-line ALU instructions inside
an already-tracked I-cache block touch no state during functional
warming, so they are skipped wholesale.  ``replay_window`` reproduces a
detailed window's cache/predictor *state* (and statistics) without the
pipeline timing -- the memo-hit path of :mod:`repro.sim.smarts`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.codegen.linker import Executable
from repro.codegen.machine_desc import MachineDescription
from repro.obs import counter
from repro.sim.bpred import BranchTargetBuffer, CombinedPredictor, ReturnAddressStack
from repro.sim.cache import CacheHierarchy
from repro.sim.config import MicroarchConfig
from repro.sim.tracepack import (
    BRANCH as _BRANCH,
    CALL as _CALL,
    CLASS_CODE as _CLASS_CODE,
    EV_BRANCH,
    EV_CALL,
    EV_DATA,
    EV_INST,
    EV_JUMP,
    EV_PF,
    EV_RET,
    JUMP as _JUMP,
    LOAD as _LOAD,
    NOP as _NOP,
    PF as _PF,
    RET as _RET,
    STORE as _STORE,
    TraceTables,
    tables_for,
)

# Hot-loop telemetry.  Accumulated in local ints inside simulate_window
# and flushed once per window, so the per-instruction path never touches
# a lock; totals explain *where* simulated cycles go (ROADMAP items 1-2).
_INSTRUCTIONS = counter("sim.ooo.instructions")
_MISPREDICTS = counter("sim.ooo.branch_mispredicts")
_ICACHE_STALLS = counter("sim.ooo.icache_stall_cycles")
_RUU_STALLS = counter("sim.ooo.ruu_stalls")

#: Front-end pipeline depth between fetch and dispatch.
FRONT_DEPTH = 2


@dataclass
class TimingResult:
    """Outcome of a detailed timing simulation."""

    cycles: int
    instructions: int

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class OooTimingModel:
    """Reusable timing state for one executable on one configuration."""

    def __init__(self, exe: Executable, config: MicroarchConfig):
        self.exe = exe
        self.config = config
        self.mdesc = MachineDescription.for_issue_width(config.issue_width)
        self.hierarchy = CacheHierarchy(config)
        self.bpred = CombinedPredictor(config.bpred_size)
        self.btb = BranchTargetBuffer(config.btb_entries)
        self.ras = ReturnAddressStack()

    def _tables(self, trace: Sequence[Tuple[int, int]]) -> TraceTables:
        return tables_for(self.exe, trace)

    # ------------------------------------------------------------------
    def simulate_window(
        self,
        trace: Sequence[Tuple[int, int]],
        start: int,
        end: int,
        measure_from: Optional[int] = None,
        measure_to: Optional[int] = None,
    ) -> TimingResult:
        """Detailed timing for trace[start:end].

        Pipeline state (register readiness, FU occupancy, RUU, store
        buffer) starts cold at relative cycle 0; cache and predictor
        state persists across calls.  When ``measure_from`` /
        ``measure_to`` are given, only the commit-time interval between
        those trace positions is reported: instructions before
        ``measure_from`` are *detailed warming* (removing cold-pipeline
        bias) and instructions after ``measure_to`` are *cooldown*
        (keeping the pipe full at the window's end so its drain is not
        billed to the window) -- SMARTS-style window bracketing.
        """
        cfg = self.config
        mdesc = self.mdesc
        hierarchy = self.hierarchy
        bpred = self.bpred
        btb = self.btb
        ras = self.ras
        T = self._tables(trace)
        block_size = cfg.block_size
        width = cfg.issue_width
        ruu_size = cfg.ruu_size
        sbuf_size = cfg.store_buffer_size
        penalty = cfg.mispredict_penalty
        icache_lat = cfg.icache_latency
        dcache_lat = cfg.dcache_latency
        l2_lat = cfg.l2_latency
        mem_lat = cfg.memory_latency
        btc = cfg.bus_transfer_cycles

        # Flat per-position tables (precomputed once per binary+trace).
        eas = T.eas
        cls_pos = T.cls
        lat_pos = T.lat_for(mdesc)
        dst_pos = T.dst
        srcs_pos = T.srcs
        pcs = T.pcs
        blocks = T.blocks_for(block_size)
        taken_pos = T.taken
        next_pos = T.next_pc

        # Inline cache state: local bindings of the tag arrays, stats in
        # local ints, flushed after the loop.
        il1 = hierarchy.il1
        dl1 = hierarchy.dl1
        ul2 = hierarchy.ul2
        i_sets = il1._sets
        i_nsets = il1.n_sets
        i_assoc = il1.assoc
        d_sets = dl1._sets
        d_nsets = dl1.n_sets
        d_assoc = dl1.assoc
        l_sets = ul2._sets
        l_nsets = ul2.n_sets
        l_assoc = ul2.assoc
        i_hits = i_miss = d_hits = d_miss = l_hits = l_miss = 0
        hierarchy.reset_bus()
        bus_free = 0
        mem_acc = 0

        # Inline branch predictor / BTB / RAS state.
        bim_tab = bpred._bimodal
        gsh_tab = bpred._gshare
        cho_tab = bpred._chooser
        bp_mask = bpred._mask
        history = bpred._history
        h_mask = bpred._history_mask
        bp_lookups = bp_wrong = 0
        btb_tags = btb._tags
        btb_targets = btb._targets
        btb_mask = btb._mask
        ras_stack = ras._stack
        ras_depth = ras.depth

        # Control ops and NOPs contend only for issue bandwidth (no FU
        # pool), exactly as in the per-event model.
        fu_pools: List[Optional[List[int]]] = [None] * 12
        for op_class, code in _CLASS_CODE.items():
            if code in (_BRANCH, _JUMP, _CALL, _RET, _NOP):
                continue
            n_units = mdesc.units(op_class)
            if n_units:
                fu_pools[code] = [0] * n_units
        regs_ready = [0] * 64
        ruu: deque = deque()
        ruu_append = ruu.append
        ruu_popleft = ruu.popleft
        store_buffer: List[Tuple[int, int]] = []  # (drain_time, block)

        fetch_cycle = 0
        slots = 0
        cur_block = -1
        redirect_at = 0
        last_commit = 0
        last_commit_cycle = -1
        commits_this_cycle = 0

        n_mispredicts = 0
        n_icache_stall_cycles = 0
        n_ruu_stalls = 0
        measure_from = start if measure_from is None else measure_from
        measure_to = end if measure_to is None else measure_to
        warm_boundary_commit = 0
        end_boundary_commit: Optional[int] = None
        for i in range(start, end):
            if i == measure_from:
                warm_boundary_commit = last_commit
            if i == measure_to:
                end_boundary_commit = last_commit
            code = cls_pos[i]

            # ---------------- fetch ----------------
            if redirect_at > fetch_cycle:
                fetch_cycle = redirect_at
                slots = 0
                cur_block = -1
            block = blocks[i]
            if block != cur_block:
                # Inline inst_latency(byte_addr, fetch_cycle).
                si = block % i_nsets
                tag = block // i_nsets
                ways = i_sets[si]
                if ways and ways[-1] == tag:
                    i_hits += 1
                    ilat = icache_lat
                else:
                    try:
                        ways.remove(tag)
                        ways.append(tag)
                        i_hits += 1
                        ilat = icache_lat
                    except ValueError:
                        i_miss += 1
                        ways.append(tag)
                        if len(ways) > i_assoc:
                            del ways[0]
                        ilat = icache_lat + l2_lat
                        si2 = block % l_nsets
                        tag2 = block // l_nsets
                        ways2 = l_sets[si2]
                        if ways2 and ways2[-1] == tag2:
                            l_hits += 1
                        else:
                            try:
                                ways2.remove(tag2)
                                ways2.append(tag2)
                                l_hits += 1
                            except ValueError:
                                l_miss += 1
                                ways2.append(tag2)
                                if len(ways2) > l_assoc:
                                    del ways2[0]
                                req = fetch_cycle + ilat
                                bstart = req if req > bus_free else bus_free
                                bus_free = bstart + btc
                                mem_acc += 1
                                ilat += (bstart - req) + mem_lat
                if ilat > icache_lat:
                    fetch_cycle += ilat - icache_lat
                    n_icache_stall_cycles += ilat - icache_lat
                    slots = 0
                cur_block = block
            if slots >= width:
                fetch_cycle += 1
                slots = 0
            fetch_time = fetch_cycle
            slots += 1

            # ---------------- dispatch (RUU) ----------------
            disp = fetch_time + FRONT_DEPTH
            if len(ruu) >= ruu_size:
                oldest = ruu_popleft()
                if oldest > disp:
                    disp = oldest
                    n_ruu_stalls += 1

            # ---------------- issue ----------------
            ready = disp
            for r in srcs_pos[i]:
                t = regs_ready[r]
                if t > ready:
                    ready = t
            issue = ready
            pool = fu_pools[code]
            if pool is not None:
                best = 0
                best_t = pool[0]
                for k in range(1, len(pool)):
                    if pool[k] < best_t:
                        best_t = pool[k]
                        best = k
                if best_t > issue:
                    issue = best_t
                pool[best] = issue + 1

            # ---------------- execute / complete ----------------
            if code == _LOAD:
                ea = eas[i]
                eb = ea // block_size
                fwd = False
                for drain, sblock in store_buffer:
                    if sblock == eb and drain > issue:
                        fwd = True
                        break
                # Inline dl1/ul2 access (same tag updates whether the
                # store buffer forwards or the hierarchy serves it).
                si = eb % d_nsets
                tag = eb // d_nsets
                ways = d_sets[si]
                if ways and ways[-1] == tag:
                    d_hits += 1
                    dlat = dcache_lat
                    l2_needed = False
                else:
                    try:
                        ways.remove(tag)
                        ways.append(tag)
                        d_hits += 1
                        dlat = dcache_lat
                        l2_needed = False
                    except ValueError:
                        d_miss += 1
                        ways.append(tag)
                        if len(ways) > d_assoc:
                            del ways[0]
                        dlat = dcache_lat + l2_lat
                        l2_needed = True
                if l2_needed:
                    si2 = eb % l_nsets
                    tag2 = eb // l_nsets
                    ways2 = l_sets[si2]
                    if ways2 and ways2[-1] == tag2:
                        l_hits += 1
                    else:
                        try:
                            ways2.remove(tag2)
                            ways2.append(tag2)
                            l_hits += 1
                        except ValueError:
                            l_miss += 1
                            ways2.append(tag2)
                            if len(ways2) > l_assoc:
                                del ways2[0]
                            if not fwd:
                                req = issue + dlat
                                bstart = req if req > bus_free else bus_free
                                bus_free = bstart + btc
                                mem_acc += 1
                                dlat += (bstart - req) + mem_lat
                complete = issue + 1 if fwd else issue + dlat
            elif code == _STORE:
                ea = eas[i]
                if store_buffer:
                    store_buffer = [sb for sb in store_buffer if sb[0] > issue]
                    if len(store_buffer) >= sbuf_size:
                        earliest = min(sb[0] for sb in store_buffer)
                        if earliest > issue:
                            issue = earliest
                        store_buffer = [
                            sb for sb in store_buffer if sb[0] > issue
                        ]
                eb = ea // block_size
                si = eb % d_nsets
                tag = eb // d_nsets
                ways = d_sets[si]
                if ways and ways[-1] == tag:
                    d_hits += 1
                    dlat = dcache_lat
                else:
                    try:
                        ways.remove(tag)
                        ways.append(tag)
                        d_hits += 1
                        dlat = dcache_lat
                    except ValueError:
                        d_miss += 1
                        ways.append(tag)
                        if len(ways) > d_assoc:
                            del ways[0]
                        dlat = dcache_lat + l2_lat
                        si2 = eb % l_nsets
                        tag2 = eb // l_nsets
                        ways2 = l_sets[si2]
                        if ways2 and ways2[-1] == tag2:
                            l_hits += 1
                        else:
                            try:
                                ways2.remove(tag2)
                                ways2.append(tag2)
                                l_hits += 1
                            except ValueError:
                                l_miss += 1
                                ways2.append(tag2)
                                if len(ways2) > l_assoc:
                                    del ways2[0]
                                req = issue + dlat
                                bstart = req if req > bus_free else bus_free
                                bus_free = bstart + btc
                                mem_acc += 1
                                dlat += (bstart - req) + mem_lat
                store_buffer.append((issue + dlat, eb))
                complete = issue + 1
            elif code == _PF:
                # Inline hierarchy.prefetch(ea, issue).
                ea = eas[i]
                eb = ea // block_size
                si = eb % d_nsets
                tag = eb // d_nsets
                ways = d_sets[si]
                pf_l1_hit = False
                if ways and ways[-1] == tag:
                    d_hits += 1
                    pf_l1_hit = True
                else:
                    try:
                        ways.remove(tag)
                        ways.append(tag)
                        d_hits += 1
                        pf_l1_hit = True
                    except ValueError:
                        d_miss += 1
                        ways.append(tag)
                        if len(ways) > d_assoc:
                            del ways[0]
                if not pf_l1_hit:
                    si2 = eb % l_nsets
                    tag2 = eb // l_nsets
                    ways2 = l_sets[si2]
                    if ways2 and ways2[-1] == tag2:
                        l_hits += 1
                    else:
                        try:
                            ways2.remove(tag2)
                            ways2.append(tag2)
                            l_hits += 1
                        except ValueError:
                            l_miss += 1
                            ways2.append(tag2)
                            if len(ways2) > l_assoc:
                                del ways2[0]
                            req = issue + l2_lat
                            bstart = req if req > bus_free else bus_free
                            bus_free = bstart + btc
                            mem_acc += 1
                complete = issue + 1
            else:
                complete = issue + lat_pos[i]

            d = dst_pos[i]
            if d >= 0:
                regs_ready[d] = complete

            # ---------------- control flow ----------------
            if code == _BRANCH:
                pc = pcs[i]
                taken = taken_pos[i]
                # Inline bpred.predict_and_update(pc, taken).
                pcm = pc & bp_mask
                gsh = (pc ^ history) & bp_mask
                if cho_tab[pcm] >= 2:
                    pred = bim_tab[pcm] >= 2
                else:
                    pred = gsh_tab[gsh] >= 2
                bp_lookups += 1
                if pred != taken:
                    bp_wrong += 1
                bim_p = bim_tab[pcm] >= 2
                gsh_p = gsh_tab[gsh] >= 2
                if bim_p != gsh_p:
                    c = cho_tab[pcm]
                    if bim_p == taken:
                        cho_tab[pcm] = c + 1 if c < 3 else 3
                    else:
                        cho_tab[pcm] = c - 1 if c > 0 else 0
                b = bim_tab[pcm]
                g = gsh_tab[gsh]
                if taken:
                    bim_tab[pcm] = b + 1 if b < 3 else 3
                    gsh_tab[gsh] = g + 1 if g < 3 else 3
                    history = ((history << 1) | 1) & h_mask
                else:
                    bim_tab[pcm] = b - 1 if b > 0 else 0
                    gsh_tab[gsh] = g - 1 if g > 0 else 0
                    history = (history << 1) & h_mask
                if taken:
                    next_pc = next_pos[i]
                    bi = pc & btb_mask
                    pred_target = (
                        btb_targets[bi] if btb_tags[bi] == pc else None
                    )
                    btb_tags[bi] = pc
                    btb_targets[bi] = next_pc
                    mispredict = (not pred) or pred_target != next_pc
                else:
                    mispredict = pred
                if mispredict:
                    t = complete + penalty
                    if t > redirect_at:
                        redirect_at = t
                    n_mispredicts += 1
                elif taken:
                    fetch_cycle = fetch_time + 1
                    slots = 0
                    cur_block = -1
            elif code == _JUMP:
                fetch_cycle = fetch_time + 1
                slots = 0
                cur_block = -1
            elif code == _CALL:
                ras_stack.append(pcs[i] + 1)
                if len(ras_stack) > ras_depth:
                    del ras_stack[0]
                fetch_cycle = fetch_time + 1
                slots = 0
                cur_block = -1
            elif code == _RET:
                pred_pc = ras_stack.pop() if ras_stack else None
                if pred_pc != next_pos[i]:
                    t = complete + penalty
                    if t > redirect_at:
                        redirect_at = t
                    n_mispredicts += 1
                else:
                    fetch_cycle = fetch_time + 1
                    slots = 0
                    cur_block = -1

            # ---------------- commit ----------------
            commit = complete if complete > last_commit else last_commit
            if commit == last_commit_cycle:
                if commits_this_cycle >= width:
                    commit += 1
                    commits_this_cycle = 1
                else:
                    commits_this_cycle += 1
            else:
                commits_this_cycle = 1
            last_commit_cycle = commit
            last_commit = commit
            ruu_append(commit)

        # Flush inline state and statistics back to the model objects.
        il1.hits += i_hits
        il1.misses += i_miss
        dl1.hits += d_hits
        dl1.misses += d_miss
        ul2.hits += l_hits
        ul2.misses += l_miss
        hierarchy.bus_free = bus_free
        hierarchy.memory_accesses += mem_acc
        bpred._history = history
        bpred.lookups += bp_lookups
        bpred.mispredictions += bp_wrong

        if end_boundary_commit is None:
            end_boundary_commit = last_commit
        _INSTRUCTIONS.inc(end - start)
        if n_mispredicts:
            _MISPREDICTS.inc(n_mispredicts)
        if n_icache_stall_cycles:
            _ICACHE_STALLS.inc(n_icache_stall_cycles)
        if n_ruu_stalls:
            _RUU_STALLS.inc(n_ruu_stalls)
        return TimingResult(
            cycles=end_boundary_commit - warm_boundary_commit,
            instructions=measure_to - measure_from,
        )

    def simulate_trace(
        self, trace: Sequence[Tuple[int, int]]
    ) -> TimingResult:
        """Detailed timing for the whole trace (the reference simulator)."""
        return self.simulate_window(trace, 0, len(trace))

    # ------------------------------------------------------------------
    def warm(self, trace: Sequence[Tuple[int, int]], start: int, end: int) -> None:
        """Functional warming only: update caches and predictors.

        Used by SMARTS between detailed windows; no timing state changes.
        Only *event* positions are visited: instruction-block changes,
        loads/stores/prefetches, and control transfers.  Straight-line
        instructions inside an already-tracked block touch no warming
        state, so skipping them is exact, not an approximation.
        """
        if start >= end:
            return
        cfg = self.config
        hierarchy = self.hierarchy
        bpred = self.bpred
        btb = self.btb
        T = self._tables(trace)
        block_size = cfg.block_size
        l2_lat = cfg.l2_latency
        btc = cfg.bus_transfer_cycles

        eas = T.eas
        pcs = T.pcs
        taken_pos = T.taken
        next_pos = T.next_pc
        byte_pos = T.byte_addr

        il1 = hierarchy.il1
        dl1 = hierarchy.dl1
        ul2 = hierarchy.ul2
        i_sets = il1._sets
        i_nsets = il1.n_sets
        i_assoc = il1.assoc
        d_sets = dl1._sets
        d_nsets = dl1.n_sets
        d_assoc = dl1.assoc
        l_sets = ul2._sets
        l_nsets = ul2.n_sets
        l_assoc = ul2.assoc
        i_hits = i_miss = d_hits = d_miss = l_hits = l_miss = 0
        bus_free = hierarchy.bus_free
        mem_acc = 0

        bim_tab = bpred._bimodal
        gsh_tab = bpred._gshare
        cho_tab = bpred._chooser
        bp_mask = bpred._mask
        history = bpred._history
        h_mask = bpred._history_mask
        btb_tags = btb._tags
        btb_targets = btb._targets
        btb_mask = btb._mask
        ras_stack = self.ras._stack
        ras_depth = self.ras.depth

        from bisect import bisect_left

        ev_pos, ev_kind = T.events_for(block_size)
        lo = bisect_left(ev_pos, start)
        hi = bisect_left(ev_pos, end)
        # The warm loop tracks the current instruction block per call
        # (reset at the window start), so the first instruction always
        # warms IL1 even mid-block, unless its block-change event is
        # about to do exactly that.
        if lo >= hi or ev_pos[lo] != start or ev_kind[lo] != EV_INST:
            blk = byte_pos[start] // block_size
            si = blk % i_nsets
            tag = blk // i_nsets
            ways = i_sets[si]
            if ways and ways[-1] == tag:
                i_hits += 1
            else:
                try:
                    ways.remove(tag)
                    ways.append(tag)
                    i_hits += 1
                except ValueError:
                    i_miss += 1
                    ways.append(tag)
                    if len(ways) > i_assoc:
                        del ways[0]
                    si2 = blk % l_nsets
                    tag2 = blk // l_nsets
                    ways2 = l_sets[si2]
                    if ways2 and ways2[-1] == tag2:
                        l_hits += 1
                    else:
                        try:
                            ways2.remove(tag2)
                            ways2.append(tag2)
                            l_hits += 1
                        except ValueError:
                            l_miss += 1
                            ways2.append(tag2)
                            if len(ways2) > l_assoc:
                                del ways2[0]

        for idx in range(lo, hi):
            kind = ev_kind[idx]
            i = ev_pos[idx]
            if kind == EV_INST:
                blk = byte_pos[i] // block_size
                si = blk % i_nsets
                tag = blk // i_nsets
                ways = i_sets[si]
                if ways and ways[-1] == tag:
                    i_hits += 1
                    continue
                try:
                    ways.remove(tag)
                    ways.append(tag)
                    i_hits += 1
                except ValueError:
                    i_miss += 1
                    ways.append(tag)
                    if len(ways) > i_assoc:
                        del ways[0]
                    si2 = blk % l_nsets
                    tag2 = blk // l_nsets
                    ways2 = l_sets[si2]
                    if ways2 and ways2[-1] == tag2:
                        l_hits += 1
                    else:
                        try:
                            ways2.remove(tag2)
                            ways2.append(tag2)
                            l_hits += 1
                        except ValueError:
                            l_miss += 1
                            ways2.append(tag2)
                            if len(ways2) > l_assoc:
                                del ways2[0]
            elif kind == EV_DATA:
                blk = eas[i] // block_size
                si = blk % d_nsets
                tag = blk // d_nsets
                ways = d_sets[si]
                if ways and ways[-1] == tag:
                    d_hits += 1
                    continue
                try:
                    ways.remove(tag)
                    ways.append(tag)
                    d_hits += 1
                except ValueError:
                    d_miss += 1
                    ways.append(tag)
                    if len(ways) > d_assoc:
                        del ways[0]
                    si2 = blk % l_nsets
                    tag2 = blk // l_nsets
                    ways2 = l_sets[si2]
                    if ways2 and ways2[-1] == tag2:
                        l_hits += 1
                    else:
                        try:
                            ways2.remove(tag2)
                            ways2.append(tag2)
                            l_hits += 1
                        except ValueError:
                            l_miss += 1
                            ways2.append(tag2)
                            if len(ways2) > l_assoc:
                                del ways2[0]
            elif kind == EV_BRANCH:
                pc = pcs[i]
                taken = taken_pos[i]
                # Inline bpred.update(pc, taken) -- warming trains the
                # tables but records no prediction statistics.
                pcm = pc & bp_mask
                gsh = (pc ^ history) & bp_mask
                bim_p = bim_tab[pcm] >= 2
                gsh_p = gsh_tab[gsh] >= 2
                if bim_p != gsh_p:
                    c = cho_tab[pcm]
                    if bim_p == taken:
                        cho_tab[pcm] = c + 1 if c < 3 else 3
                    else:
                        cho_tab[pcm] = c - 1 if c > 0 else 0
                b = bim_tab[pcm]
                g = gsh_tab[gsh]
                if taken:
                    bim_tab[pcm] = b + 1 if b < 3 else 3
                    gsh_tab[gsh] = g + 1 if g < 3 else 3
                    history = ((history << 1) | 1) & h_mask
                    bi = pc & btb_mask
                    btb_tags[bi] = pc
                    btb_targets[bi] = next_pos[i]
                else:
                    bim_tab[pcm] = b - 1 if b > 0 else 0
                    gsh_tab[gsh] = g - 1 if g > 0 else 0
                    history = (history << 1) & h_mask
            elif kind == EV_CALL:
                ras_stack.append(pcs[i] + 1)
                if len(ras_stack) > ras_depth:
                    del ras_stack[0]
            elif kind == EV_RET:
                if ras_stack:
                    ras_stack.pop()
            elif kind == EV_PF:
                # Inline hierarchy.prefetch(ea) at now=0: fills DL1/L2
                # and occupies the bus on a memory miss.
                blk = eas[i] // block_size
                si = blk % d_nsets
                tag = blk // d_nsets
                ways = d_sets[si]
                if ways and ways[-1] == tag:
                    d_hits += 1
                    continue
                try:
                    ways.remove(tag)
                    ways.append(tag)
                    d_hits += 1
                except ValueError:
                    d_miss += 1
                    ways.append(tag)
                    if len(ways) > d_assoc:
                        del ways[0]
                    si2 = blk % l_nsets
                    tag2 = blk // l_nsets
                    ways2 = l_sets[si2]
                    if ways2 and ways2[-1] == tag2:
                        l_hits += 1
                    else:
                        try:
                            ways2.remove(tag2)
                            ways2.append(tag2)
                            l_hits += 1
                        except ValueError:
                            l_miss += 1
                            ways2.append(tag2)
                            if len(ways2) > l_assoc:
                                del ways2[0]
                            req = l2_lat
                            bstart = req if req > bus_free else bus_free
                            bus_free = bstart + btc
                            mem_acc += 1
            # EV_JUMP: no warming state (only replay_window needs it).

        il1.hits += i_hits
        il1.misses += i_miss
        dl1.hits += d_hits
        dl1.misses += d_miss
        ul2.hits += l_hits
        ul2.misses += l_miss
        hierarchy.bus_free = bus_free
        hierarchy.memory_accesses += mem_acc
        bpred._history = history

    # ------------------------------------------------------------------
    def replay_window(
        self, trace: Sequence[Tuple[int, int]], start: int, end: int
    ) -> None:
        """Replicate a detailed window's state without the timing model.

        Used by the SMARTS memo on a unit hit: the unit's cycles come
        from the memo, but the caches, predictor, BTB and RAS must end
        up exactly as the detailed simulation would have left them so
        every subsequent unit stays bit-identical.  This works because
        the detailed pipeline's cache/predictor *update sequence* is
        timing-independent:

        * data-side tag updates are the same whether a load is forwarded
          from the store buffer (``warm_data``) or served by the
          hierarchy (``data_latency``) -- DL1 access, then UL2 on miss;
        * the front end re-accesses IL1 exactly after every *taken*
          control transfer and after every misprediction, and a pending
          redirect always lands on the immediately following instruction
          (the resolve cycle exceeds the next fetch cycle by
          construction: ``complete + penalty >= fetch + FRONT_DEPTH + 2``
          while the next fetch is at most ``fetch + 1``);
        * mispredictions are pure predictor-state functions of the
          branch history, not of the cycle clock.

        Statistics (cache hits/misses, predictor lookups/mispredicts)
        match the detailed window too; the only divergence is
        ``memory_accesses`` on the rare store-forwarded load that misses
        both caches, where the detailed path skips the bus transaction.
        """
        cfg = self.config
        hierarchy = self.hierarchy
        T = self._tables(trace)
        block_size = cfg.block_size

        eas = T.eas
        pcs = T.pcs
        taken_pos = T.taken
        next_pos = T.next_pc
        blocks = T.blocks_for(block_size)

        il1 = hierarchy.il1
        dl1 = hierarchy.dl1
        ul2 = hierarchy.ul2
        i_sets = il1._sets
        i_nsets = il1.n_sets
        i_assoc = il1.assoc
        d_sets = dl1._sets
        d_nsets = dl1.n_sets
        d_assoc = dl1.assoc
        l_sets = ul2._sets
        l_nsets = ul2.n_sets
        l_assoc = ul2.assoc
        i_hits = i_miss = d_hits = d_miss = l_hits = l_miss = 0
        hierarchy.reset_bus()
        mem_acc = 0

        bpred = self.bpred
        bim_tab = bpred._bimodal
        gsh_tab = bpred._gshare
        cho_tab = bpred._chooser
        bp_mask = bpred._mask
        history = bpred._history
        h_mask = bpred._history_mask
        bp_lookups = bp_wrong = 0
        btb_tags = self.btb._tags
        btb_targets = self.btb._targets
        btb_mask = self.btb._mask
        ras_stack = self.ras._stack
        ras_depth = self.ras.depth

        from bisect import bisect_left

        ev_pos, ev_kind = T.events_for(block_size)
        lo = bisect_left(ev_pos, start)
        hi = bisect_left(ev_pos, end)
        # `forced` is the next position whose instruction fetch must
        # access IL1 regardless of block-change events: the window start
        # (cold block tracker) and the instruction after every taken
        # transfer or misprediction (fetch redirect).
        forced = start
        idx = lo
        while idx <= hi:
            if idx < hi:
                i = ev_pos[idx]
                kind = ev_kind[idx]
            else:
                i = end
                kind = -1
            if 0 <= forced <= i and forced < end:
                if forced < i or kind != EV_INST:
                    blk = blocks[forced]
                    si = blk % i_nsets
                    tag = blk // i_nsets
                    ways = i_sets[si]
                    if ways and ways[-1] == tag:
                        i_hits += 1
                    else:
                        try:
                            ways.remove(tag)
                            ways.append(tag)
                            i_hits += 1
                        except ValueError:
                            i_miss += 1
                            ways.append(tag)
                            if len(ways) > i_assoc:
                                del ways[0]
                            si2 = blk % l_nsets
                            tag2 = blk // l_nsets
                            ways2 = l_sets[si2]
                            if ways2 and ways2[-1] == tag2:
                                l_hits += 1
                            else:
                                try:
                                    ways2.remove(tag2)
                                    ways2.append(tag2)
                                    l_hits += 1
                                except ValueError:
                                    l_miss += 1
                                    ways2.append(tag2)
                                    if len(ways2) > l_assoc:
                                        del ways2[0]
                                    mem_acc += 1
                forced = -1
            if idx >= hi:
                break
            idx += 1
            if kind == EV_INST:
                blk = blocks[i]
                si = blk % i_nsets
                tag = blk // i_nsets
                ways = i_sets[si]
                if ways and ways[-1] == tag:
                    i_hits += 1
                    continue
                try:
                    ways.remove(tag)
                    ways.append(tag)
                    i_hits += 1
                except ValueError:
                    i_miss += 1
                    ways.append(tag)
                    if len(ways) > i_assoc:
                        del ways[0]
                    si2 = blk % l_nsets
                    tag2 = blk // l_nsets
                    ways2 = l_sets[si2]
                    if ways2 and ways2[-1] == tag2:
                        l_hits += 1
                    else:
                        try:
                            ways2.remove(tag2)
                            ways2.append(tag2)
                            l_hits += 1
                        except ValueError:
                            l_miss += 1
                            ways2.append(tag2)
                            if len(ways2) > l_assoc:
                                del ways2[0]
                            mem_acc += 1
            elif kind == EV_DATA or kind == EV_PF:
                blk = eas[i] // block_size
                si = blk % d_nsets
                tag = blk // d_nsets
                ways = d_sets[si]
                if ways and ways[-1] == tag:
                    d_hits += 1
                    continue
                try:
                    ways.remove(tag)
                    ways.append(tag)
                    d_hits += 1
                except ValueError:
                    d_miss += 1
                    ways.append(tag)
                    if len(ways) > d_assoc:
                        del ways[0]
                    si2 = blk % l_nsets
                    tag2 = blk // l_nsets
                    ways2 = l_sets[si2]
                    if ways2 and ways2[-1] == tag2:
                        l_hits += 1
                    else:
                        try:
                            ways2.remove(tag2)
                            ways2.append(tag2)
                            l_hits += 1
                        except ValueError:
                            l_miss += 1
                            ways2.append(tag2)
                            if len(ways2) > l_assoc:
                                del ways2[0]
                            mem_acc += 1
            elif kind == EV_BRANCH:
                pc = pcs[i]
                taken = taken_pos[i]
                pcm = pc & bp_mask
                gsh = (pc ^ history) & bp_mask
                if cho_tab[pcm] >= 2:
                    pred = bim_tab[pcm] >= 2
                else:
                    pred = gsh_tab[gsh] >= 2
                bp_lookups += 1
                if pred != taken:
                    bp_wrong += 1
                bim_p = bim_tab[pcm] >= 2
                gsh_p = gsh_tab[gsh] >= 2
                if bim_p != gsh_p:
                    c = cho_tab[pcm]
                    if bim_p == taken:
                        cho_tab[pcm] = c + 1 if c < 3 else 3
                    else:
                        cho_tab[pcm] = c - 1 if c > 0 else 0
                b = bim_tab[pcm]
                g = gsh_tab[gsh]
                if taken:
                    bim_tab[pcm] = b + 1 if b < 3 else 3
                    gsh_tab[gsh] = g + 1 if g < 3 else 3
                    history = ((history << 1) | 1) & h_mask
                    next_pc = next_pos[i]
                    bi = pc & btb_mask
                    pred_target = (
                        btb_targets[bi] if btb_tags[bi] == pc else None
                    )
                    btb_tags[bi] = pc
                    btb_targets[bi] = next_pc
                    forced = i + 1  # taken or mispredicted: fetch redirects
                else:
                    bim_tab[pcm] = b - 1 if b > 0 else 0
                    gsh_tab[gsh] = g - 1 if g > 0 else 0
                    history = (history << 1) & h_mask
                    if pred:
                        forced = i + 1  # predicted taken, was not: redirect
            elif kind == EV_JUMP:
                forced = i + 1
            elif kind == EV_CALL:
                ras_stack.append(pcs[i] + 1)
                if len(ras_stack) > ras_depth:
                    del ras_stack[0]
                forced = i + 1
            elif kind == EV_RET:
                ras_stack.pop() if ras_stack else None
                forced = i + 1

        il1.hits += i_hits
        il1.misses += i_miss
        dl1.hits += d_hits
        dl1.misses += d_miss
        ul2.hits += l_hits
        ul2.misses += l_miss
        hierarchy.memory_accesses += mem_acc
        bpred._history = history
        bpred.lookups += bp_lookups
        bpred.mispredictions += bp_wrong

"""Trace-driven out-of-order superscalar timing model.

A SimpleScalar-sim-outorder-style model driven by the functional trace:

* **fetch** -- ``issue_width`` sequential instructions per cycle, broken
  by taken control transfers; I-cache misses stall the front end; branch
  mispredictions (direction, BTB target, or RAS) redirect fetch when the
  branch resolves, plus a fixed penalty;
* **dispatch** -- a fixed front-end depth after fetch, stalling when the
  ``ruu_size``-entry register update unit is full (an instruction's slot
  frees when it commits);
* **issue** -- an instruction issues when its sources are ready and a
  functional unit of its class is free (FU counts from the machine
  description, i.e. from the issue width); loads check the store buffer
  for same-block forwarding, stores wait for a free store-buffer entry
  and drain through the cache hierarchy in the background;
* **commit** -- in order, ``issue_width`` per cycle.

Execution time is the commit cycle of the last instruction.  The model
keeps real cache tag and predictor state, which may be shared with a
SMARTS warming pass (:mod:`repro.sim.smarts`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.codegen.isa import OpClass, RA, ZERO
from repro.codegen.linker import Executable, INSTR_BYTES, TEXT_BASE
from repro.codegen.machine_desc import MachineDescription
from repro.obs import counter
from repro.sim.bpred import BranchTargetBuffer, CombinedPredictor, ReturnAddressStack
from repro.sim.cache import CacheHierarchy
from repro.sim.config import MicroarchConfig

# Hot-loop telemetry.  Accumulated in local ints inside simulate_window
# and flushed once per window, so the per-instruction path never touches
# a lock; totals explain *where* simulated cycles go (ROADMAP items 1-2).
_INSTRUCTIONS = counter("sim.ooo.instructions")
_MISPREDICTS = counter("sim.ooo.branch_mispredicts")
_ICACHE_STALLS = counter("sim.ooo.icache_stall_cycles")
_RUU_STALLS = counter("sim.ooo.ruu_stalls")

# Class codes for the static tables (indexable, faster than Enum).
_IALU, _IMULT, _FPALU, _FPMULT, _LOAD, _STORE, _BRANCH, _JUMP, _CALL, _RET, _PF, _NOP = range(12)

_CLASS_CODE = {
    OpClass.IALU: _IALU,
    OpClass.IMULT: _IMULT,
    OpClass.FPALU: _FPALU,
    OpClass.FPMULT: _FPMULT,
    OpClass.LOAD: _LOAD,
    OpClass.STORE: _STORE,
    OpClass.BRANCH: _BRANCH,
    OpClass.JUMP: _JUMP,
    OpClass.CALL: _CALL,
    OpClass.RET: _RET,
    OpClass.PREFETCH: _PF,
    OpClass.NOP: _NOP,
}

#: Front-end pipeline depth between fetch and dispatch.
FRONT_DEPTH = 2


@dataclass
class TimingResult:
    """Outcome of a detailed timing simulation."""

    cycles: int
    instructions: int

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class OooTimingModel:
    """Reusable timing state for one executable on one configuration."""

    def __init__(self, exe: Executable, config: MicroarchConfig):
        self.exe = exe
        self.config = config
        self.mdesc = MachineDescription.for_issue_width(config.issue_width)
        self.hierarchy = CacheHierarchy(config)
        self.bpred = CombinedPredictor(config.bpred_size)
        self.btb = BranchTargetBuffer(config.btb_entries)
        self.ras = ReturnAddressStack()
        self._build_static_tables()

    def _build_static_tables(self) -> None:
        lat = {
            code: self.mdesc.latency(op_class)
            for op_class, code in _CLASS_CODE.items()
        }
        self.cls: List[int] = []
        self.lat: List[int] = []
        self.dst: List[int] = []
        self.srcs: List[Tuple[int, ...]] = []
        for instr in self.exe.instrs:
            code = _CLASS_CODE[instr.op_class]
            self.cls.append(code)
            self.lat.append(lat[code])
            if code == _CALL:
                self.dst.append(RA)
            elif instr.dst is not None:
                self.dst.append(instr.dst)
            else:
                self.dst.append(-1)
            self.srcs.append(
                tuple(r for r in instr.srcs if r != ZERO)
            )

    # ------------------------------------------------------------------
    def simulate_window(
        self,
        trace: Sequence[Tuple[int, int]],
        start: int,
        end: int,
        measure_from: Optional[int] = None,
        measure_to: Optional[int] = None,
    ) -> TimingResult:
        """Detailed timing for trace[start:end].

        Pipeline state (register readiness, FU occupancy, RUU, store
        buffer) starts cold at relative cycle 0; cache and predictor
        state persists across calls.  When ``measure_from`` /
        ``measure_to`` are given, only the commit-time interval between
        those trace positions is reported: instructions before
        ``measure_from`` are *detailed warming* (removing cold-pipeline
        bias) and instructions after ``measure_to`` are *cooldown*
        (keeping the pipe full at the window's end so its drain is not
        billed to the window) -- SMARTS-style window bracketing.
        """
        cfg = self.config
        mdesc = self.mdesc
        hierarchy = self.hierarchy
        bpred = self.bpred
        btb = self.btb
        ras = self.ras
        cls_tab = self.cls
        lat_tab = self.lat
        dst_tab = self.dst
        srcs_tab = self.srcs
        block_size = cfg.block_size
        width = cfg.issue_width
        ruu_size = cfg.ruu_size
        sbuf_size = cfg.store_buffer_size
        penalty = cfg.mispredict_penalty
        icache_lat = cfg.icache_latency

        hierarchy.reset_bus()
        fu_free: Dict[int, List[int]] = {
            _IALU: [0] * mdesc.units(OpClass.IALU),
            _IMULT: [0] * mdesc.units(OpClass.IMULT),
            _FPALU: [0] * mdesc.units(OpClass.FPALU),
            _FPMULT: [0] * mdesc.units(OpClass.FPMULT),
            _LOAD: [0] * mdesc.units(OpClass.LOAD),
            _STORE: [0] * mdesc.units(OpClass.STORE),
            _PF: [0] * mdesc.units(OpClass.PREFETCH),
        }
        regs_ready = [0] * 64
        ruu: deque = deque()
        store_buffer: List[Tuple[int, int]] = []  # (drain_time, block)

        fetch_cycle = 0
        slots = 0
        cur_block = -1
        redirect_at = 0
        last_commit = 0
        last_commit_cycle = -1
        commits_this_cycle = 0

        n = len(trace)
        n_mispredicts = 0
        n_icache_stall_cycles = 0
        n_ruu_stalls = 0
        measure_from = start if measure_from is None else measure_from
        measure_to = end if measure_to is None else measure_to
        warm_boundary_commit = 0
        end_boundary_commit: Optional[int] = None
        for i in range(start, end):
            if i == measure_from:
                warm_boundary_commit = last_commit
            if i == measure_to:
                end_boundary_commit = last_commit
            pc, ea = trace[i]
            code = cls_tab[pc]

            # ---------------- fetch ----------------
            if redirect_at > fetch_cycle:
                fetch_cycle = redirect_at
                slots = 0
                cur_block = -1
            byte_addr = TEXT_BASE + pc * INSTR_BYTES
            block = byte_addr // block_size
            if block != cur_block:
                ilat = hierarchy.inst_latency(byte_addr, fetch_cycle)
                if ilat > icache_lat:
                    fetch_cycle += ilat - icache_lat
                    n_icache_stall_cycles += ilat - icache_lat
                    slots = 0
                cur_block = block
            if slots >= width:
                fetch_cycle += 1
                slots = 0
            fetch_time = fetch_cycle
            slots += 1

            # ---------------- dispatch (RUU) ----------------
            disp = fetch_time + FRONT_DEPTH
            if len(ruu) >= ruu_size:
                oldest = ruu.popleft()
                if oldest > disp:
                    disp = oldest
                    n_ruu_stalls += 1

            # ---------------- issue ----------------
            ready = disp
            for r in srcs_tab[pc]:
                t = regs_ready[r]
                if t > ready:
                    ready = t
            issue = ready
            pool = fu_free.get(code)
            if pool is not None:
                best = 0
                best_t = pool[0]
                for k in range(1, len(pool)):
                    if pool[k] < best_t:
                        best_t = pool[k]
                        best = k
                if best_t > issue:
                    issue = best_t
                pool[best] = issue + 1

            # ---------------- execute / complete ----------------
            if code == _LOAD:
                fwd = False
                eb = ea // block_size
                for drain, sblock in store_buffer:
                    if sblock == eb and drain > issue:
                        fwd = True
                        break
                if fwd:
                    complete = issue + 1
                    hierarchy.warm_data(ea)
                else:
                    complete = issue + hierarchy.data_latency(ea, issue)
            elif code == _STORE:
                if store_buffer:
                    store_buffer = [
                        sb for sb in store_buffer if sb[0] > issue
                    ]
                    if len(store_buffer) >= sbuf_size:
                        earliest = min(sb[0] for sb in store_buffer)
                        if earliest > issue:
                            issue = earliest
                        store_buffer = [
                            sb for sb in store_buffer if sb[0] > issue
                        ]
                drain = issue + hierarchy.data_latency(ea, issue)
                store_buffer.append((drain, ea // block_size))
                complete = issue + 1
            elif code == _PF:
                hierarchy.prefetch(ea, issue)
                complete = issue + 1
            else:
                complete = issue + lat_tab[pc]

            d = dst_tab[pc]
            if d >= 0:
                regs_ready[d] = complete

            # ---------------- control flow ----------------
            if i + 1 < n:
                next_pc = trace[i + 1][0]
            else:
                next_pc = pc + 1
            taken = next_pc != pc + 1

            if code == _BRANCH:
                pred = bpred.predict_and_update(pc, taken)
                if taken:
                    pred_target = btb.predict(pc)
                    btb.update(pc, next_pc)
                mispredict = pred != taken or (
                    taken and pred and pred_target != next_pc
                )
                if mispredict:
                    redirect_at = max(redirect_at, complete + penalty)
                    n_mispredicts += 1
                elif taken:
                    fetch_cycle = fetch_time + 1
                    slots = 0
                    cur_block = -1
            elif code == _JUMP:
                fetch_cycle = fetch_time + 1
                slots = 0
                cur_block = -1
            elif code == _CALL:
                ras.push(pc + 1)
                fetch_cycle = fetch_time + 1
                slots = 0
                cur_block = -1
            elif code == _RET:
                pred_pc = ras.pop()
                if pred_pc != next_pc:
                    redirect_at = max(redirect_at, complete + penalty)
                    n_mispredicts += 1
                else:
                    fetch_cycle = fetch_time + 1
                    slots = 0
                    cur_block = -1

            # ---------------- commit ----------------
            commit = complete if complete > last_commit else last_commit
            if commit == last_commit_cycle:
                if commits_this_cycle >= width:
                    commit += 1
                    commits_this_cycle = 1
                else:
                    commits_this_cycle += 1
            else:
                commits_this_cycle = 1
            last_commit_cycle = commit
            last_commit = commit
            ruu.append(commit)

        if end_boundary_commit is None:
            end_boundary_commit = last_commit
        _INSTRUCTIONS.inc(end - start)
        if n_mispredicts:
            _MISPREDICTS.inc(n_mispredicts)
        if n_icache_stall_cycles:
            _ICACHE_STALLS.inc(n_icache_stall_cycles)
        if n_ruu_stalls:
            _RUU_STALLS.inc(n_ruu_stalls)
        return TimingResult(
            cycles=end_boundary_commit - warm_boundary_commit,
            instructions=measure_to - measure_from,
        )

    def simulate_trace(
        self, trace: Sequence[Tuple[int, int]]
    ) -> TimingResult:
        """Detailed timing for the whole trace (the reference simulator)."""
        return self.simulate_window(trace, 0, len(trace))

    # ------------------------------------------------------------------
    def warm(self, trace: Sequence[Tuple[int, int]], start: int, end: int) -> None:
        """Functional warming only: update caches and predictors.

        Used by SMARTS between detailed windows; no timing state changes.
        """
        hierarchy = self.hierarchy
        bpred = self.bpred
        btb = self.btb
        ras = self.ras
        cls_tab = self.cls
        block_size = self.config.block_size
        n = len(trace)
        cur_block = -1
        for i in range(start, end):
            pc, ea = trace[i]
            byte_addr = TEXT_BASE + pc * INSTR_BYTES
            block = byte_addr // block_size
            if block != cur_block:
                hierarchy.warm_inst(byte_addr)
                cur_block = block
            code = cls_tab[pc]
            if code == _LOAD or code == _STORE:
                hierarchy.warm_data(ea)
            elif code == _PF:
                hierarchy.prefetch(ea)
            elif code == _BRANCH:
                next_pc = trace[i + 1][0] if i + 1 < n else pc + 1
                taken = next_pc != pc + 1
                bpred.update(pc, taken)
                if taken:
                    btb.update(pc, next_pc)
            elif code == _CALL:
                ras.push(pc + 1)
            elif code == _RET:
                ras.pop()

"""The full compiler driver: IR module + config -> executable.

Mirrors gcc's pass ordering: IR-level optimizations first (inlining,
LICM, GCSE, prefetching, strength reduction, unrolling, block layout),
then the backend (selection, allocation, frame lowering, post-RA
scheduling) and the linker.  The machine description is derived from the
target's issue width, reproducing the paper's "one compiler build per
functional-unit configuration".

Verification is tiered (see :mod:`repro.analysis`): ``off`` does no
checking at all, ``ir`` runs one structural IR verification after the
optimization pipeline (the historical default), and ``full`` adds deep
per-pass IR verification plus machine-code verification after
instruction selection, register allocation, frame lowering, each
scheduling pass (dependence-order preservation) and linking.  The level
comes from the ``verify_level`` argument, the ``REPRO_VERIFY``
environment variable, or the legacy ``verify`` flag, in that order.
"""

from __future__ import annotations

import copy
from typing import Dict, Optional

from repro.analysis.base import VerifyLevel, resolve_verify_level
from repro.analysis.static import remarks
from repro.codegen.frame import lower_frame
from repro.codegen.isel import select_module
from repro.codegen.linker import Executable, link_module
from repro.codegen.machine_desc import MachineDescription
from repro.codegen.regalloc import allocate_registers
from repro.codegen.scheduler import schedule_function
from repro.ir import Module, verify_module
from repro.minic import compile_source
from repro.obs import counter, span
from repro.opt.flags import CompilerConfig
from repro.opt.pipeline import optimize_module

_COMPILATIONS = counter("codegen.compilations")


def _sched_order(mf) -> "list":
    return [tuple(id(i) for i in b.instrs) for b in mf.blocks]


def _emit_sched_remark(mf, before, after) -> None:
    """Report the pre-RA scheduler's effect on one function."""
    moved = sum(
        1
        for (b_ids, a_ids) in zip(before, after)
        for (b_id, a_id) in zip(b_ids, a_ids)
        if b_id != a_id
    )
    if moved:
        remarks.emit(
            "sched",
            "fired",
            mf.name,
            mf.blocks[0].label if mf.blocks else "?",
            f"reordered {moved} instruction slot(s) to hide latency",
            benefit=float(moved),
            moved=moved,
        )
    else:
        remarks.emit(
            "sched",
            "declined",
            mf.name,
            mf.blocks[0].label if mf.blocks else "?",
            "already in dependence order; nothing to overlap",
        )


def compile_module(
    module: Module,
    config: CompilerConfig,
    issue_width: int = 4,
    verify: bool = True,
    verify_level: "VerifyLevel | str | None" = None,
) -> Executable:
    """Optimize and compile an IR module into an executable.

    The input module is deep-copied first: compilation at many design
    points reuses one parsed module.  Each phase (opt pipeline, isel,
    pre/post-RA scheduling, register allocation, frame lowering, link)
    runs under a ``codegen.*`` tracing span; the backend phases are
    independent per function, so they are looped phase-major to give
    each phase a single span.
    """
    level = resolve_verify_level(
        verify_level,
        default=VerifyLevel.IR if verify else VerifyLevel.OFF,
    )
    mc = None
    if level.is_full:
        # Lazy: the analysis layer is opt-in and the default compile
        # path must not import it.
        from repro.analysis import mc_verify as mc

    _COMPILATIONS.inc()
    with span("codegen.compile", issue_width=issue_width) as top:
        module = copy.deepcopy(module)
        optimize_module(
            module, config, verify_level=level if level.is_full else None
        )
        if level.at_least_ir:
            with span("codegen.verify"):
                verify_module(module)

        mdesc = MachineDescription.for_issue_width(issue_width)
        with span("codegen.isel"):
            machine_funcs = select_module(module)
        funcs = list(machine_funcs.values())
        known = set(machine_funcs)
        if mc is not None:
            for mf in funcs:
                mc.check_machine(
                    mc.verify_machine_function(mf, "isel", known), "isel"
                )
        # Table 1 describes -fschedule-insns2 as scheduling "before and
        # after register allocation".  The pre-RA pass interleaves
        # independent work (e.g. renamed unrolled iterations) over
        # virtual registers -- lengthening live ranges and thus raising
        # register pressure; the post-RA pass tidies up around the
        # allocator's spill code.
        if config.schedule_insns2:
            with span("codegen.sched_pre_ra"):
                for mf in funcs:
                    snaps = mc.snapshot_blocks(mf) if mc is not None else None
                    order = _sched_order(mf) if remarks.enabled() else None
                    schedule_function(mf, mdesc)
                    if order is not None:
                        _emit_sched_remark(mf, order, _sched_order(mf))
                    if mc is not None:
                        mc.check_machine(
                            mc.verify_schedule(snaps, mf), "sched_pre_ra"
                        )
        elif remarks.enabled():
            for mf in funcs:
                remarks.emit(
                    "sched",
                    "declined",
                    mf.name,
                    mf.blocks[0].label if mf.blocks else "?",
                    "scheduling disabled (-fno-schedule-insns2)",
                )
        with span("codegen.regalloc"):
            for mf in funcs:
                allocate_registers(mf, config.omit_frame_pointer)
                if mc is not None:
                    mc.check_machine(
                        mc.verify_machine_function(mf, "regalloc", known),
                        "regalloc",
                    )
        with span("codegen.frame"):
            for mf in funcs:
                lower_frame(mf, config.omit_frame_pointer)
                if mc is not None:
                    mc.check_machine(
                        mc.verify_machine_function(mf, "frame", known), "frame"
                    )
        if config.schedule_insns2:
            with span("codegen.sched_post_ra"):
                for mf in funcs:
                    snaps = mc.snapshot_blocks(mf) if mc is not None else None
                    schedule_function(mf, mdesc)
                    if mc is not None:
                        mc.check_machine(
                            mc.verify_schedule(snaps, mf), "sched_post_ra"
                        )
        with span("codegen.link"):
            exe = link_module(module, machine_funcs)
        if mc is not None:
            mc.check_machine(mc.verify_executable(exe), "link")
        top.set_attrs(n_functions=len(funcs), code_size=len(exe.instrs))
    return exe


def compile_program(
    source: str,
    config: Optional[CompilerConfig] = None,
    issue_width: int = 4,
) -> Executable:
    """Convenience: MiniC source text -> executable."""
    module = compile_source(source)
    return compile_module(module, config or CompilerConfig(), issue_width)

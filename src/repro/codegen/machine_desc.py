"""Machine description: functional units and latencies.

The paper ties the functional-unit configuration to the issue width
("Since the number of functional units is usually dependent on the issue
width, we use the issue width parameter to determine the functional unit
configuration") and compiles one gcc per FU configuration.  We do the
same: :func:`MachineDescription.for_issue_width` derives the FU counts,
and the instruction scheduler consumes the same description the timing
simulator uses, so scheduling is consistent with the hardware by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.codegen.isa import OpClass

#: Execution latency (cycles) per functional-unit class; memory-class
#: latencies model address generation only -- the cache hierarchy adds
#: its own latency in the simulator.
DEFAULT_LATENCIES: Dict[OpClass, int] = {
    OpClass.IALU: 1,
    OpClass.IMULT: 3,
    OpClass.FPALU: 2,
    OpClass.FPMULT: 4,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.PREFETCH: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.CALL: 1,
    OpClass.RET: 1,
    OpClass.NOP: 1,
}


@dataclass(frozen=True)
class MachineDescription:
    """Functional-unit counts and latencies for one configuration."""

    issue_width: int
    #: Units per class that can *start* an operation each cycle.
    fu_counts: Dict[OpClass, int] = field(hash=False, default=None)
    latencies: Dict[OpClass, int] = field(hash=False, default=None)

    @classmethod
    def for_issue_width(cls, issue_width: int) -> "MachineDescription":
        """The FU configuration implied by an issue width.

        A 2-wide machine gets 2 integer ALUs, 1 multiplier, 1 FP adder,
        1 FP multiplier and 1 memory port; a 4-wide machine doubles all
        of that (SimpleScalar's default scaling).
        """
        if issue_width < 1:
            raise ValueError("issue width must be positive")
        scale = max(1, issue_width // 2)
        fu_counts = {
            OpClass.IALU: 2 * scale,
            OpClass.IMULT: 1 * scale,
            OpClass.FPALU: 1 * scale,
            OpClass.FPMULT: 1 * scale,
            OpClass.LOAD: 1 * scale,
            OpClass.STORE: 1 * scale,
            OpClass.PREFETCH: 1 * scale,
            # Control ops contend only for issue bandwidth.
            OpClass.BRANCH: issue_width,
            OpClass.JUMP: issue_width,
            OpClass.CALL: issue_width,
            OpClass.RET: issue_width,
            OpClass.NOP: issue_width,
        }
        return cls(
            issue_width=issue_width,
            fu_counts=fu_counts,
            latencies=dict(DEFAULT_LATENCIES),
        )

    def latency(self, op_class: OpClass) -> int:
        return self.latencies[op_class]

    def units(self, op_class: OpClass) -> int:
        return self.fu_counts[op_class]

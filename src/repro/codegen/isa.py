"""SimpleRISC: the target instruction set.

A load/store RISC with 32 integer and 32 floating-point registers,
modelled on the Alpha that the paper's SimpleScalar backend targets.

Register identifiers are small ints: 0-31 are the integer registers
(``r0`` hardwired to zero), 32-63 the float registers.  Conventions:

================  ====================================================
``r0``            hardwired zero
``r1``            integer return value
``r2``-``r7``     integer arguments
``r8``-``r15``    caller-saved temporaries
``r16``-``r26``   callee-saved
``r27``/``r28``   reserved assembler scratch (spill reloads)
``r29``           frame pointer (allocatable under -fomit-frame-pointer)
``r30``           stack pointer
``r31``           return address
``f1``            float return value; ``f2``-``f7`` float arguments
``f8``-``f15``    caller-saved; ``f16``-``f29`` callee-saved
``f30``/``f31``   reserved assembler scratch
================  ====================================================

Every instruction is one word; instruction addresses advance by 4 bytes
(so an I-cache block holds ``block_size / 4`` instructions).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

# ----------------------------------------------------------------------
# Registers
# ----------------------------------------------------------------------
N_INT_REGS = 32
N_FP_REGS = 32

ZERO = 0
RV = 1
ARG_REGS = tuple(range(2, 8))
CALLER_SAVED_INT = tuple(range(8, 16))
CALLEE_SAVED_INT = tuple(range(16, 27))
SCRATCH_INT = (27, 28)
FP_REG = 29
SP = 30
RA = 31

FRV = 32 + 1
FARG_REGS = tuple(range(32 + 2, 32 + 8))
CALLER_SAVED_FP = tuple(range(32 + 8, 32 + 16))
CALLEE_SAVED_FP = tuple(range(32 + 16, 32 + 30))
SCRATCH_FP = (32 + 30, 32 + 31)

#: A register id: 0-31 int, 32-63 float.
Reg = int


def is_fp_reg(reg: Reg) -> bool:
    return reg >= 32


def reg_name(reg: Reg) -> str:
    if reg < 32:
        return INT_REG_NAMES[reg]
    return FP_REG_NAMES[reg - 32]


INT_REG_NAMES = [f"r{i}" for i in range(32)]
INT_REG_NAMES[SP] = "sp"
INT_REG_NAMES[RA] = "ra"
INT_REG_NAMES[FP_REG] = "fp"
FP_REG_NAMES = [f"f{i}" for i in range(32)]


class OpClass(enum.Enum):
    """Functional-unit class of an instruction (SimpleScalar-style)."""

    IALU = "ialu"
    IMULT = "imult"
    FPALU = "fpalu"
    FPMULT = "fpmult"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"  # conditional
    JUMP = "jump"  # unconditional, direct
    CALL = "call"
    RET = "ret"
    PREFETCH = "prefetch"
    NOP = "nop"

    @property
    def is_control(self) -> bool:
        return self in (
            OpClass.BRANCH,
            OpClass.JUMP,
            OpClass.CALL,
            OpClass.RET,
        )

    @property
    def is_memory(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE, OpClass.PREFETCH)


#: opcode -> OpClass for every opcode in the ISA.
OPCODE_CLASS = {
    # Integer ALU
    "li": OpClass.IALU,
    "la": OpClass.IALU,
    "mov": OpClass.IALU,
    "add": OpClass.IALU,
    "addi": OpClass.IALU,
    "sub": OpClass.IALU,
    "and": OpClass.IALU,
    "or": OpClass.IALU,
    "xor": OpClass.IALU,
    "shl": OpClass.IALU,
    "shr": OpClass.IALU,
    "neg": OpClass.IALU,
    "not": OpClass.IALU,
    "cmpeq": OpClass.IALU,
    "cmpne": OpClass.IALU,
    "cmplt": OpClass.IALU,
    "cmple": OpClass.IALU,
    "cmpgt": OpClass.IALU,
    "cmpge": OpClass.IALU,
    # Integer multiply/divide
    "mul": OpClass.IMULT,
    "div": OpClass.IMULT,
    "mod": OpClass.IMULT,
    # Float ALU
    "lif": OpClass.FPALU,
    "fmov": OpClass.FPALU,
    "fadd": OpClass.FPALU,
    "fsub": OpClass.FPALU,
    "fneg": OpClass.FPALU,
    "itof": OpClass.FPALU,
    "ftoi": OpClass.FPALU,
    "fcmpeq": OpClass.FPALU,
    "fcmpne": OpClass.FPALU,
    "fcmplt": OpClass.FPALU,
    "fcmple": OpClass.FPALU,
    "fcmpgt": OpClass.FPALU,
    "fcmpge": OpClass.FPALU,
    # Float multiply/divide
    "fmul": OpClass.FPMULT,
    "fdiv": OpClass.FPMULT,
    # Memory
    "ld": OpClass.LOAD,
    "fld": OpClass.LOAD,
    "st": OpClass.STORE,
    "fst": OpClass.STORE,
    "pf": OpClass.PREFETCH,
    # Control
    "beqz": OpClass.BRANCH,
    "bnez": OpClass.BRANCH,
    "j": OpClass.JUMP,
    "jal": OpClass.CALL,
    "jr": OpClass.RET,
    "nop": OpClass.NOP,
    "halt": OpClass.NOP,
}


@dataclass
class MachineInstr:
    """One machine instruction.

    ``dst`` and ``srcs`` hold register ids (virtual ids >= 64 before
    register allocation).  ``imm`` is the immediate (load/store offset,
    li constant, addi addend).  ``target`` is a label before linking and
    is resolved into ``target_pc`` by the linker.
    """

    op: str
    dst: Optional[Reg] = None
    srcs: Tuple[Reg, ...] = ()
    imm: Union[int, float, None] = None
    target: Optional[str] = None
    #: Filled by the linker for control transfers.
    target_pc: Optional[int] = None

    @property
    def op_class(self) -> OpClass:
        return OPCODE_CLASS[self.op]

    def regs_read(self) -> Tuple[Reg, ...]:
        return self.srcs

    def regs_written(self) -> Tuple[Reg, ...]:
        cls = self.op_class
        extra: Tuple[Reg, ...] = ()
        if cls is OpClass.CALL:
            extra = (RA,)
        if self.dst is None:
            return extra
        return (self.dst,) + extra

    def __repr__(self) -> str:
        return format_instr(self)


def format_instr(instr: MachineInstr) -> str:
    """Assembly-style rendering (virtual regs appear as ``v<n>``)."""

    def rn(reg: Reg) -> str:
        if reg >= 64:
            return f"v{reg}"
        return reg_name(reg)

    op = instr.op
    cls = instr.op_class
    if op in ("li", "lif"):
        return f"{op} {rn(instr.dst)}, {instr.imm}"
    if op == "la":
        return f"la {rn(instr.dst)}, {instr.target or instr.imm}"
    if cls is OpClass.LOAD:
        return f"{op} {rn(instr.dst)}, [{rn(instr.srcs[0])} + {instr.imm}]"
    if cls is OpClass.STORE:
        return f"{op} [{rn(instr.srcs[0])} + {instr.imm}], {rn(instr.srcs[1])}"
    if cls is OpClass.PREFETCH:
        return f"pf [{rn(instr.srcs[0])} + {instr.imm}]"
    if cls is OpClass.BRANCH:
        return f"{op} {rn(instr.srcs[0])}, {instr.target or instr.target_pc}"
    if cls is OpClass.JUMP or cls is OpClass.CALL:
        return f"{op} {instr.target or instr.target_pc}"
    if cls is OpClass.RET:
        return "jr ra"
    if op == "addi":
        return f"addi {rn(instr.dst)}, {rn(instr.srcs[0])}, {instr.imm}"
    parts = ", ".join(rn(r) for r in instr.srcs)
    if instr.dst is not None:
        return f"{op} {rn(instr.dst)}{', ' if parts else ''}{parts}"
    return f"{op} {parts}"

"""Instruction selection: IR -> SimpleRISC over virtual registers.

Virtual register ids start at 64 (physical ids are 0-63).  Constants are
materialized with ``li``/``lif`` except where an immediate form exists
(``addi``, load/store offsets).  Calls expand into argument moves, the
``jal``, and a result move, following the register conventions in
:mod:`repro.codegen.isa`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.codegen.isa import (
    ARG_REGS,
    FARG_REGS,
    FRV,
    MachineInstr,
    RV,
    Reg,
)
from repro.ir import (
    Addr,
    BinOp,
    Branch,
    Call,
    Cmp,
    Copy,
    Function,
    Jump,
    Load,
    Module,
    Prefetch,
    Return,
    Store,
    Temp,
    UnOp,
)
from repro.ir.types import Type
from repro.ir.values import Const, Value

#: First virtual register id.
FIRST_VREG = 64


@dataclass
class MachineBlock:
    label: str
    instrs: List[MachineInstr] = field(default_factory=list)


@dataclass
class MachineFunction:
    """A function in machine form (pre- or post-register-allocation)."""

    name: str
    blocks: List[MachineBlock]
    #: vreg id -> True when it is a float register.
    vreg_is_fp: Dict[int, bool]
    makes_calls: bool
    #: Filled by the register allocator.
    spill_slots: int = 0
    used_callee_saved: Tuple[Reg, ...] = ()

    def instruction_count(self) -> int:
        return sum(len(b.instrs) for b in self.blocks)


_CMP_OPCODES = {"eq": "cmpeq", "ne": "cmpne", "lt": "cmplt", "le": "cmple", "gt": "cmpgt", "ge": "cmpge"}


class _Selector:
    def __init__(self, func: Function):
        self.func = func
        self.vreg_counter = itertools.count(FIRST_VREG)
        self.temp_vreg: Dict[Temp, int] = {}
        self.vreg_is_fp: Dict[int, bool] = {}
        self.out: List[MachineInstr] = []
        self.makes_calls = False

    # ------------------------------------------------------------------
    def new_vreg(self, is_fp: bool) -> int:
        vreg = next(self.vreg_counter)
        self.vreg_is_fp[vreg] = is_fp
        return vreg

    def vreg_of(self, temp: Temp) -> int:
        if temp not in self.temp_vreg:
            self.temp_vreg[temp] = self.new_vreg(temp.type is Type.FLOAT)
        return self.temp_vreg[temp]

    def emit(self, instr: MachineInstr) -> None:
        self.out.append(instr)

    def reg_of(self, value: Value) -> int:
        """Register holding a value, materializing constants."""
        if isinstance(value, Temp):
            return self.vreg_of(value)
        if value.type is Type.FLOAT:
            vreg = self.new_vreg(True)
            self.emit(MachineInstr("lif", dst=vreg, imm=float(value.value)))
            return vreg
        vreg = self.new_vreg(False)
        self.emit(MachineInstr("li", dst=vreg, imm=int(value.value)))
        return vreg

    # ------------------------------------------------------------------
    def select_function(self) -> MachineFunction:
        blocks: List[MachineBlock] = []
        for i, block in enumerate(self.func.blocks):
            self.out = []
            if i == 0:
                self._emit_param_moves()
            for instr in block.instrs:
                self.select_instr(instr)
            self.select_terminator(block.terminator)
            blocks.append(MachineBlock(block.label, self.out))
        return MachineFunction(
            name=self.func.name,
            blocks=blocks,
            vreg_is_fp=self.vreg_is_fp,
            makes_calls=self.makes_calls,
        )

    def _emit_param_moves(self) -> None:
        int_args = iter(ARG_REGS)
        fp_args = iter(FARG_REGS)
        for param in self.func.params:
            vreg = self.vreg_of(param)
            if param.type is Type.FLOAT:
                phys = next(fp_args, None)
                opcode = "fmov"
            else:
                phys = next(int_args, None)
                opcode = "mov"
            if phys is None:
                raise NotImplementedError(
                    f"{self.func.name}: more arguments than argument registers"
                )
            self.emit(MachineInstr(opcode, dst=vreg, srcs=(phys,)))

    # ------------------------------------------------------------------
    def select_instr(self, instr) -> None:
        if isinstance(instr, BinOp):
            self.select_binop(instr)
        elif isinstance(instr, UnOp):
            a = self.reg_of(instr.a)
            self.emit(
                MachineInstr(instr.op, dst=self.vreg_of(instr.dst), srcs=(a,))
            )
        elif isinstance(instr, Cmp):
            is_fp = (
                instr.a.type is Type.FLOAT or instr.b.type is Type.FLOAT
            )
            opcode = _CMP_OPCODES[instr.op]
            if is_fp:
                opcode = "f" + opcode
            a = self.reg_of(instr.a)
            b = self.reg_of(instr.b)
            self.emit(
                MachineInstr(opcode, dst=self.vreg_of(instr.dst), srcs=(a, b))
            )
        elif isinstance(instr, Copy):
            self.select_copy(instr)
        elif isinstance(instr, Addr):
            self.emit(
                MachineInstr(
                    "la", dst=self.vreg_of(instr.dst), target=instr.symbol
                )
            )
        elif isinstance(instr, Load):
            base, imm = self.select_address(instr.base, instr.offset)
            opcode = "fld" if instr.dst.type is Type.FLOAT else "ld"
            self.emit(
                MachineInstr(
                    opcode, dst=self.vreg_of(instr.dst), srcs=(base,), imm=imm
                )
            )
        elif isinstance(instr, Store):
            base, imm = self.select_address(instr.base, instr.offset)
            src = self.reg_of(instr.src)
            opcode = "fst" if instr.src.type is Type.FLOAT else "st"
            self.emit(MachineInstr(opcode, srcs=(base, src), imm=imm))
        elif isinstance(instr, Prefetch):
            base, imm = self.select_address(instr.base, instr.offset)
            self.emit(MachineInstr("pf", srcs=(base,), imm=imm))
        elif isinstance(instr, Call):
            self.select_call(instr)
        else:
            raise TypeError(f"cannot select {instr!r}")

    def select_binop(self, instr: BinOp) -> None:
        dst = self.vreg_of(instr.dst)
        # Immediate add/sub forms.
        if instr.op == "add" and isinstance(instr.b, Const):
            a = self.reg_of(instr.a)
            self.emit(MachineInstr("addi", dst=dst, srcs=(a,), imm=int(instr.b.value)))
            return
        if instr.op == "add" and isinstance(instr.a, Const):
            b = self.reg_of(instr.b)
            self.emit(MachineInstr("addi", dst=dst, srcs=(b,), imm=int(instr.a.value)))
            return
        if instr.op == "sub" and isinstance(instr.b, Const):
            a = self.reg_of(instr.a)
            self.emit(MachineInstr("addi", dst=dst, srcs=(a,), imm=-int(instr.b.value)))
            return
        a = self.reg_of(instr.a)
        b = self.reg_of(instr.b)
        self.emit(MachineInstr(instr.op, dst=dst, srcs=(a, b)))

    def select_copy(self, instr: Copy) -> None:
        dst = self.vreg_of(instr.dst)
        if isinstance(instr.src, Const):
            if instr.src.type is Type.FLOAT:
                self.emit(MachineInstr("lif", dst=dst, imm=float(instr.src.value)))
            else:
                self.emit(MachineInstr("li", dst=dst, imm=int(instr.src.value)))
            return
        src = self.vreg_of(instr.src)
        opcode = "fmov" if instr.dst.type is Type.FLOAT else "mov"
        self.emit(MachineInstr(opcode, dst=dst, srcs=(src,)))

    def select_address(self, base: Value, offset: Value) -> Tuple[int, int]:
        """(base register, immediate) addressing for memory operations."""
        base_reg = self.reg_of(base)
        if isinstance(offset, Const):
            return base_reg, int(offset.value)
        offset_reg = self.reg_of(offset)
        addr = self.new_vreg(False)
        self.emit(MachineInstr("add", dst=addr, srcs=(base_reg, offset_reg)))
        return addr, 0

    def select_call(self, instr: Call) -> None:
        self.makes_calls = True
        int_args = iter(ARG_REGS)
        fp_args = iter(FARG_REGS)
        for arg in instr.args:
            reg = self.reg_of(arg)
            if arg.type is Type.FLOAT:
                phys = next(fp_args, None)
                opcode = "fmov"
            else:
                phys = next(int_args, None)
                opcode = "mov"
            if phys is None:
                raise NotImplementedError(
                    f"call to {instr.callee}: too many arguments"
                )
            self.emit(MachineInstr(opcode, dst=phys, srcs=(reg,)))
        self.emit(MachineInstr("jal", target=instr.callee))
        if instr.dst is not None:
            if instr.dst.type is Type.FLOAT:
                self.emit(
                    MachineInstr("fmov", dst=self.vreg_of(instr.dst), srcs=(FRV,))
                )
            else:
                self.emit(
                    MachineInstr("mov", dst=self.vreg_of(instr.dst), srcs=(RV,))
                )

    def select_terminator(self, term) -> None:
        if isinstance(term, Jump):
            self.emit(MachineInstr("j", target=term.target))
        elif isinstance(term, Branch):
            cond = self.reg_of(term.cond)
            self.emit(MachineInstr("bnez", srcs=(cond,), target=term.then_target))
            self.emit(MachineInstr("j", target=term.else_target))
        elif isinstance(term, Return):
            if term.value is not None:
                if term.value.type is Type.FLOAT:
                    reg = self.reg_of(term.value)
                    self.emit(MachineInstr("fmov", dst=FRV, srcs=(reg,)))
                else:
                    reg = self.reg_of(term.value)
                    self.emit(MachineInstr("mov", dst=RV, srcs=(reg,)))
            self.emit(MachineInstr("jr"))
        else:
            raise TypeError(f"cannot select terminator {term!r}")


def select_function(func: Function) -> MachineFunction:
    """Lower one IR function to machine code over virtual registers."""
    return _Selector(func).select_function()


def select_module(module: Module) -> Dict[str, MachineFunction]:
    return {
        name: select_function(func)
        for name, func in module.functions.items()
    }

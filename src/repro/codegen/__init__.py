"""Code generation for SimpleRISC, the Alpha-flavoured target ISA.

Pipeline: instruction selection (:mod:`repro.codegen.isel`) produces
machine code over virtual registers; linear-scan register allocation
(:mod:`repro.codegen.regalloc`) assigns physical registers and spill
slots; frame lowering (:mod:`repro.codegen.frame`) expands prologues and
epilogues (honouring ``-fomit-frame-pointer``); the post-RA list
scheduler (:mod:`repro.codegen.scheduler`) implements
``-fschedule-insns2`` against the machine description derived from the
target's issue width; and the linker (:mod:`repro.codegen.linker`) lays
out code and data into an :class:`Executable`.

:func:`compile_module` runs IR optimization plus the whole backend.
"""

#: Bumped whenever code generation or optimization behaviour changes, so
#: persistent measurement caches keyed on it can never go stale.
COMPILER_VERSION = 3

from repro.codegen.isa import (
    MachineInstr,
    OpClass,
    Reg,
    INT_REG_NAMES,
    FP_REG_NAMES,
    format_instr,
)
from repro.codegen.machine_desc import MachineDescription
from repro.codegen.linker import Executable, link_module
from repro.codegen.compile import compile_module

__all__ = [
    "MachineInstr",
    "OpClass",
    "Reg",
    "INT_REG_NAMES",
    "FP_REG_NAMES",
    "format_instr",
    "MachineDescription",
    "Executable",
    "link_module",
    "compile_module",
]

"""-fschedule-insns2: post-register-allocation list scheduling.

Each basic block is split into regions at scheduling barriers (calls and
the trailing control transfer); within a region a dependence DAG is built
over physical registers (RAW/WAR/WAW) and memory (stores order against
all memory operations; loads and prefetches reorder freely among
themselves), and operations are issued greedily, highest
critical-path-height first, respecting the machine description's issue
width, functional-unit counts and latencies.

Static scheduling matters most when the dynamic window is small: on a
16-entry RUU the hardware cannot look far past a stalled instruction, so
a compiler that has already separated dependent pairs wins cycles -- the
schedule x RUU-size interaction the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.codegen.isa import MachineInstr, OpClass, Reg, ZERO
from repro.codegen.isel import MachineFunction
from repro.codegen.machine_desc import MachineDescription


def schedule_function(
    mf: MachineFunction, mdesc: MachineDescription
) -> MachineFunction:
    """List-schedule every block of ``mf`` in place; returns it."""
    for block in mf.blocks:
        block.instrs = _schedule_block(block.instrs, mdesc)
    return mf


def _schedule_block(
    instrs: List[MachineInstr], mdesc: MachineDescription
) -> List[MachineInstr]:
    out: List[MachineInstr] = []
    region: List[MachineInstr] = []
    for instr in instrs:
        if instr.op_class.is_control:
            out.extend(_schedule_region(region, mdesc))
            out.append(instr)
            region = []
        else:
            region.append(instr)
    out.extend(_schedule_region(region, mdesc))
    return out


def _build_dag(
    region: List[MachineInstr],
) -> Tuple[List[Set[int]], List[Set[int]]]:
    """(successors, predecessors) adjacency over region indices."""
    n = len(region)
    succs: List[Set[int]] = [set() for _ in range(n)]
    preds: List[Set[int]] = [set() for _ in range(n)]

    def add_edge(a: int, b: int) -> None:
        if a != b and b not in succs[a]:
            succs[a].add(b)
            preds[b].add(a)

    last_write: Dict[Reg, int] = {}
    last_reads: Dict[Reg, List[int]] = {}
    last_store: Optional[int] = None
    mem_since_store: List[int] = []

    for i, instr in enumerate(region):
        for r in instr.regs_read():
            if r == ZERO:
                continue
            if r in last_write:
                add_edge(last_write[r], i)  # RAW
            last_reads.setdefault(r, []).append(i)
        for r in instr.regs_written():
            if r == ZERO:
                continue
            if r in last_write:
                add_edge(last_write[r], i)  # WAW
            for reader in last_reads.get(r, []):
                add_edge(reader, i)  # WAR
            last_write[r] = i
            last_reads[r] = []
        cls = instr.op_class
        if cls is OpClass.STORE:
            if last_store is not None:
                add_edge(last_store, i)
            for m in mem_since_store:
                add_edge(m, i)
            last_store = i
            mem_since_store = []
        elif cls in (OpClass.LOAD, OpClass.PREFETCH):
            if last_store is not None:
                add_edge(last_store, i)
            mem_since_store.append(i)
    return succs, preds


def _schedule_region(
    region: List[MachineInstr], mdesc: MachineDescription
) -> List[MachineInstr]:
    n = len(region)
    if n <= 1:
        return list(region)
    succs, preds = _build_dag(region)

    # Critical-path height (latency-weighted longest path to a sink).
    height = [0] * n
    for i in range(n - 1, -1, -1):
        lat = mdesc.latency(region[i].op_class)
        height[i] = lat + max((height[s] for s in succs[i]), default=0)

    in_degree = [len(p) for p in preds]
    ready: List[int] = [i for i in range(n) if in_degree[i] == 0]
    ready_at = [0] * n  # earliest cycle each op may issue
    scheduled: List[int] = []
    cycle = 0
    issued = 0
    fu_used: Dict[OpClass, int] = {}
    pending: List[int] = []  # ops whose preds are done but not yet ready

    while len(scheduled) < n:
        # Candidates ready this cycle, best priority first.
        candidates = sorted(
            (i for i in ready if ready_at[i] <= cycle),
            key=lambda i: (-height[i], i),
        )
        progress = False
        for i in candidates:
            if issued >= mdesc.issue_width:
                break
            cls = region[i].op_class
            if fu_used.get(cls, 0) >= mdesc.units(cls):
                continue
            # Issue i.
            fu_used[cls] = fu_used.get(cls, 0) + 1
            issued += 1
            ready.remove(i)
            scheduled.append(i)
            progress = True
            finish = cycle + mdesc.latency(cls)
            for s in succs[i]:
                in_degree[s] -= 1
                ready_at[s] = max(ready_at[s], finish)
                if in_degree[s] == 0:
                    ready.append(s)
        cycle += 1
        issued = 0
        fu_used = {}
        if not progress and not any(ready_at[i] <= cycle for i in ready):
            # Jump to the next interesting cycle.
            if ready:
                cycle = min(ready_at[i] for i in ready)
    return [region[i] for i in scheduled]

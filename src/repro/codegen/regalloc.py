"""Linear-scan register allocation.

Live intervals are computed from block-level liveness (an interval spans
from its first definition to its last use, extended across any block
where the vreg is live-out, which covers loop-carried values).  Intervals
that cross a call site must live in callee-saved registers; others prefer
caller-saved.  When no register is free the interval with the furthest
end point is spilled to a stack slot; spill code uses the reserved
scratch registers, and the stack-slot addressing is patched later by
frame lowering (spill memory ops carry ``target="__spill__"`` and the
slot index in ``imm`` until then).

Register pressure is a first-class modelling concern: unrolling and
strength reduction lengthen live ranges, and whether that turns into
spill traffic depends on ``-fomit-frame-pointer`` freeing ``r29`` --
exactly the interaction structure the paper's models are built to learn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.codegen.isa import (
    CALLEE_SAVED_FP,
    CALLEE_SAVED_INT,
    CALLER_SAVED_FP,
    CALLER_SAVED_INT,
    FP_REG,
    MachineInstr,
    OpClass,
    Reg,
    SCRATCH_FP,
    SCRATCH_INT,
)
from repro.codegen.isel import FIRST_VREG, MachineBlock, MachineFunction


def _is_vreg(reg: Reg) -> bool:
    return reg >= FIRST_VREG


@dataclass
class _Interval:
    vreg: int
    start: int
    end: int
    is_fp: bool
    crosses_call: bool = False
    phys: Optional[Reg] = None
    slot: Optional[int] = None


def _block_liveness(mf: MachineFunction) -> Dict[str, Set[int]]:
    """Live-in vreg sets per machine block label."""
    index = {b.label: b for b in mf.blocks}
    # Successors: targets of branches/jumps that are block labels; a
    # block falls through to nothing (isel always ends with explicit
    # control flow).
    succs: Dict[str, List[str]] = {}
    for block in mf.blocks:
        out: List[str] = []
        for instr in block.instrs:
            if instr.target is not None and instr.target in index:
                if instr.op_class in (OpClass.BRANCH, OpClass.JUMP):
                    out.append(instr.target)
        succs[block.label] = out

    use: Dict[str, Set[int]] = {}
    define: Dict[str, Set[int]] = {}
    for block in mf.blocks:
        u: Set[int] = set()
        d: Set[int] = set()
        for instr in block.instrs:
            for r in instr.regs_read():
                if _is_vreg(r) and r not in d:
                    u.add(r)
            for r in instr.regs_written():
                if _is_vreg(r):
                    d.add(r)
        use[block.label] = u
        define[block.label] = d

    live_in: Dict[str, Set[int]] = {b.label: set() for b in mf.blocks}
    live_out: Dict[str, Set[int]] = {b.label: set() for b in mf.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(mf.blocks):
            label = block.label
            out: Set[int] = set()
            for s in succs[label]:
                out |= live_in[s]
            inn = use[label] | (out - define[label])
            if out != live_out[label] or inn != live_in[label]:
                live_out[label] = out
                live_in[label] = inn
                changed = True
    return live_in, live_out


def _build_intervals(mf: MachineFunction) -> Tuple[List[_Interval], List[int]]:
    live_in, live_out = _block_liveness(mf)
    pos = 0
    starts: Dict[int, int] = {}
    ends: Dict[int, int] = {}
    call_positions: List[int] = []

    def touch(vreg: int, p: int) -> None:
        if vreg not in starts:
            starts[vreg] = p
        ends[vreg] = max(ends.get(vreg, p), p)

    for block in mf.blocks:
        block_start = pos
        block_end = pos + len(block.instrs) - 1 if block.instrs else pos
        for instr in block.instrs:
            for r in instr.regs_read():
                if _is_vreg(r):
                    touch(r, pos)
            for r in instr.regs_written():
                if _is_vreg(r):
                    touch(r, pos)
            if instr.op_class is OpClass.CALL:
                call_positions.append(pos)
            pos += 1
        for vreg in live_in[block.label]:
            touch(vreg, block_start)
        for vreg in live_out[block.label]:
            touch(vreg, block_end)

    intervals = [
        _Interval(
            vreg=v,
            start=starts[v],
            end=ends[v],
            is_fp=mf.vreg_is_fp.get(v, False),
        )
        for v in starts
    ]
    for iv in intervals:
        iv.crosses_call = any(
            iv.start <= c <= iv.end for c in call_positions
        )
    intervals.sort(key=lambda iv: (iv.start, iv.end))
    return intervals, call_positions


class _Pools:
    """Free physical registers, split by bank and save class."""

    def __init__(self, omit_frame_pointer: bool):
        callee_int = list(CALLEE_SAVED_INT)
        if omit_frame_pointer:
            callee_int.append(FP_REG)
        self.free = {
            (False, "caller"): list(CALLER_SAVED_INT),
            (False, "callee"): callee_int,
            (True, "caller"): list(CALLER_SAVED_FP),
            (True, "callee"): list(CALLEE_SAVED_FP),
        }

    def take(self, is_fp: bool, crosses_call: bool) -> Optional[Tuple[Reg, str]]:
        if crosses_call:
            order = ["callee"]
        else:
            order = ["caller", "callee"]
        for kind in order:
            pool = self.free[(is_fp, kind)]
            if pool:
                return pool.pop(0), kind
        return None

    def release(self, reg: Reg, is_fp: bool, kind: str) -> None:
        self.free[(is_fp, kind)].append(reg)


def allocate_registers(
    mf: MachineFunction, omit_frame_pointer: bool
) -> MachineFunction:
    """Allocate physical registers in place; returns ``mf``."""
    intervals, _calls = _build_intervals(mf)
    pools = _Pools(omit_frame_pointer)
    active: List[Tuple[_Interval, str]] = []  # (interval, pool kind)
    next_slot = 0
    assignment: Dict[int, _Interval] = {}

    for iv in intervals:
        # Expire finished intervals.
        still_active = []
        for act, kind in active:
            if act.end < iv.start:
                pools.release(act.phys, act.is_fp, kind)
            else:
                still_active.append((act, kind))
        active = still_active

        got = pools.take(iv.is_fp, iv.crosses_call)
        if got is None:
            # Spill: evict the compatible active interval ending furthest
            # in the future, or spill this one.
            candidates = [
                (act, kind)
                for act, kind in active
                if act.is_fp == iv.is_fp
                and (not iv.crosses_call or kind == "callee")
                and (not act.crosses_call or kind == "callee")
            ]
            victim = None
            if candidates:
                victim = max(candidates, key=lambda ak: ak[0].end)
            if victim is not None and victim[0].end > iv.end:
                act, kind = victim
                iv.phys = act.phys
                act.phys = None
                act.slot = next_slot
                next_slot += 1
                active.remove(victim)
                active.append((iv, kind))
            else:
                iv.slot = next_slot
                next_slot += 1
        else:
            reg, kind = got
            iv.phys = reg
            active.append((iv, kind))
        assignment[iv.vreg] = iv

    mf.spill_slots = next_slot
    used_callee: Set[Reg] = set()
    callee_set = set(CALLEE_SAVED_INT) | set(CALLEE_SAVED_FP) | {FP_REG}
    for iv in intervals:
        if iv.phys is not None and iv.phys in callee_set:
            used_callee.add(iv.phys)
    mf.used_callee_saved = tuple(sorted(used_callee))

    _rewrite(mf, assignment)
    return mf


def _spill_load(slot: int, scratch: Reg, is_fp: bool) -> MachineInstr:
    return MachineInstr(
        "fld" if is_fp else "ld",
        dst=scratch,
        srcs=(0,),  # base patched by frame lowering
        imm=slot,
        target="__spill__",
    )


def _spill_store(slot: int, scratch: Reg, is_fp: bool) -> MachineInstr:
    return MachineInstr(
        "fst" if is_fp else "st",
        srcs=(0, scratch),  # base patched by frame lowering
        imm=slot,
        target="__spill__",
    )


def _rewrite(mf: MachineFunction, assignment: Dict[int, _Interval]) -> None:
    """Substitute physical registers and insert spill code."""
    for block in mf.blocks:
        new_instrs: List[MachineInstr] = []
        for instr in block.instrs:
            pre: List[MachineInstr] = []
            post: List[MachineInstr] = []
            scratch_int = list(SCRATCH_INT)
            scratch_fp = list(SCRATCH_FP)

            def resolve(reg: Reg, for_write: bool) -> Reg:
                if not _is_vreg(reg):
                    return reg
                iv = assignment[reg]
                if iv.phys is not None:
                    return iv.phys
                scratch_pool = scratch_fp if iv.is_fp else scratch_int
                if not scratch_pool:
                    raise RuntimeError(
                        "out of scratch registers for spill code"
                    )
                scratch = scratch_pool.pop(0)
                if for_write:
                    post.append(_spill_store(iv.slot, scratch, iv.is_fp))
                else:
                    pre.append(_spill_load(iv.slot, scratch, iv.is_fp))
                return scratch

            new_srcs = tuple(resolve(r, False) for r in instr.srcs)
            # The destination may reuse a source scratch register: reset
            # pools so a spilled dst gets the first scratch again (the
            # source reloads have already been emitted).
            scratch_int = list(SCRATCH_INT)
            scratch_fp = list(SCRATCH_FP)
            new_dst = (
                resolve(instr.dst, True) if instr.dst is not None else None
            )
            instr.srcs = new_srcs
            instr.dst = new_dst
            new_instrs.extend(pre)
            new_instrs.append(instr)
            new_instrs.extend(post)
        block.instrs = new_instrs

"""Linking: machine functions -> a runnable executable image.

Lays out code (a startup stub, then ``main``, then the other functions),
drops fall-through jumps, resolves branch/call targets to instruction
addresses, places globals in the data segment and records their initial
values.  Instructions occupy 4 bytes of I-cache address space each; data
is word (8-byte) addressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.codegen.isa import MachineInstr, OpClass
from repro.codegen.isel import MachineFunction
from repro.ir import Module
from repro.ir.types import Type, WORD_SIZE

#: Base address of the data segment.
DATA_BASE = 0x100000
#: Base byte address of the text segment (for I-cache indexing).
TEXT_BASE = 0x1000
#: Bytes per instruction.
INSTR_BYTES = 4
#: Initial stack pointer (stack grows down).
STACK_BASE = 0x7FFF0000


@dataclass
class GlobalSymbol:
    name: str
    address: int
    count: int
    is_float: bool
    init: Optional[List[Union[int, float]]]


@dataclass
class Executable:
    """A linked program image."""

    instrs: List[MachineInstr]
    entry_pc: int
    symbols: Dict[str, GlobalSymbol]
    function_entries: Dict[str, int]
    data_base: int = DATA_BASE
    data_size: int = 0
    stack_base: int = STACK_BASE

    @property
    def text_size_bytes(self) -> int:
        return len(self.instrs) * INSTR_BYTES

    def pc_to_byte_addr(self, pc: int) -> int:
        return TEXT_BASE + pc * INSTR_BYTES

    def global_addr(self, name: str) -> int:
        return self.symbols[name].address

    def disassemble(self) -> str:
        pc_to_func = {pc: name for name, pc in self.function_entries.items()}
        lines = []
        for pc, instr in enumerate(self.instrs):
            if pc in pc_to_func:
                lines.append(f"{pc_to_func[pc]}:")
            lines.append(f"  {pc:5d}: {instr!r}")
        return "\n".join(lines)


def link_module(
    module: Module, machine_funcs: Dict[str, MachineFunction]
) -> Executable:
    """Link machine functions against the module's global layout."""
    if "main" not in machine_funcs:
        raise ValueError("program has no main function")

    # ------------------------------------------------------------------
    # Data segment layout.
    symbols: Dict[str, GlobalSymbol] = {}
    addr = DATA_BASE
    for g in module.globals.values():
        symbols[g.name] = GlobalSymbol(
            name=g.name,
            address=addr,
            count=g.count,
            is_float=g.type is Type.FLOAT,
            init=list(g.init) if g.init else None,
        )
        addr += g.count * WORD_SIZE
    data_size = addr - DATA_BASE

    # ------------------------------------------------------------------
    # Code layout: startup stub, then main, then everything else.
    order = ["main"] + sorted(n for n in machine_funcs if n != "main")
    instrs: List[MachineInstr] = [
        MachineInstr("jal", target="main"),
        MachineInstr("halt"),
    ]
    function_entries: Dict[str, int] = {}
    block_pcs: Dict[Tuple[str, str], int] = {}

    # First pass: drop fall-through jumps, then assign pcs.
    laid_out: List[Tuple[str, MachineInstr]] = []  # (function, instr)
    for fname in order:
        mf = machine_funcs[fname]
        block_labels = [b.label for b in mf.blocks]
        next_label = {
            block_labels[i]: block_labels[i + 1]
            for i in range(len(block_labels) - 1)
        }
        pending_blocks = []
        for b in mf.blocks:
            body = list(b.instrs)
            if (
                body
                and body[-1].op_class is OpClass.JUMP
                and body[-1].target == next_label.get(b.label)
            ):
                body = body[:-1]
            pending_blocks.append((b.label, body))
        function_entries[fname] = len(instrs)
        for label, body in pending_blocks:
            block_pcs[(fname, label)] = len(instrs)
            for instr in body:
                instrs.append(instr)
                laid_out.append((fname, instr))

    # ------------------------------------------------------------------
    # Resolve targets and addresses.
    for pc, instr in enumerate(instrs):
        cls = instr.op_class
        if instr.op == "la":
            instr.imm = symbols[instr.target].address
            instr.target_pc = None
        elif cls is OpClass.CALL:
            instr.target_pc = function_entries[instr.target]
        elif cls in (OpClass.BRANCH, OpClass.JUMP):
            fname = _owner_function(pc, function_entries, order, len(instrs))
            instr.target_pc = block_pcs[(fname, instr.target)]

    return Executable(
        instrs=instrs,
        entry_pc=0,
        symbols=symbols,
        function_entries=function_entries,
        data_size=data_size,
    )


def _owner_function(
    pc: int,
    entries: Dict[str, int],
    order: List[str],
    total: int,
) -> str:
    """Which function the instruction at ``pc`` belongs to."""
    owner = None
    best = -1
    for fname in order:
        start = entries[fname]
        if start <= pc and start > best:
            best = start
            owner = fname
    if owner is None:
        raise ValueError(f"pc {pc} precedes all functions")
    return owner

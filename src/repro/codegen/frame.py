"""Frame lowering: prologues, epilogues and -fomit-frame-pointer.

Frame layout after the prologue (stack grows down)::

    sp + 0 .. spill_slots*8-1        spill slots
    sp + spill_base .. frame_size-1  save area (callee-saved, ra, fp)

With the frame pointer enabled, every function additionally saves the old
``fp``, establishes ``fp = sp + frame_size`` and addresses spill slots
fp-relative; with ``-fomit-frame-pointer`` the save/establish/restore
instructions disappear, slots are sp-relative, and ``r29`` becomes
allocatable -- the two effects (less prologue work, lower register
pressure) that make the flag one of the paper's strongest compiler
parameters (Table 4).
"""

from __future__ import annotations

from typing import List

from repro.codegen.isa import FP_REG, MachineInstr, OpClass, RA, SP, Reg, is_fp_reg
from repro.codegen.isel import MachineFunction

WORD = 8


def lower_frame(mf: MachineFunction, omit_frame_pointer: bool) -> MachineFunction:
    """Expand prologue/epilogue and patch spill addressing in place."""
    saves: List[Reg] = []
    if mf.makes_calls:
        saves.append(RA)
    if omit_frame_pointer:
        # r29 is an ordinary callee-saved register here: if the
        # allocator used it, it must be saved like any other.
        saves.extend(mf.used_callee_saved)
    else:
        # r29 is the frame pointer: saved unconditionally (and the
        # allocator never hands it out).
        saves.append(FP_REG)
        saves.extend(r for r in mf.used_callee_saved if r != FP_REG)

    spill_bytes = mf.spill_slots * WORD
    frame_size = spill_bytes + len(saves) * WORD
    if frame_size == 0:
        _patch_spills(mf, omit_frame_pointer, frame_size)
        return mf

    save_offset = {reg: spill_bytes + i * WORD for i, reg in enumerate(saves)}

    prologue: List[MachineInstr] = [
        MachineInstr("addi", dst=SP, srcs=(SP,), imm=-frame_size)
    ]
    for reg in saves:
        opcode = "fst" if is_fp_reg(reg) else "st"
        prologue.append(
            MachineInstr(opcode, srcs=(SP, reg), imm=save_offset[reg])
        )
    if not omit_frame_pointer:
        prologue.append(
            MachineInstr("addi", dst=FP_REG, srcs=(SP,), imm=frame_size)
        )

    epilogue: List[MachineInstr] = []
    for reg in saves:
        opcode = "fld" if is_fp_reg(reg) else "ld"
        epilogue.append(
            MachineInstr(opcode, dst=reg, srcs=(SP,), imm=save_offset[reg])
        )
    epilogue.append(MachineInstr("addi", dst=SP, srcs=(SP,), imm=frame_size))

    # Insert the prologue at function entry.
    entry = mf.blocks[0]
    entry.instrs = prologue + entry.instrs

    # Expand every return into restore + deallocate + jr.
    for block in mf.blocks:
        new_instrs: List[MachineInstr] = []
        for instr in block.instrs:
            if instr.op_class is OpClass.RET:
                new_instrs.extend(
                    MachineInstr(e.op, dst=e.dst, srcs=e.srcs, imm=e.imm)
                    for e in epilogue
                )
            new_instrs.append(instr)
        block.instrs = new_instrs

    _patch_spills(mf, omit_frame_pointer, frame_size)
    return mf


def _patch_spills(
    mf: MachineFunction, omit_frame_pointer: bool, frame_size: int
) -> None:
    """Rewrite ``__spill__`` placeholders into real addressing."""
    for block in mf.blocks:
        for instr in block.instrs:
            if instr.target != "__spill__":
                continue
            slot = instr.imm
            if omit_frame_pointer:
                base, offset = SP, slot * WORD
            else:
                base, offset = FP_REG, slot * WORD - frame_size
            instr.imm = offset
            instr.target = None
            if instr.op_class is OpClass.LOAD:
                instr.srcs = (base,)
            else:
                instr.srcs = (base, instr.srcs[1])

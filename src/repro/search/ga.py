"""Genetic algorithm over a discrete parameter space.

The GA operates on genomes of per-variable *level indices*, which keeps
every individual on the legal grid.  Selection is by tournament, variation
by uniform crossover and per-gene mutation to a random level, and the best
individuals are carried over unchanged (elitism).  Termination follows the
paper: a generation cap, with early exit when the best predicted response
has not improved for a number of generations.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.obs import counter, span
from repro.space import ParameterSpace

_GENERATIONS = counter("ga.generations")
_EVALUATIONS = counter("ga.evaluations")
_NON_FINITE = counter("ga.non_finite_fitness")

#: An objective maps a coded design matrix (n, k) to responses (n,);
#: the GA minimizes it.
Objective = Callable[[np.ndarray], np.ndarray]

#: Per-generation observer: ``(generation, coded_population, fitness)``
#: after fitness evaluation (non-finite values already clamped to +inf).
#: Used by the surrogate-assisted search to snapshot elite individuals
#: for later simulator re-validation; must not mutate its arguments.
GenerationObserver = Callable[[int, np.ndarray, np.ndarray], None]


@dataclass
class SearchResult:
    """Outcome of a search over a parameter space."""

    #: Best point found, as a raw point dict.
    best_point: Dict[str, float]
    #: Coded vector of the best point.
    best_coded: np.ndarray
    #: Objective value at the best point.
    best_value: float
    #: Number of objective evaluations performed.
    evaluations: int
    #: Best objective value after each generation (GA only).
    history: List[float] = field(default_factory=list)


class GeneticSearch:
    """Minimize an objective over a :class:`ParameterSpace` with a GA.

    Parameters
    ----------
    space:
        The (sub)space being searched -- for the paper's use case, the
        14-variable compiler space with the microarchitecture frozen
        inside the objective.
    population:
        Individuals per generation.
    generations:
        Hard cap on generations.
    elite:
        Individuals copied unchanged into the next generation.
    tournament:
        Tournament size for parent selection.
    crossover_rate / mutation_rate:
        Per-pair uniform-crossover probability and per-gene mutation
        probability.
    patience:
        Early-exit when the best value has not improved for this many
        generations (None disables).
    """

    def __init__(
        self,
        space: ParameterSpace,
        population: int = 60,
        generations: int = 50,
        elite: int = 2,
        tournament: int = 3,
        crossover_rate: float = 0.9,
        mutation_rate: float = 0.08,
        patience: Optional[int] = 12,
    ):
        if population < 2:
            raise ValueError("population must be >= 2")
        if generations < 1:
            raise ValueError("generations must be >= 1")
        if elite >= population:
            raise ValueError("elite must be smaller than population")
        self.space = space
        self.population = population
        self.generations = generations
        self.elite = elite
        self.tournament = tournament
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.patience = patience
        self._coded_levels = [
            np.array(v.coded_levels()) for v in space.variables
        ]
        self._n_levels = np.array([v.levels for v in space.variables])

    # ------------------------------------------------------------------
    def _decode_genomes(self, genomes: np.ndarray) -> np.ndarray:
        """Level-index genomes (n, k) -> coded matrix (n, k)."""
        coded = np.empty(genomes.shape, dtype=float)
        for j, levels in enumerate(self._coded_levels):
            coded[:, j] = levels[genomes[:, j]]
        return coded

    def _random_population(self, rng: np.random.Generator) -> np.ndarray:
        return np.column_stack(
            [
                rng.integers(n, size=self.population)
                for n in self._n_levels
            ]
        )

    def _select(
        self, fitness: np.ndarray, rng: np.random.Generator
    ) -> int:
        contenders = rng.integers(self.population, size=self.tournament)
        return int(contenders[np.argmin(fitness[contenders])])

    # ------------------------------------------------------------------
    def run(
        self,
        objective: Objective,
        rng: np.random.Generator,
        on_generation: Optional[GenerationObserver] = None,
    ) -> SearchResult:
        """Run the GA and return the best design point found.

        ``on_generation`` (if given) observes every generation's coded
        population and sanitized fitness right after evaluation.
        """
        genomes = self._random_population(rng)
        evaluations = 0
        history: List[float] = []
        best_genome: Optional[np.ndarray] = None
        best_value = np.inf
        stall = 0
        warned_non_finite = False

        with span(
            "ga.run", population=self.population, generations=self.generations
        ) as top:
            for generation in range(self.generations):
                with span("ga.generation", index=generation) as gen_span:
                    coded = self._decode_genomes(genomes)
                    fitness = np.asarray(objective(coded), dtype=float)
                    # NaN never compares below anything, so a NaN-riddled
                    # objective would leave best_genome unset forever;
                    # treat every non-finite fitness as +inf (worst).
                    non_finite = ~np.isfinite(fitness)
                    if non_finite.any():
                        _NON_FINITE.inc(int(non_finite.sum()))
                        if not warned_non_finite:
                            warnings.warn(
                                f"GA objective returned "
                                f"{int(non_finite.sum())} non-finite fitness "
                                "value(s); treating them as +inf",
                                RuntimeWarning,
                                stacklevel=2,
                            )
                            warned_non_finite = True
                        fitness = np.where(non_finite, np.inf, fitness)
                    if on_generation is not None:
                        on_generation(generation, coded, fitness)
                    evaluations += self.population
                    _GENERATIONS.inc()
                    _EVALUATIONS.inc(self.population)
                    gen_best = int(np.argmin(fitness))
                    if (
                        best_genome is None
                        or fitness[gen_best] < best_value - 1e-12
                    ):
                        best_value = float(fitness[gen_best])
                        best_genome = genomes[gen_best].copy()
                        stall = 0
                    else:
                        stall += 1
                    history.append(best_value)
                    gen_span.set_attrs(best_value=best_value, stall=stall)
                if self.patience is not None and stall >= self.patience:
                    break

                # Next generation: elitism + tournament/crossover/mutation.
                order = np.argsort(fitness)
                next_genomes = [genomes[i].copy() for i in order[: self.elite]]
                while len(next_genomes) < self.population:
                    pa = genomes[self._select(fitness, rng)]
                    pb = genomes[self._select(fitness, rng)]
                    if rng.random() < self.crossover_rate:
                        mask = rng.random(genomes.shape[1]) < 0.5
                        child = np.where(mask, pa, pb)
                    else:
                        child = pa.copy()
                    mutate = rng.random(genomes.shape[1]) < self.mutation_rate
                    for j in np.flatnonzero(mutate):
                        child[j] = rng.integers(self._n_levels[j])
                    next_genomes.append(child)
                genomes = np.vstack(next_genomes)
            top.set_attrs(evaluations=evaluations, best_value=best_value)

        best_coded = self._decode_genomes(best_genome[None, :])[0]
        return SearchResult(
            best_point=self.space.decode(best_coded),
            best_coded=best_coded,
            best_value=best_value,
            evaluations=evaluations,
            history=history,
        )

"""Baseline search strategies, for comparison with the GA."""

from __future__ import annotations

import itertools
from typing import Callable

import numpy as np

from repro.search.ga import Objective, SearchResult
from repro.space import ParameterSpace


def random_search(
    space: ParameterSpace,
    objective: Objective,
    n_evaluations: int,
    rng: np.random.Generator,
    batch: int = 256,
) -> SearchResult:
    """Uniform random search over the space's grid."""
    best_coded = None
    best_value = np.inf
    done = 0
    history = []
    while done < n_evaluations:
        take = min(batch, n_evaluations - done)
        points = space.random_points(take, rng)
        coded = space.encode_matrix(points)
        values = np.asarray(objective(coded), dtype=float)
        done += take
        i = int(np.argmin(values))
        if values[i] < best_value:
            best_value = float(values[i])
            best_coded = coded[i].copy()
        history.append(best_value)
    return SearchResult(
        best_point=space.decode(best_coded),
        best_coded=best_coded,
        best_value=best_value,
        evaluations=done,
        history=history,
    )


def exhaustive_search(
    space: ParameterSpace,
    objective: Objective,
    max_points: int = 200_000,
    batch: int = 4096,
) -> SearchResult:
    """Enumerate the full grid (guarded by ``max_points``).

    Useful to validate the GA on small subspaces where the true optimum
    is computable.
    """
    total = space.size()
    if total > max_points:
        raise ValueError(
            f"space has {total} points, exceeding max_points={max_points}"
        )
    level_lists = [
        [v.encode(val) for val in v.level_values()] for v in space.variables
    ]
    best_coded = None
    best_value = np.inf
    evaluations = 0
    rows = []
    for combo in itertools.product(*level_lists):
        rows.append(combo)
        if len(rows) == batch:
            coded = np.array(rows)
            values = np.asarray(objective(coded), dtype=float)
            evaluations += coded.shape[0]
            i = int(np.argmin(values))
            if values[i] < best_value:
                best_value = float(values[i])
                best_coded = coded[i].copy()
            rows = []
    if rows:
        coded = np.array(rows)
        values = np.asarray(objective(coded), dtype=float)
        evaluations += coded.shape[0]
        i = int(np.argmin(values))
        if values[i] < best_value:
            best_value = float(values[i])
            best_coded = coded[i].copy()
    return SearchResult(
        best_point=space.decode(best_coded),
        best_coded=best_coded,
        best_value=best_value,
        evaluations=evaluations,
        history=[best_value],
    )

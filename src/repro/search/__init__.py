"""Model-based search for optimal settings (paper Section 6.3).

Once an empirical model exists, it can predict the response at arbitrary
design points at virtually no cost, so the compiler subspace can be
searched for the flag/heuristic settings minimizing predicted execution
time while the microarchitectural parameters are held frozen.  The paper
uses a genetic algorithm; a random-search baseline and an exhaustive
search (for small spaces) are provided for comparison.
"""

from repro.search.ga import GeneticSearch, SearchResult
from repro.search.baselines import random_search, exhaustive_search

__all__ = [
    "GeneticSearch",
    "SearchResult",
    "random_search",
    "exhaustive_search",
]

"""Reproduction of "Microarchitecture Sensitive Empirical Models for Compiler
Optimizations" (Vaswani et al., CGO 2007).

The package contains two halves:

* the *measurement substrate* -- a MiniC optimizing compiler
  (:mod:`repro.minic`, :mod:`repro.ir`, :mod:`repro.opt`,
  :mod:`repro.codegen`), a SimpleScalar-style out-of-order simulator
  (:mod:`repro.sim`) and synthetic SPEC-like workloads
  (:mod:`repro.workloads`); and

* the *empirical modeling core* -- parameter spaces (:mod:`repro.space`),
  D-optimal experimental designs (:mod:`repro.doe`), linear/MARS/RBF
  regression models (:mod:`repro.models`), genetic-algorithm search
  (:mod:`repro.search`) and the iterative model-building pipeline
  (:mod:`repro.pipeline`).

:mod:`repro.harness` glues the halves together and regenerates every table
and figure in the paper's evaluation.
"""

from repro.space import (
    ParameterSpace,
    Variable,
    VariableKind,
    compiler_space,
    full_space,
    microarch_space,
)

__all__ = [
    "Variable",
    "VariableKind",
    "ParameterSpace",
    "compiler_space",
    "microarch_space",
    "full_space",
]

__version__ = "1.0.0"

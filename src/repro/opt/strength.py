"""-fstrength-reduce: induction-variable strength reduction.

For each loop, basic induction variables (temps updated exactly once per
iteration by ``iv = add iv, c`` in the latch block) are found, and every
loop-resident multiplication ``d = mul iv, k`` (``k`` a constant) is
rewritten: a new register ``div`` is initialized to ``iv * k`` in the
preheader, advanced by ``c * k`` immediately after the IV update, and the
multiply becomes a copy.  This converts a 3-cycle IMULT into a 1-cycle
IALU add per iteration at the cost of one extra live register, so it
interacts with register pressure exactly the way the paper's Figure 3
discussion anticipates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.static import remarks
from repro.ir import BinOp, Copy, Function, Module, Temp
from repro.ir.dataflow import def_use_counts
from repro.ir.loops import Loop, ensure_preheader, natural_loops
from repro.ir.types import Type
from repro.ir.values import Const


@dataclass
class BasicIV:
    """A basic induction variable ``temp += step`` once per iteration."""

    temp: Temp
    step: int
    #: Latch block containing the update, and the update's index there.
    latch_label: str
    update_index: int


def find_basic_ivs(func: Function, loop: Loop) -> List[BasicIV]:
    """Basic IVs of a loop.

    Requirements: the temp is written exactly once inside the loop, the
    write is ``iv = add iv, const`` (or ``sub``), and it sits in a latch
    block (executed once per iteration on the back edge).
    """
    # Count defs of each temp inside the loop.
    def_count: Dict[Temp, int] = {}
    for label in loop.body:
        for instr in func.block(label).all_instrs():
            d = instr.defs()
            if d is not None:
                def_count[d] = def_count.get(d, 0) + 1

    ivs: List[BasicIV] = []
    for latch_label in loop.latches:
        block = func.block(latch_label)
        for i, instr in enumerate(block.instrs):
            if not isinstance(instr, BinOp):
                continue
            if instr.op not in ("add", "sub"):
                continue
            if instr.dst != instr.a or not isinstance(instr.b, Const):
                continue
            if def_count.get(instr.dst, 0) != 1:
                continue
            step = instr.b.value if instr.op == "add" else -instr.b.value
            # Only meaningful with a single latch: multiple back edges
            # would update more than once per iteration.
            if len(loop.latches) != 1:
                continue
            ivs.append(BasicIV(instr.dst, step, latch_label, i))
    return ivs


def strength_reduce(module: Module, config=None) -> int:
    """Rewrite IV multiplications in all functions; returns #rewritten."""
    total = 0
    for func in module.functions.values():
        loops = natural_loops(func)
        # Innermost loops first: their multiplies are the hottest.
        for loop in sorted(loops, key=lambda l: -l.depth):
            total += _reduce_loop(func, loop)
    return total


def _reduce_loop(func: Function, loop: Loop) -> int:
    ivs = find_basic_ivs(func, loop)
    if not ivs:
        remarks.emit(
            "strength",
            "declined",
            func.name,
            loop.header,
            "no basic induction variable",
            depth=loop.depth,
        )
        return 0
    defs, _uses = def_use_counts(func)
    iv_by_temp = {iv.temp: iv for iv in ivs}

    # Find candidate multiplies: d = mul iv, k with k const, d single-def,
    # located anywhere in the loop.  Layout order: the rewrite order
    # names new temps, so it must not follow set (hash) order.
    candidates: List[Tuple[str, int, Temp, BasicIV, int]] = []
    for label in loop.body_in_layout_order(func):
        block = func.block(label)
        for i, instr in enumerate(block.instrs):
            if not isinstance(instr, BinOp) or instr.op != "mul":
                continue
            iv = None
            k = None
            if isinstance(instr.a, Temp) and instr.a in iv_by_temp and isinstance(instr.b, Const):
                iv, k = iv_by_temp[instr.a], instr.b.value
            elif isinstance(instr.b, Temp) and instr.b in iv_by_temp and isinstance(instr.a, Const):
                iv, k = iv_by_temp[instr.b], instr.a.value
            if iv is None or defs.get(instr.dst, 0) != 1:
                continue
            candidates.append((label, i, instr.dst, iv, k))

    if not candidates:
        remarks.emit(
            "strength",
            "declined",
            func.name,
            loop.header,
            "no loop-resident multiply of an induction variable",
            depth=loop.depth,
        )
        return 0

    pre_label = ensure_preheader(func, loop)
    pre = func.block(pre_label)

    # Group rewrites by latch so the derived-IV updates are inserted in a
    # stable order after the basic IV update.
    rewritten = 0
    latch_inserts: Dict[str, List[Tuple[int, BinOp]]] = {}
    for label, index, dst, iv, k in candidates:
        derived = func.new_temp(Type.INT, hint="siv")
        # Preheader: derived = iv * k (iv's entry value is readable there).
        pre.instrs.append(BinOp(derived, "mul", iv.temp, Const(k, Type.INT)))
        # Replace the multiply with a copy of the derived register.
        func.block(label).instrs[index] = Copy(dst, derived)
        # After the IV update: derived += step * k.
        update = BinOp(
            derived, "add", derived, Const(iv.step * k, Type.INT)
        )
        latch_inserts.setdefault(iv.latch_label, []).append(
            (iv.update_index, update)
        )
        rewritten += 1

    for latch_label, inserts in latch_inserts.items():
        block = func.block(latch_label)
        # Insert after the IV update, later insertions first so earlier
        # recorded indices stay valid.
        for update_index, update in sorted(inserts, key=lambda x: -x[0]):
            block.instrs.insert(update_index + 1, update)
    if remarks.enabled():
        # IMULT (3 cy) becomes IALU add (1 cy): 2 cycles per execution.
        remarks.emit(
            "strength",
            "fired",
            func.name,
            loop.header,
            f"rewrote {rewritten} induction-variable multiply(ies)"
            " as strength-reduced additions",
            benefit=2.0 * rewritten * remarks.depth_freq(loop.depth),
            rewritten=rewritten,
            depth=loop.depth,
        )
    return rewritten

"""-funroll-loops: runtime loop unrolling with a remainder loop.

Handles counted loops whose trip count is computable *at loop entry*
(gcc's wording for -funroll-loops): a header test ``cmp(iv, bound)``
feeding the exit branch, a single latch carrying ``iv += step``, and no
other exits.  The loop is rewritten as

    preheader -> H' (guard: >= u iterations left?) -> B1 B2 ... Bu -> H'
                   \\-> H (original loop, serves as the remainder)

where the guard compares against ``bound - (u-1)*step``, the unrolled
body is ``u`` clones of the original body (each containing the IV
update), and the untouched original loop mops up the leftover iterations.

Heuristics (Table 1, rows 13-14): a loop qualifies when its size is at
most ``max_unrolled_insns``; the unroll factor is
``min(max_unroll_times, max_unrolled_insns // size)``.

Only innermost loops are unrolled.  Cloned blocks reuse the original
virtual registers (the IR is not SSA), so unrolling lengthens live ranges
and raises register pressure -- the effect behind the paper's Figure 3.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.ir import (
    Addr,
    BasicBlock,
    BinOp,
    Branch,
    Call,
    Cmp,
    Function,
    Jump,
    Load,
    Module,
    Temp,
)
from repro.analysis.static import remarks
from repro.ir.dataflow import liveness
from repro.ir.instructions import Instr, Terminator
from repro.ir.loops import Loop, ensure_preheader, natural_loops
from repro.ir.types import Type
from repro.ir.values import Const, Value
from repro.opt.flags import CompilerConfig
from repro.opt.loopopt import loop_memory_summary
from repro.opt.strength import BasicIV, find_basic_ivs


def clone_instruction(instr: Instr) -> Instr:
    """A safely mutable copy of an instruction."""
    clone = copy.copy(instr)
    if isinstance(clone, Call):
        clone.args = list(clone.args)
    return clone


@dataclass
class _CountedLoop:
    loop: Loop
    iv: BasicIV
    #: Index in the header of the Cmp feeding the exit branch.
    cmp_index: int
    #: True if the IV is the first operand of the comparison.
    iv_is_left: bool
    #: The loop-continuation target and the exit target of the header branch.
    body_entry: str
    exit_target: str


def _analyze_counted_loop(
    func: Function, loop: Loop
) -> Tuple[Optional[_CountedLoop], str]:
    """Analyze a loop for unrolling; returns (info, decline-reason).

    Exactly one of the pair is meaningful: ``info`` is None iff the
    loop is not unrollable, and then the reason says why (surfaced
    through optimization remarks).
    """
    if loop.children:
        return None, "not innermost"
    if len(loop.latches) != 1:
        return None, "multiple latches"
    header = func.block(loop.header)
    term = header.terminator
    if not isinstance(term, Branch):
        return None, "header does not end in a conditional branch"
    # Exactly one target inside the loop, one outside.
    then_in = term.then_target in loop.body
    else_in = term.else_target in loop.body
    if then_in == else_in:
        return None, "header branch is not a loop exit"
    if not then_in:
        # Expect the fallthrough-into-body shape from lowering.
        return None, "exit on the fall-through arm"
    body_entry, exit_target = term.then_target, term.else_target
    # The header is cloned into the unrolled-loop guard, which runs once
    # per *unrolled* iteration instead of once per original iteration, so
    # it must be side-effect free and its loads must not alias any store
    # in the loop (otherwise the guard would test a stale bound).
    stored, unknown_stores = loop_memory_summary(func, loop)
    addr_of: Dict[Temp, str] = {}
    for b in func.blocks:
        for ins in b.instrs:
            if isinstance(ins, Addr):
                addr_of[ins.dst] = ins.symbol
    for instr in header.instrs:
        if instr.has_side_effects:
            return None, "header has side effects"
        if isinstance(instr, Load):
            if unknown_stores:
                return None, "header load vs unknown stores in loop"
            if not isinstance(instr.base, Temp) or instr.base not in addr_of:
                return None, "header load from unresolved address"
            if addr_of[instr.base] in stored:
                return None, "header load aliases a store in the loop"
    # No exits from non-header blocks.
    for label in loop.body:
        if label == loop.header:
            continue
        block = func.block(label)
        targets = block.terminator.targets()
        if not targets:  # Return inside the loop
            return None, "return inside the loop body"
        if any(t not in loop.body for t in targets):
            return None, "exit from a non-header block"
    # Find the comparison defining the branch condition: the last def of
    # the cond temp in the header must be a Cmp.
    cond = term.cond
    if not isinstance(cond, Temp):
        return None, "branch condition is not a temp"
    cmp_index = None
    for i in range(len(header.instrs) - 1, -1, -1):
        instr = header.instrs[i]
        if instr.defs() == cond:
            if isinstance(instr, Cmp):
                cmp_index = i
            break
    if cmp_index is None:
        return None, "no comparison defines the exit condition"
    cmp = header.instrs[cmp_index]
    if cmp.op not in ("lt", "le", "gt", "ge"):
        return None, f"exit comparison {cmp.op!r} is not an ordering"

    ivs = {iv.temp: iv for iv in find_basic_ivs(func, loop)}
    iv = None
    iv_is_left = True
    if isinstance(cmp.a, Temp) and cmp.a in ivs and cmp.a.type is Type.INT:
        iv = ivs[cmp.a]
        iv_is_left = True
        bound = cmp.b
    elif isinstance(cmp.b, Temp) and cmp.b in ivs and cmp.b.type is Type.INT:
        iv = ivs[cmp.b]
        iv_is_left = False
        bound = cmp.a
    if iv is None:
        return None, "no basic induction variable in the exit test"
    # The bound operand must not be the IV itself and must be an int.
    if isinstance(bound, Temp) and bound.type is not Type.INT:
        return None, "loop bound is not an integer"
    # Direction consistency: the loop must move the IV toward the exit.
    continues_while_small = (cmp.op in ("lt", "le")) == iv_is_left
    if continues_while_small and iv.step <= 0:
        return None, "induction variable steps away from the bound"
    if not continues_while_small and iv.step >= 0:
        return None, "induction variable steps away from the bound"
    # The IV must not be updated in the header (update lives in the latch;
    # if latch == header the update must come after the comparison).
    if iv.latch_label == loop.header and iv.update_index < cmp_index:
        return None, "induction variable updated before the exit test"
    counted = _CountedLoop(
        loop, iv, cmp_index, iv_is_left, body_entry, exit_target
    )
    return counted, ""


def _loop_size(func: Function, loop: Loop) -> int:
    return sum(
        len(func.block(label).instrs) + 1 for label in loop.body
    )


def _clone_blocks(
    func: Function,
    labels: List[str],
    suffix: str,
    rename: Optional[Set[Temp]] = None,
) -> Dict[str, BasicBlock]:
    """Clone blocks with fresh labels; returns old->new block map.

    Internal edges are rewired to the clones; edges leaving ``labels``
    are preserved.  Temps in ``rename`` (those whose live range is
    contained within one iteration) get fresh names in the clone --
    iteration-private renaming, which lets the pre-RA scheduler overlap
    copies and is what turns deep unrolling into register pressure.
    """
    label_map = {label: func.fresh_label(f"u{suffix}_") for label in labels}
    temp_map: Dict[Temp, Temp] = {}

    def mapped(t: Temp) -> Temp:
        if rename is None or t not in rename:
            return t
        if t not in temp_map:
            temp_map[t] = func.new_temp(t.type, hint=f"u{suffix}_{t.name}_")
        return temp_map[t]

    clones: Dict[str, BasicBlock] = {}
    for label in labels:
        src = func.block(label)
        clone = BasicBlock(label_map[label])
        for instr in src.instrs:
            mapping = {
                u: mapped(u)
                for u in instr.uses()
                if isinstance(u, Temp) and rename and u in rename
            }
            new_instr = instr.replace_uses(mapping)
            if new_instr is instr:
                new_instr = clone_instruction(instr)
            elif isinstance(new_instr, Call):
                new_instr.args = list(new_instr.args)
            d = new_instr.defs()
            if d is not None and rename and d in rename:
                new_instr.dst = mapped(d)
            clone.instrs.append(new_instr)
        term = copy.copy(src.terminator)
        if rename:
            term_mapping = {
                u: mapped(u)
                for u in term.uses()
                if isinstance(u, Temp) and u in rename
            }
            if term_mapping:
                term = term.replace_uses(term_mapping)
        clone.set_terminator(term.retarget(label_map))
        clones[label] = clone
        # Register the label immediately so fresh_label stays unique.
        func.add_block(clone)
    return clones


def unroll_loops(module: Module, config: CompilerConfig) -> int:
    """Unroll eligible innermost loops; returns the number unrolled."""
    total = 0
    for func in module.functions.values():
        # Headers already handled: both the remainder loop (which keeps
        # the original header) and the new guard loop must not be
        # re-unrolled on the next analysis round.
        processed: Set[str] = set()
        # Headers whose decline has already been remarked (the analysis
        # reruns every round, so without this a stable decline would be
        # reported up to 32 times).
        reported: Set[str] = set()

        def decline(loop: Loop, reason: str, **details: object) -> None:
            if loop.header in reported:
                return
            reported.add(loop.header)
            remarks.emit(
                "unroll",
                "declined",
                func.name,
                loop.header,
                reason,
                depth=loop.depth,
                **details,
            )

        # Re-analyze after each unroll: the CFG changes under us.
        for _ in range(32):
            done = True
            for loop in natural_loops(func):
                if loop.header in processed:
                    continue
                counted, reason = _analyze_counted_loop(func, loop)
                if counted is None:
                    if remarks.enabled():
                        decline(loop, reason)
                    continue
                size = _loop_size(func, loop)
                if size > config.max_unrolled_insns:
                    if remarks.enabled():
                        decline(
                            loop,
                            f"loop too large ({size} >"
                            f" {config.max_unrolled_insns} insns)",
                            size=size,
                        )
                    continue
                factor = min(
                    config.max_unroll_times,
                    max(2, config.max_unrolled_insns // max(size, 1)),
                )
                if factor < 2:
                    if remarks.enabled():
                        decline(
                            loop,
                            f"max_unroll_times {config.max_unroll_times}"
                            " allows no unrolling",
                            size=size,
                        )
                    continue
                guard_label = _unroll_one(func, counted, factor)
                if guard_label is not None:
                    processed.add(loop.header)
                    processed.add(guard_label)
                    remarks.emit(
                        "unroll",
                        "fired",
                        func.name,
                        loop.header,
                        f"unrolled by {factor}x ({size} insns/iteration)",
                        benefit=factor * remarks.depth_freq(loop.depth) / 4.0,
                        factor=factor,
                        size=size,
                        depth=loop.depth,
                    )
                    total += 1
                    done = False
                    break  # loop structures are stale; re-analyze
                elif remarks.enabled():
                    decline(loop, "self-loop body cannot be cloned")
            if done:
                break
    return total


def _unroll_one(
    func: Function, counted: _CountedLoop, factor: int
) -> Optional[str]:
    """Unroll one loop; returns the guard-loop header label, or None."""
    loop = counted.loop
    iv = counted.iv
    header = func.block(loop.header)

    pre_label = ensure_preheader(func, loop)

    # Iteration-private temps: defined in the body but not live across
    # the iteration boundary (not live into the body from the header and
    # not live out of the latch).  These are safe to rename per clone.
    # (Computed now, while every block still has a terminator.)
    live = liveness(func)
    boundary: Set[Temp] = set(live.live_in[counted.body_entry])
    boundary |= live.live_out[iv.latch_label]

    # --- Build the unrolled-loop header H2: a clone of H whose
    # comparison is tightened by (factor-1)*step on the bound side.
    h2 = BasicBlock(func.fresh_label("uh_"))
    h2.instrs = [clone_instruction(i) for i in header.instrs]
    cmp = h2.instrs[counted.cmp_index]
    adjust = (factor - 1) * iv.step
    bound_adj = func.new_temp(Type.INT, hint="ubound")
    bound_operand = cmp.b if counted.iv_is_left else cmp.a
    h2.instrs.insert(
        counted.cmp_index,
        BinOp(bound_adj, "sub", bound_operand, Const(adjust, Type.INT)),
    )
    cmp = h2.instrs[counted.cmp_index + 1]
    if counted.iv_is_left:
        cmp.b = bound_adj
    else:
        cmp.a = bound_adj
    func.add_block(h2)

    # --- Clone the loop body (all blocks except the header) factor times.
    body_labels = [
        b.label for b in func.blocks if b.label in loop.body and b.label != loop.header
    ]
    if not body_labels:
        # Self-loop: the header is also the body; unroll by cloning the
        # header's straight-line part is not supported.
        func.remove_block(h2.label)
        return None

    body_defs: Set[Temp] = set()
    for label in body_labels:
        for instr in func.block(label).all_instrs():
            d = instr.defs()
            if d is not None:
                body_defs.add(d)
    rename = body_defs - boundary

    clone_maps: List[Dict[str, BasicBlock]] = []
    for k in range(factor):
        clone_maps.append(_clone_blocks(func, body_labels, str(k), rename))

    # Wire copy k's back edge (latch -> header) to copy k+1's entry;
    # the last copy loops back to H2.
    for k in range(factor):
        latch_clone = clone_maps[k][counted.iv.latch_label]
        if k + 1 < factor:
            next_entry = clone_maps[k + 1][counted.body_entry].label
        else:
            next_entry = h2.label
        latch_clone.set_terminator(
            latch_clone.terminator.retarget({loop.header: next_entry})
        )

    # H2 branches into the first copy, or falls back to the original
    # (remainder) loop header.
    h2.set_terminator(
        Branch(
            header.terminator.cond,
            clone_maps[0][counted.body_entry].label,
            loop.header,
        )
    )

    # Preheader now enters through H2.
    pre = func.block(pre_label)
    pre.set_terminator(pre.terminator.retarget({loop.header: h2.label}))

    # --- Layout: place H2 and the clones just before the remainder loop.
    new_labels = [h2.label] + [
        clone_maps[k][label].label for k in range(factor) for label in body_labels
    ]
    new_blocks = [func.block(l) for l in new_labels]
    for b in new_blocks:
        func.blocks.remove(b)
    header_pos = func.blocks.index(header)
    for offset, b in enumerate(new_blocks):
        func.blocks.insert(header_pos + offset, b)
    func.reindex()
    return h2.label

"""-fgcse: global common subexpression elimination.

Per the paper's Table 1, the gcc pass also performs constant and copy
propagation; we do the same.

The CSE itself is a dominator-tree-scoped value-numbering walk.  Because
the IR is not SSA, only *single-definition* temps participate: an
expression is available at a use when (a) its operands are constants or
single-def temps and (b) an identical expression result lives in a
single-def temp whose defining block dominates the use.  Multi-def temps
(user variables, induction variables) are never used as sources or
operands of reused expressions, which keeps the walk sound without SSA
construction.  Loads are value-numbered block-locally, invalidated at
stores and calls.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir import (
    Addr,
    BinOp,
    Call,
    Cmp,
    Copy,
    Function,
    Load,
    Module,
    Store,
    Temp,
    UnOp,
)
from repro.analysis.static import remarks
from repro.ir.dataflow import def_use_counts
from repro.ir.dominators import dominator_tree
from repro.ir.instructions import COMMUTATIVE_OPS
from repro.ir.values import Const, Value


def _operand_key(v: Value, single_def: Set[Temp]) -> Optional[tuple]:
    if isinstance(v, Const):
        return ("const", v.type, v.value)
    if v in single_def:
        return ("temp", v.name)
    return None


def _expr_key(instr, single_def: Set[Temp]) -> Optional[tuple]:
    """A hashable value-number key for a pure instruction, or None."""
    if isinstance(instr, Addr):
        return ("addr", instr.symbol)
    if isinstance(instr, BinOp):
        a = _operand_key(instr.a, single_def)
        b = _operand_key(instr.b, single_def)
        if a is None or b is None:
            return None
        if instr.op in COMMUTATIVE_OPS and b < a:
            a, b = b, a
        return ("bin", instr.op, a, b)
    if isinstance(instr, UnOp):
        a = _operand_key(instr.a, single_def)
        if a is None:
            return None
        return ("un", instr.op, a)
    if isinstance(instr, Cmp):
        a = _operand_key(instr.a, single_def)
        b = _operand_key(instr.b, single_def)
        if a is None or b is None:
            return None
        return ("cmp", instr.op, a, b)
    return None


def _load_key(instr: Load, single_def: Set[Temp]) -> Optional[tuple]:
    base = _operand_key(instr.base, single_def)
    offset = _operand_key(instr.offset, single_def)
    if base is None or offset is None:
        return None
    return ("load", base, offset)


def global_cse(module: Module, config=None) -> int:
    """Run GCSE + global constant/copy propagation on every function.

    Iterated to a (bounded) fixpoint: each CSE round introduces copies
    that, once propagated, expose further redundancies (e.g. two loads of
    the same global through distinct address temps unify only after the
    address temps have been merged).
    """
    total = 0
    for func in module.functions.values():
        func_changed = 0
        for _ in range(4):
            changed = _propagate_copies_globally(func)
            changed += _cse_function(func)
            func_changed += changed
            if changed == 0:
                break
        total += func_changed
        if remarks.enabled():
            if func_changed:
                remarks.emit(
                    "gcse",
                    "fired",
                    func.name,
                    func.entry.label,
                    f"propagated/unified {func_changed} redundant"
                    " expression(s)",
                    benefit=float(func_changed),
                    removed=func_changed,
                )
            else:
                remarks.emit(
                    "gcse",
                    "declined",
                    func.name,
                    func.entry.label,
                    "no redundant expressions found",
                )
    return total


def _propagate_copies_globally(func: Function) -> int:
    """Global constant/copy propagation over single-def temps.

    If single-def temp ``t`` is defined as ``t = const`` or ``t = s``
    (``s`` itself single-def), every use of ``t`` can be rewritten to the
    source; iterated to resolve copy chains.
    """
    changed_total = 0
    for _ in range(4):
        defs, _uses = def_use_counts(func)
        single_def = {t for t, n in defs.items() if n == 1}
        replacement: Dict[Temp, Value] = {}
        for block in func.blocks:
            for instr in block.instrs:
                if (
                    isinstance(instr, Copy)
                    and instr.dst in single_def
                ):
                    src = instr.src
                    if isinstance(src, Const) or (
                        isinstance(src, Temp) and src in single_def
                    ):
                        replacement[instr.dst] = src
        if not replacement:
            break
        # Resolve chains t -> s -> const.
        def resolve(v: Value) -> Value:
            seen = set()
            while isinstance(v, Temp) and v in replacement and v not in seen:
                seen.add(v)
                v = replacement[v]
            return v

        changed = 0
        for block in func.blocks:
            new_instrs = []
            for instr in block.all_instrs():
                mapping = {}
                for u in instr.uses():
                    if isinstance(u, Temp) and u in replacement:
                        mapping[u] = resolve(u)
                if mapping:
                    instr = instr.replace_uses(mapping)
                    changed += 1
                new_instrs.append(instr)
            if block.terminator is not None:
                block.instrs = new_instrs[:-1]
                block.set_terminator(new_instrs[-1])
            else:
                block.instrs = new_instrs
        changed_total += changed
        if changed == 0:
            break
    return changed_total


def _cse_function(func: Function) -> int:
    defs, _uses = def_use_counts(func)
    single_def = {t for t, n in defs.items() if n == 1}
    tree = dominator_tree(func)
    replaced = 0

    # Scoped hash table: expression key -> defining temp.
    scopes: List[Dict[tuple, Temp]] = [{}]

    def lookup(key: tuple) -> Optional[Temp]:
        for scope in reversed(scopes):
            if key in scope:
                return scope[key]
        return None

    def process_block(label: str) -> None:
        nonlocal replaced
        block = func.block(label)
        # Loads are only safe to reuse within the block, between stores.
        local_loads: Dict[tuple, Temp] = {}
        new_instrs = []
        for instr in block.instrs:
            if isinstance(instr, (Store, Call)):
                local_loads.clear()
                new_instrs.append(instr)
                continue
            if isinstance(instr, Load):
                key = _load_key(instr, single_def)
                if key is not None and instr.dst in single_def:
                    prior = local_loads.get(key)
                    if prior is not None:
                        new_instrs.append(Copy(instr.dst, prior))
                        replaced += 1
                        continue
                    local_loads[key] = instr.dst
                new_instrs.append(instr)
                continue
            key = _expr_key(instr, single_def)
            d = instr.defs()
            if key is not None and d is not None and d in single_def:
                prior = lookup(key)
                if prior is not None and prior != d:
                    new_instrs.append(Copy(d, prior))
                    replaced += 1
                    continue
                scopes[-1][key] = d
            new_instrs.append(instr)
        block.instrs = new_instrs

    # Iterative dominator-tree preorder with scope push/pop markers, so
    # deep trees (heavily unrolled code) cannot overflow the Python stack.
    stack: List[tuple] = [("visit", func.entry.label)]
    while stack:
        action, label = stack.pop()
        if action == "pop":
            scopes.pop()
            continue
        scopes.append({})
        process_block(label)
        stack.append(("pop", label))
        for child in reversed(tree.get(label, [])):
            stack.append(("visit", child))
    return replaced

"""The optimization pass pipeline.

Pass order follows gcc's: interprocedural (inlining) first, then scalar
and loop optimizations on the IR, with always-on cleanups between passes,
and layout last so nothing disturbs it.  ``-fschedule-insns2`` and
``-fomit-frame-pointer`` act in the backend and are not dispatched here.

Every dispatched pass runs inside an ``opt.<pass>`` tracing span carrying
the module's IR instruction count before and after (the interleaved
cleanup is attributed to the pass that made it necessary), and the size
delta feeds the ``opt.delta.<pass>`` histogram — so a trace dump shows
both where compile time goes and which pass grows or shrinks the IR.
"""

from __future__ import annotations

from typing import Callable

from repro.ir import Module
from repro.obs import histogram, span
from repro.opt.cleanup import cleanup_module
from repro.opt.flags import CompilerConfig
from repro.opt.gcse import global_cse
from repro.opt.inline import inline_functions
from repro.opt.loopopt import loop_optimize
from repro.opt.prefetch import prefetch_loop_arrays
from repro.opt.reorder import reorder_blocks
from repro.opt.strength import strength_reduce
from repro.opt.unroll import unroll_loops


def _run_pass(module: Module, name: str, fn: Callable[[], None]) -> None:
    """Run one pass under a span, recording the IR-size delta."""
    with span("opt." + name) as sp:
        before = module.instruction_count()
        fn()
        after = module.instruction_count()
        sp.set_attrs(instrs_before=before, instrs_after=after)
    histogram("opt.delta." + name).observe(after - before)


def optimize_module(module: Module, config: CompilerConfig) -> Module:
    """Run the flag-selected optimization pipeline in place."""
    with span("opt.pipeline"):
        _run_pass(module, "cleanup", lambda: cleanup_module(module))
        if config.inline_functions:
            _run_pass(
                module,
                "inline",
                lambda: (inline_functions(module, config), cleanup_module(module)),
            )
        if config.loop_optimize:
            _run_pass(
                module,
                "loopopt",
                lambda: (loop_optimize(module), cleanup_module(module)),
            )
        if config.gcse:
            _run_pass(
                module,
                "gcse",
                lambda: (global_cse(module), cleanup_module(module)),
            )
        # Prefetching must see the raw iv*scale address arithmetic, so it
        # runs before strength reduction rewrites those multiplies.
        if config.prefetch_loop_arrays:
            _run_pass(module, "prefetch", lambda: prefetch_loop_arrays(module))
        if config.strength_reduce:
            _run_pass(
                module,
                "strength",
                lambda: (strength_reduce(module), cleanup_module(module)),
            )
        if config.unroll_loops:
            _run_pass(
                module,
                "unroll",
                lambda: (unroll_loops(module, config), cleanup_module(module)),
            )
        if config.reorder_blocks:
            _run_pass(module, "reorder", lambda: reorder_blocks(module))
    return module

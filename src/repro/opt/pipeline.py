"""The optimization pass pipeline.

Pass order follows gcc's: interprocedural (inlining) first, then scalar
and loop optimizations on the IR, with always-on cleanups between passes,
and layout last so nothing disturbs it.  ``-fschedule-insns2`` and
``-fomit-frame-pointer`` act in the backend and are not dispatched here.

Every dispatched pass runs inside an ``opt.<pass>`` tracing span carrying
the module's IR instruction count before and after (the interleaved
cleanup is attributed to the pass that made it necessary), and the size
delta feeds the ``opt.delta.<pass>`` histogram — so a trace dump shows
both where compile time goes and which pass grows or shrinks the IR.

The plan itself is data: :func:`pass_plan` returns the ``(name, thunk)``
sequence a config selects, which lets the sanitizer's miscompile
bisector replay the pipeline one pass at a time and lets the verifier
deep-check the module after each pass under ``REPRO_VERIFY=full``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.ir import Module
from repro.obs import histogram, span
from repro.opt.cleanup import cleanup_module
from repro.opt.flags import CompilerConfig
from repro.opt.gcse import global_cse
from repro.opt.inline import inline_functions
from repro.opt.loopopt import loop_optimize
from repro.opt.prefetch import prefetch_loop_arrays
from repro.opt.reorder import reorder_blocks
from repro.opt.strength import strength_reduce
from repro.opt.unroll import unroll_loops

#: Test-only fault injection: pass name -> mutator applied to the module
#: right after that pass runs.  The sanitizer tests use this to plant a
#: miscompile behind a named pass and assert the bisector attributes it
#: correctly.  Empty in production; never set outside tests.
_PASS_WRECKERS: Dict[str, Callable[[Module], None]] = {}


def _apply(name: str, fn: Callable[[Module], None], module: Module) -> None:
    fn(module)
    wrecker = _PASS_WRECKERS.get(name)
    if wrecker is not None:
        wrecker(module)


def pass_plan(
    config: CompilerConfig,
) -> List[Tuple[str, Callable[[Module], None]]]:
    """The ``(pass name, module mutator)`` sequence a config selects.

    Each entry is self-contained (it includes the interleaved cleanup
    the pass requires), so callers may replay any prefix of the plan on
    a fresh module copy and observe exactly the pipeline's intermediate
    states.
    """
    plan: List[Tuple[str, Callable[[Module], None]]] = [
        ("cleanup", lambda m: _apply("cleanup", cleanup_module, m))
    ]

    def staged(name: str, opt: Callable[[Module], None], tidy: bool = True):
        def run(m: Module) -> None:
            if tidy:
                _apply(name, lambda mm: (opt(mm), cleanup_module(mm)), m)
            else:
                _apply(name, opt, m)

        plan.append((name, run))

    if config.inline_functions:
        staged("inline", lambda m: inline_functions(m, config))
    if config.loop_optimize:
        staged("loopopt", loop_optimize)
    if config.gcse:
        staged("gcse", global_cse)
    # Prefetching must see the raw iv*scale address arithmetic, so it
    # runs before strength reduction rewrites those multiplies.
    if config.prefetch_loop_arrays:
        staged("prefetch", prefetch_loop_arrays, tidy=False)
    if config.strength_reduce:
        staged("strength", strength_reduce)
    if config.unroll_loops:
        staged("unroll", lambda m: unroll_loops(m, config))
    if config.reorder_blocks:
        staged("reorder", reorder_blocks, tidy=False)
    return plan


def _run_pass(module: Module, name: str, fn: Callable[[], None]) -> None:
    """Run one pass under a span, recording the IR-size delta."""
    with span("opt." + name) as sp:
        before = module.instruction_count()
        fn()
        after = module.instruction_count()
        sp.set_attrs(instrs_before=before, instrs_after=after)
    histogram("opt.delta." + name).observe(after - before)


def optimize_module(
    module: Module,
    config: CompilerConfig,
    verify_level: Optional[object] = None,
) -> Module:
    """Run the flag-selected optimization pipeline in place.

    ``verify_level`` is a :class:`repro.analysis.VerifyLevel`; at FULL,
    the module is deep-verified after every pass and a violation raises
    :class:`repro.analysis.PassVerificationError` naming the guilty
    pass.  The default (None) performs no per-pass checking, matching
    the historical behaviour.
    """
    deep_check = None
    if verify_level is not None and getattr(verify_level, "is_full", False):
        # Imported lazily: repro.analysis depends on this module, and
        # the default path must not pay the import.
        from repro.analysis.ir_verify import check_module_deep

        deep_check = check_module_deep
    with span("opt.pipeline"):
        for name, fn in pass_plan(config):
            _run_pass(module, name, lambda fn=fn: fn(module))
            if deep_check is not None:
                deep_check(module, pass_name=name)
    return module

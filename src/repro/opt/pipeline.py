"""The optimization pass pipeline.

Pass order follows gcc's: interprocedural (inlining) first, then scalar
and loop optimizations on the IR, with always-on cleanups between passes,
and layout last so nothing disturbs it.  ``-fschedule-insns2`` and
``-fomit-frame-pointer`` act in the backend and are not dispatched here.
"""

from __future__ import annotations

from repro.ir import Module
from repro.opt.cleanup import cleanup_module
from repro.opt.flags import CompilerConfig
from repro.opt.gcse import global_cse
from repro.opt.inline import inline_functions
from repro.opt.loopopt import loop_optimize
from repro.opt.prefetch import prefetch_loop_arrays
from repro.opt.reorder import reorder_blocks
from repro.opt.strength import strength_reduce
from repro.opt.unroll import unroll_loops


def optimize_module(module: Module, config: CompilerConfig) -> Module:
    """Run the flag-selected optimization pipeline in place."""
    cleanup_module(module)
    if config.inline_functions:
        inline_functions(module, config)
        cleanup_module(module)
    if config.loop_optimize:
        loop_optimize(module)
        cleanup_module(module)
    if config.gcse:
        global_cse(module)
        cleanup_module(module)
    # Prefetching must see the raw iv*scale address arithmetic, so it
    # runs before strength reduction rewrites those multiplies.
    if config.prefetch_loop_arrays:
        prefetch_loop_arrays(module)
    if config.strength_reduce:
        strength_reduce(module)
        cleanup_module(module)
    if config.unroll_loops:
        unroll_loops(module, config)
        cleanup_module(module)
    if config.reorder_blocks:
        reorder_blocks(module)
    return module

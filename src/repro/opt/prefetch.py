"""-fprefetch-loop-arrays: software prefetching for array loops.

For each innermost loop, finds loads whose address is ``base + iv*k``
with ``base`` the address of a *large* global array (at least
``MIN_ARRAY_BYTES``) and ``iv`` a basic induction variable, and inserts a
non-binding ``Prefetch`` of the address ``LOOKAHEAD`` iterations ahead.
One prefetch is inserted per distinct (array, stride) stream per loop.

Prefetching hides memory latency on streaming loops but occupies fetch/
issue slots and can pollute small caches -- both effects are modelled by
the simulator, which is what lets the empirical models learn when the
flag pays off (the paper's motivating example for imprecise hardware
models).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.static import remarks
from repro.ir import Addr, BinOp, Copy, Function, Load, Module, Prefetch, Temp
from repro.ir.dataflow import def_use_counts
from repro.ir.loops import Loop, natural_loops
from repro.ir.types import Type
from repro.ir.values import Const

#: Iterations of lookahead for the prefetch distance.
LOOKAHEAD = 16
#: Arrays smaller than this are assumed cache-resident and not prefetched.
MIN_ARRAY_BYTES = 2048


def prefetch_loop_arrays(module: Module, config=None) -> int:
    """Insert prefetches in all functions; returns #prefetches inserted."""
    total = 0
    for func in module.functions.values():
        loops = natural_loops(func)
        for loop in loops:
            if loop.children:
                continue  # innermost only
            total += _prefetch_loop(module, func, loop)
    return total


def _prefetch_loop(module: Module, func: Function, loop: Loop) -> int:
    from repro.opt.strength import find_basic_ivs  # local to avoid a cycle

    ivs = {iv.temp: iv for iv in find_basic_ivs(func, loop)}
    if not ivs:
        remarks.emit(
            "prefetch",
            "declined",
            func.name,
            loop.header,
            "no basic induction variable to derive a stream from",
            depth=loop.depth,
        )
        return 0
    defs, _uses = def_use_counts(func)

    # Map temps to the symbol whose address they carry and to the
    # (iv, scale) pair when they are iv*k products.
    addr_of: Dict[Temp, str] = {}
    scaled: Dict[Temp, Tuple[Temp, int]] = {}
    for block in func.blocks:
        for instr in block.instrs:
            if isinstance(instr, Addr) and defs.get(instr.dst, 0) == 1:
                addr_of[instr.dst] = instr.symbol
            elif (
                isinstance(instr, BinOp)
                and instr.op == "mul"
                and defs.get(instr.dst, 0) == 1
            ):
                if (
                    isinstance(instr.a, Temp)
                    and instr.a in ivs
                    and isinstance(instr.b, Const)
                ):
                    scaled[instr.dst] = (instr.a, instr.b.value)
                elif (
                    isinstance(instr.b, Temp)
                    and instr.b in ivs
                    and isinstance(instr.a, Const)
                ):
                    scaled[instr.dst] = (instr.b, instr.a.value)

    inserted = 0
    seen_streams: Set[Tuple[str, Temp, int]] = set()
    # Layout order: first-seen wins per stream and new temps are named
    # in visit order, so set-order iteration would emit different code
    # in different processes.
    for label in loop.body_in_layout_order(func):
        block = func.block(label)
        new_instrs = []
        for instr in block.instrs:
            new_instrs.append(instr)
            if not isinstance(instr, Load):
                continue
            if not isinstance(instr.base, Temp) or instr.base not in addr_of:
                continue
            symbol = addr_of[instr.base]
            array = module.globals.get(symbol)
            if array is None or array.size_bytes < MIN_ARRAY_BYTES:
                continue
            if not isinstance(instr.offset, Temp) or instr.offset not in scaled:
                continue
            iv_temp, scale = scaled[instr.offset]
            stream = (symbol, iv_temp, scale)
            if stream in seen_streams:
                continue
            seen_streams.add(stream)
            step = ivs[iv_temp].step
            distance = LOOKAHEAD * step * scale
            ahead = func.new_temp(Type.INT, hint="pfoff")
            new_instrs.append(
                BinOp(ahead, "add", instr.offset, Const(distance, Type.INT))
            )
            new_instrs.append(Prefetch(instr.base, ahead))
            inserted += 1
        block.instrs = new_instrs
    if remarks.enabled():
        if inserted:
            remarks.emit(
                "prefetch",
                "fired",
                func.name,
                loop.header,
                f"inserted {inserted} software prefetch stream(s)",
                benefit=inserted * remarks.depth_freq(loop.depth),
                streams=inserted,
                symbols=sorted({s for s, _iv, _k in seen_streams}),
                depth=loop.depth,
            )
        else:
            remarks.emit(
                "prefetch",
                "declined",
                func.name,
                loop.header,
                "no streaming loads of sufficiently large arrays",
                depth=loop.depth,
            )
    return inserted

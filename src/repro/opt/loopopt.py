"""-floop-optimize: loop-invariant code motion.

Hoists pure computations (and loads proven not to alias any store in the
loop) out of loops into dedicated preheaders.  Because IR operators are
total (no traps -- see :mod:`repro.ir.semantics`), speculative hoisting of
pure instructions is always safe provided the destination temp has a
single definition in the whole function, which the expression temps
produced by lowering satisfy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir import (
    Addr,
    BinOp,
    Call,
    Cmp,
    Copy,
    Function,
    Load,
    Module,
    Store,
    Temp,
    UnOp,
)
from repro.analysis.static import remarks
from repro.ir.dataflow import def_use_counts
from repro.ir.loops import Loop, ensure_preheader, natural_loops
from repro.ir.values import Const, Value


def loop_memory_summary(func: Function, loop: Loop) -> "tuple[Set[str], bool]":
    """(symbols possibly stored in the loop, True if unknown stores/calls).

    A store whose base register is (transitively) an ``Addr`` of a global
    contributes that symbol; any other store, and any call, makes the
    summary unknown.
    """
    addr_of: Dict[Temp, str] = {}
    for block in func.blocks:
        for instr in block.instrs:
            if isinstance(instr, Addr):
                addr_of[instr.dst] = instr.symbol
    stored: Set[str] = set()
    unknown = False
    for label in loop.body:
        for instr in func.block(label).instrs:
            if isinstance(instr, Store):
                if isinstance(instr.base, Temp) and instr.base in addr_of:
                    stored.add(addr_of[instr.base])
                else:
                    unknown = True
            elif isinstance(instr, Call):
                unknown = True
    return stored, unknown


def _hoist_loop(func: Function, loop: Loop, single_def: Set[Temp]) -> int:
    pre_label = ensure_preheader(func, loop)
    pre = func.block(pre_label)
    stored, unknown_stores = loop_memory_summary(func, loop)

    addr_of: Dict[Temp, str] = {}
    for block in func.blocks:
        for instr in block.instrs:
            if isinstance(instr, Addr):
                addr_of[instr.dst] = instr.symbol

    # Temps defined anywhere inside the loop.
    defined_in_loop: Set[Temp] = set()
    for label in loop.body:
        for instr in func.block(label).all_instrs():
            d = instr.defs()
            if d is not None:
                defined_in_loop.add(d)

    invariant: Set[Temp] = set()
    hoisted = 0
    changed = True
    # Layout order, not set order: the hoist sequence lands verbatim in
    # the preheader, so the visit order is part of the emitted code.
    body_order = loop.body_in_layout_order(func)
    while changed:
        changed = False
        for label in body_order:
            block = func.block(label)
            remaining = []
            for instr in block.instrs:
                if self_hoistable(
                    instr,
                    loop,
                    invariant,
                    defined_in_loop,
                    single_def,
                    addr_of,
                    stored,
                    unknown_stores,
                ):
                    pre.instrs.append(instr)
                    invariant.add(instr.defs())
                    defined_in_loop.discard(instr.defs())
                    hoisted += 1
                    changed = True
                else:
                    remaining.append(instr)
            block.instrs = remaining
    return hoisted


def self_hoistable(
    instr,
    loop: Loop,
    invariant: Set[Temp],
    defined_in_loop: Set[Temp],
    single_def: Set[Temp],
    addr_of: Dict[Temp, str],
    stored: Set[str],
    unknown_stores: bool,
) -> bool:
    """Whether an instruction can move to the preheader this round."""
    d = instr.defs()
    if d is None or d not in single_def:
        return False

    def operand_invariant(v: Value) -> bool:
        if isinstance(v, Const):
            return True
        return v not in defined_in_loop or v in invariant

    if isinstance(instr, (BinOp, UnOp, Cmp, Copy, Addr)):
        return all(operand_invariant(u) for u in instr.uses())
    if isinstance(instr, Load):
        if unknown_stores:
            return False
        if not all(operand_invariant(u) for u in instr.uses()):
            return False
        if not isinstance(instr.base, Temp) or instr.base not in addr_of:
            return False
        return addr_of[instr.base] not in stored
    return False


def loop_optimize(module: Module, config=None) -> int:
    """Run LICM over every function; returns instructions hoisted."""
    total = 0
    for func in module.functions.values():
        defs, _uses = def_use_counts(func)
        single_def = {t for t, n in defs.items() if n == 1}
        # Outermost loops first: code hoisted from an inner loop can then
        # be hoisted again when the inner loop's preheader belongs to the
        # outer loop body (handled by iterating loops in depth order).
        for loop in natural_loops(func):
            hoisted = _hoist_loop(func, loop, single_def)
            total += hoisted
            if remarks.enabled():
                if hoisted:
                    remarks.emit(
                        "licm",
                        "fired",
                        func.name,
                        loop.header,
                        f"hoisted {hoisted} loop-invariant instruction(s)"
                        " to the preheader",
                        benefit=hoisted * remarks.depth_freq(loop.depth),
                        hoisted=hoisted,
                        depth=loop.depth,
                    )
                else:
                    remarks.emit(
                        "licm",
                        "declined",
                        func.name,
                        loop.header,
                        "no hoistable loop-invariant instructions",
                        depth=loop.depth,
                    )
    return total

"""-freorder-blocks: code layout to reduce taken branches.

Two cooperating transformations:

* **chain formation** -- a greedy bottom-up layout that walks the CFG from
  the entry, always placing the *likely* successor next so it becomes the
  fall-through.  Without profile data, likelihood follows the classic
  static heuristics: the back-edge / stay-in-loop successor of a branch
  is likely; a loop-exit successor is unlikely.

* **branch polarity fixing** -- after layout, a conditional branch whose
  then-target is the fall-through but whose else-target is far away costs
  nothing extra; one whose *else*-target is the fall-through is rewritten
  by inverting the condition's comparison when cheap, so the frequent arm
  falls through.

The simulator charges taken control transfers a fetch-redirect bubble, so
layout quality is directly visible in cycles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.static import remarks
from repro.ir import Branch, Cmp, Function, Jump, Module, Temp
from repro.ir.cfg import predecessors, successors
from repro.ir.dataflow import def_use_counts
from repro.ir.loops import natural_loops

_INVERSE_CMP = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt", "gt": "le", "le": "gt"}


def _loop_depths(func: Function) -> Dict[str, int]:
    depth = {b.label: 0 for b in func.blocks}
    for loop in natural_loops(func):
        for label in loop.body:
            depth[label] = max(depth[label], loop.depth)
    return depth


def _likely_successor(
    label: str,
    succs: List[str],
    depth: Dict[str, int],
    edge_weight=None,
) -> Optional[str]:
    """Which successor execution probably continues into.

    With a profile (``edge_weight(src, dst) -> count``), the hottest
    edge wins; otherwise the classic static heuristic applies: prefer
    staying at (or entering) deeper loop nesting, since the loop-exit
    arm is the unlikely one.
    """
    if not succs:
        return None
    if len(succs) == 1:
        return succs[0]
    if edge_weight is not None:
        weights = {s: edge_weight(label, s) for s in succs}
        if any(w > 0 for w in weights.values()):
            return max(succs, key=lambda s: weights[s])
    return max(succs, key=lambda s: depth.get(s, 0))


def reorder_blocks(module: Module, config=None, profile=None) -> int:
    """Lay out each function's blocks along likely chains.

    ``profile`` is an optional :class:`repro.ir.interp.EdgeProfile`; when
    present, layout follows measured edge frequencies instead of static
    heuristics (profile-guided layout).
    """
    changed = 0
    for func in module.functions.values():
        edge_weight = None
        if profile is not None:
            name = func.name

            def edge_weight(src, dst, _name=name):
                return profile.edge_count(_name, src, dst)

        changed += _reorder_function(func, edge_weight)
    return changed


def _reorder_function(func: Function, edge_weight=None) -> int:
    succ = successors(func)
    depth = _loop_depths(func)
    placed: Set[str] = set()
    order: List[str] = []

    # Seed chains from the entry, then from any unplaced block, hottest
    # first so loop bodies stay contiguous.
    seeds = [func.entry.label] + sorted(
        (b.label for b in func.blocks), key=lambda l: -depth.get(l, 0)
    )
    for seed in seeds:
        label: Optional[str] = seed
        while label is not None and label not in placed:
            placed.add(label)
            order.append(label)
            nxt = _likely_successor(
                label,
                [s for s in succ[label] if s not in placed],
                depth,
                edge_weight,
            )
            label = nxt

    old_order = [b.label for b in func.blocks]
    func.blocks = [func.block(label) for label in order]
    func.reindex()
    moved = int(order != old_order)
    fixed = _fix_branch_polarity(func)
    if remarks.enabled():
        if moved or fixed:
            remarks.emit(
                "reorder",
                "fired",
                func.name,
                func.entry.label,
                f"relaid out blocks (moved={moved});"
                f" inverted {fixed} branch(es) for fall-through",
                benefit=float(moved + fixed),
                moved=moved,
                inverted=fixed,
            )
        else:
            remarks.emit(
                "reorder",
                "declined",
                func.name,
                func.entry.label,
                "layout already follows likely chains",
            )
    return moved + fixed


def _fix_branch_polarity(func: Function) -> int:
    """Invert branches whose unlikely arm is the fall-through."""
    defs, uses = def_use_counts(func)
    position = {b.label: i for i, b in enumerate(func.blocks)}
    fixed = 0
    for i, block in enumerate(func.blocks):
        term = block.terminator
        if not isinstance(term, Branch):
            continue
        fallthrough = (
            func.blocks[i + 1].label if i + 1 < len(func.blocks) else None
        )
        if term.then_target != fallthrough or term.else_target == fallthrough:
            continue
        # then-arm is the fall-through: invert so the branch is taken only
        # on the (presumably unlikely) else path...  but only when the
        # condition is a comparison used solely by this branch, so
        # inverting cannot perturb other users.
        cond = term.cond
        if not isinstance(cond, Temp):
            continue
        if defs.get(cond, 0) != 1 or uses.get(cond, 0) != 1:
            continue
        cmp_instr = None
        for instr in reversed(block.instrs):
            if instr.defs() == cond:
                if isinstance(instr, Cmp) and instr.op in _INVERSE_CMP:
                    cmp_instr = instr
                break
        if cmp_instr is None:
            continue
        cmp_instr.op = _INVERSE_CMP[cmp_instr.op]
        block.set_terminator(
            Branch(cond, term.else_target, term.then_target)
        )
        fixed += 1
    return fixed

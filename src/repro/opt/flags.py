"""Compiler configuration: the paper's Table 1 as a typed object.

A :class:`CompilerConfig` carries the nine binary optimization flags and
five numeric heuristics.  ``from_point``/``to_point`` convert to and from
the design-point dicts used by :mod:`repro.space`, and the ``O0``/``O2``/
``O3`` presets mirror the paper's baselines (Table 6's "default O3" row
fixes the heuristic defaults; O3 enables everything except unrolling, O2
additionally leaves inlining and prefetching off).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping


@dataclass(frozen=True)
class CompilerConfig:
    """Settings of the 14 Table 1 variables."""

    # Optimization flags (Table 1, rows 1-9).
    inline_functions: bool = False
    unroll_loops: bool = False
    schedule_insns2: bool = False
    loop_optimize: bool = False
    gcse: bool = False
    strength_reduce: bool = False
    omit_frame_pointer: bool = False
    reorder_blocks: bool = False
    prefetch_loop_arrays: bool = False
    # Heuristics (Table 1, rows 10-14), at gcc's defaults.
    max_inline_insns_auto: int = 100
    inline_unit_growth: int = 50
    inline_call_cost: int = 16
    max_unroll_times: int = 8
    max_unrolled_insns: int = 200

    _FLAG_NAMES = (
        "inline_functions",
        "unroll_loops",
        "schedule_insns2",
        "loop_optimize",
        "gcse",
        "strength_reduce",
        "omit_frame_pointer",
        "reorder_blocks",
        "prefetch_loop_arrays",
    )
    _HEURISTIC_NAMES = (
        "max_inline_insns_auto",
        "inline_unit_growth",
        "inline_call_cost",
        "max_unroll_times",
        "max_unrolled_insns",
    )

    @classmethod
    def from_point(cls, point: Mapping[str, float]) -> "CompilerConfig":
        """Build a config from a (possibly larger) design-point dict."""
        kwargs = {}
        for name in cls._FLAG_NAMES:
            if name in point:
                kwargs[name] = bool(round(point[name]))
        for name in cls._HEURISTIC_NAMES:
            if name in point:
                kwargs[name] = int(round(point[name]))
        return cls(**kwargs)

    def to_point(self) -> Dict[str, float]:
        point: Dict[str, float] = {}
        for name in self._FLAG_NAMES:
            point[name] = float(int(getattr(self, name)))
        for name in self._HEURISTIC_NAMES:
            point[name] = float(getattr(self, name))
        return point

    def describe(self) -> str:
        flags = "".join(
            "1" if getattr(self, name) else "0" for name in self._FLAG_NAMES
        )
        heur = "/".join(str(getattr(self, name)) for name in self._HEURISTIC_NAMES)
        return f"flags={flags} heur={heur}"

    def cache_key(self) -> tuple:
        """Hashable identity, used to memoize compilations."""
        return tuple(getattr(self, n) for n in self._FLAG_NAMES) + tuple(
            getattr(self, n) for n in self._HEURISTIC_NAMES
        )


#: No optimization.
O0 = CompilerConfig()

#: The paper's -O2 baseline: scalar/loop optimizations but no inlining,
#: unrolling or prefetching.
O2 = CompilerConfig(
    schedule_insns2=True,
    loop_optimize=True,
    gcse=True,
    strength_reduce=True,
    omit_frame_pointer=True,
    reorder_blocks=True,
)

#: The paper's -O3 baseline (Table 6 "default O3" row): O2 plus inlining
#: and prefetching, unrolling still off, heuristics at defaults.
O3 = replace(O2, inline_functions=True, prefetch_loop_arrays=True)

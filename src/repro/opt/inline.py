"""-finline-functions: function inlining.

Heuristics (Table 1, rows 10-12), mirroring gcc's:

* ``max_inline_insns_auto`` -- a callee larger than this is never inlined.
* ``inline_call_cost`` -- the perceived overhead of a call, in simple
  instructions; callees no larger than a small multiple of it are always
  considered beneficial, and larger ones only when they fit the insns
  budget (a higher call cost makes more sites look profitable).
* ``inline_unit_growth`` -- hard cap, in percent, on how much the whole
  compilation unit may grow.

Call sites are ranked hottest-first (loop depth as the static frequency
proxy, like gcc without profile data) and inlined until the growth budget
runs out.  Recursive functions and indirect effects are left alone.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ir import (
    BasicBlock,
    Call,
    Copy,
    Function,
    Jump,
    Module,
    Return,
    Temp,
)
from repro.analysis.static import remarks
from repro.ir.callgraph import build_callgraph
from repro.ir.loops import natural_loops
from repro.opt.flags import CompilerConfig


@dataclass
class _Site:
    caller: str
    block_label: str
    instr_index: int
    callee: str
    loop_depth: int
    callee_size: int


def _loop_depth_map(func: Function) -> Dict[str, int]:
    depth: Dict[str, int] = {b.label: 0 for b in func.blocks}
    for loop in natural_loops(func):
        for label in loop.body:
            depth[label] = max(depth[label], loop.depth)
    return depth


def _collect_sites(module: Module, config: CompilerConfig) -> List[_Site]:
    graph = build_callgraph(module)
    sites: List[_Site] = []
    for func in module.functions.values():
        depths = _loop_depth_map(func)
        for block in func.blocks:
            for i, instr in enumerate(block.instrs):
                if not isinstance(instr, Call):
                    continue
                callee = module.functions.get(instr.callee)
                if callee is None or graph.is_recursive(instr.callee):
                    continue
                if instr.callee == func.name:
                    continue
                sites.append(
                    _Site(
                        caller=func.name,
                        block_label=block.label,
                        instr_index=i,
                        callee=instr.callee,
                        loop_depth=depths[block.label],
                        callee_size=callee.instruction_count(),
                    )
                )
    return sites


def _site_eligible(site: _Site, config: CompilerConfig) -> bool:
    # Trivially small callees are always beneficial: the body is barely
    # bigger than the call overhead itself.
    if site.callee_size <= 3 * config.inline_call_cost:
        return True
    return site.callee_size <= config.max_inline_insns_auto


def _inline_at(
    caller: Function, block: BasicBlock, index: int, callee: Function
) -> None:
    """Splice a copy of ``callee`` in place of the call instruction."""
    call = block.instrs[index]
    assert isinstance(call, Call) and call.callee == callee.name

    # Split the caller block after the call.
    tail = BasicBlock(caller.fresh_label(f"ret_{callee.name}_"))
    tail.instrs = block.instrs[index + 1 :]
    tail.terminator = block.terminator
    block.instrs = block.instrs[:index]
    block.terminator = None
    insert_pos = caller.blocks.index(block) + 1
    caller.blocks.insert(insert_pos, tail)
    caller.reindex()

    # Clone callee blocks with fresh labels and renamed temps.
    label_map = {
        b.label: caller.fresh_label(f"in_{callee.name}_") for b in callee.blocks
    }
    # Pre-register labels so fresh_label cannot collide between clones.
    clones: List[BasicBlock] = []
    temp_map: Dict[Temp, Temp] = {}

    def map_temp(t: Temp) -> Temp:
        if t not in temp_map:
            temp_map[t] = caller.new_temp(t.type, hint=f"i_{t.name}_")
        return temp_map[t]

    # Bind parameters to argument values.
    for param, arg in zip(callee.params, call.args):
        block.append(Copy(map_temp(param), arg))

    for src in callee.blocks:
        clone = BasicBlock(label_map[src.label])
        for instr in src.instrs:
            mapping = {
                u: map_temp(u)
                for u in instr.uses()
                if isinstance(u, Temp)
            }
            new_instr = instr.replace_uses(mapping)
            if new_instr is instr:
                # replace_uses returned the original (no operands to
                # substitute); copy before mutating so the callee's own
                # body is never touched.
                new_instr = copy.copy(instr)
            d = new_instr.defs()
            if d is not None:
                new_instr.dst = map_temp(d)
            clone.instrs.append(new_instr)
        term = src.terminator
        if isinstance(term, Return):
            if term.value is not None and call.dst is not None:
                value = term.value
                if isinstance(value, Temp):
                    value = map_temp(value)
                clone.instrs.append(Copy(call.dst, value))
            clone.set_terminator(Jump(tail.label))
        else:
            mapping = {
                u: map_temp(u) for u in term.uses() if isinstance(u, Temp)
            }
            term2 = term.replace_uses(mapping)
            term2 = term2.retarget(label_map)
            clone.set_terminator(term2)
        clones.append(clone)

    # Wire the call block to the cloned entry and lay the clones out
    # between the split halves.
    block.set_terminator(Jump(label_map[callee.entry.label]))
    pos = caller.blocks.index(tail)
    for offset, clone in enumerate(clones):
        caller.blocks.insert(pos + offset, clone)
    caller.reindex()


def inline_functions(module: Module, config: CompilerConfig) -> int:
    """Inline eligible call sites; returns the number of sites inlined.

    The unit-growth budget is measured against the module size at entry
    to the pass.
    """
    base_size = module.instruction_count()
    budget = base_size * (1.0 + config.inline_unit_growth / 100.0)
    inlined = 0
    # Repeat so call sites exposed by inlining (callee bodies containing
    # calls) are considered too; bounded to avoid pathological growth.
    for round_idx in range(4):
        sites = []
        for s in _collect_sites(module, config):
            if _site_eligible(s, config):
                sites.append(s)
            elif round_idx == 0:
                remarks.emit(
                    "inline",
                    "declined",
                    s.caller,
                    s.block_label,
                    f"callee {s.callee} too large"
                    f" ({s.callee_size} insns)",
                    callee=s.callee,
                    size=s.callee_size,
                    depth=s.loop_depth,
                )
        if not sites:
            break
        # Hottest (deepest loop) first, then smallest callee.
        sites.sort(key=lambda s: (-s.loop_depth, s.callee_size))
        progress = False
        current = module.instruction_count()
        for site in sites:
            callee = module.functions[site.callee]
            growth = callee.instruction_count()
            if current + growth > budget:
                if round_idx == 0:
                    remarks.emit(
                        "inline",
                        "declined",
                        site.caller,
                        site.block_label,
                        f"unit-growth budget exhausted for {site.callee}"
                        f" ({growth} insns)",
                        callee=site.callee,
                        size=growth,
                        depth=site.loop_depth,
                    )
                continue
            caller = module.functions[site.caller]
            if not caller.has_block(site.block_label):
                continue  # invalidated by an earlier inline this round
            block = caller.block(site.block_label)
            if (
                site.instr_index >= len(block.instrs)
                or not isinstance(block.instrs[site.instr_index], Call)
                or block.instrs[site.instr_index].callee != site.callee
            ):
                continue  # stale site
            _inline_at(caller, block, site.instr_index, callee)
            remarks.emit(
                "inline",
                "fired",
                site.caller,
                site.block_label,
                f"inlined {site.callee} ({growth} insns)",
                benefit=2.0 * remarks.depth_freq(site.loop_depth),
                callee=site.callee,
                size=growth,
                n_args=len(callee.params),
                depth=site.loop_depth,
            )
            current += growth
            inlined += 1
            progress = True
        if not progress:
            break
    return inlined
